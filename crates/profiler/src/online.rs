//! Online profiling: refine a device's time profile from observed rounds.
//!
//! The paper builds profiles "either online through a bootstrapping phase or
//! offline measured by a collection of devices" (Section IV-B). This module
//! implements the online path: the server observes `(samples, seconds)`
//! pairs as rounds complete and maintains a recursive least-squares fit of
//! `time = fixed + per_sample * samples`, with exponential forgetting so the
//! profile tracks slow drift (battery aging, ambient temperature, background
//! load) without refitting from scratch.

use serde::{Deserialize, Serialize};

use crate::profile::{CostProfile, LinearProfile};

/// Recursive least squares with exponential forgetting over the model
/// `y = b0 + b1 * x`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineProfiler {
    /// Forgetting factor in `(0, 1]`: 1.0 = ordinary RLS, smaller values
    /// weight recent rounds more.
    lambda: f64,
    /// Parameter estimate `[b0, b1]`.
    theta: [f64; 2],
    /// Inverse covariance `P` (2x2, row-major).
    p: [f64; 4],
    /// Observations absorbed so far.
    observations: usize,
    /// Observations dropped because they were non-finite or negative.
    rejected: usize,
}

impl OnlineProfiler {
    /// Create a profiler with forgetting factor `lambda` (use 1.0 for a
    /// stationary device, ~0.98 to track drift).
    ///
    /// # Panics
    /// Panics unless `0 < lambda <= 1`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0, 1]");
        OnlineProfiler {
            lambda,
            theta: [0.0, 0.0],
            // Large initial covariance: the first observations dominate.
            p: [1e6, 0.0, 0.0, 1e6],
            observations: 0,
            rejected: 0,
        }
    }

    /// Seed the estimate from an offline profile (warm start).
    pub fn with_prior(lambda: f64, prior: &LinearProfile) -> Self {
        let mut s = OnlineProfiler::new(lambda);
        s.theta = [prior.fixed, prior.per_sample];
        // Moderate confidence in the prior.
        s.p = [10.0, 0.0, 0.0, 1e-4];
        s
    }

    /// Number of observed rounds.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Observations dropped by [`observe`](Self::observe) because they were
    /// non-finite or negative. A nonzero count flags an upstream bug (a
    /// device reporting `NaN` seconds, a clock running backwards) without
    /// letting the bad sample poison the RLS state.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Absorb one observed round: `samples` trained in `seconds`.
    ///
    /// Non-finite (`NaN`/`±inf`) or negative inputs are *not* absorbed: a
    /// single `NaN` would irreversibly contaminate `theta` and `P`, so bad
    /// samples are dropped, counted in [`rejected`](Self::rejected), and
    /// `false` is returned. Returns `true` when the observation was
    /// absorbed.
    pub fn observe(&mut self, samples: f64, seconds: f64) -> bool {
        if !(samples.is_finite() && seconds.is_finite() && samples >= 0.0 && seconds >= 0.0) {
            self.rejected += 1;
            return false;
        }
        let x = [1.0, samples];
        // k = P x / (lambda + x' P x)
        let px = [
            self.p[0] * x[0] + self.p[1] * x[1],
            self.p[2] * x[0] + self.p[3] * x[1],
        ];
        let denom = self.lambda + x[0] * px[0] + x[1] * px[1];
        let k = [px[0] / denom, px[1] / denom];
        let err = seconds - (self.theta[0] * x[0] + self.theta[1] * x[1]);
        self.theta[0] += k[0] * err;
        self.theta[1] += k[1] * err;
        // P = (P - k x' P) / lambda
        let xp = [
            x[0] * self.p[0] + x[1] * self.p[2],
            x[0] * self.p[1] + x[1] * self.p[3],
        ];
        self.p = [
            (self.p[0] - k[0] * xp[0]) / self.lambda,
            (self.p[1] - k[0] * xp[1]) / self.lambda,
            (self.p[2] - k[1] * xp[0]) / self.lambda,
            (self.p[3] - k[1] * xp[1]) / self.lambda,
        ];
        self.observations += 1;
        true
    }

    /// The current estimate as a (clamped, monotone) linear profile.
    pub fn profile(&self) -> LinearProfile {
        LinearProfile::new(self.theta[0], self.theta[1])
    }

    /// Raw `[intercept, slope]` estimate (may be negative before clamping).
    pub fn theta(&self) -> [f64; 2] {
        self.theta
    }
}

impl CostProfile for OnlineProfiler {
    fn time_for(&self, samples: f64) -> f64 {
        self.profile().time_for(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let mut p = OnlineProfiler::new(1.0);
        for i in 1..30 {
            let n = (i * 100) as f64;
            p.observe(n, 2.0 + 0.01 * n);
        }
        let t = p.theta();
        assert!((t[0] - 2.0).abs() < 1e-3, "intercept {}", t[0]);
        assert!((t[1] - 0.01).abs() < 1e-6, "slope {}", t[1]);
        assert!((p.time_for(5000.0) - 52.0).abs() < 0.01);
    }

    #[test]
    fn tracks_drift_with_forgetting() {
        let mut p = OnlineProfiler::new(0.9);
        // Device slows down by 2x halfway through (thermal aging).
        for i in 1..40 {
            p.observe((i * 50) as f64, 0.01 * (i * 50) as f64);
        }
        for i in 1..40 {
            p.observe((i * 50) as f64, 0.02 * (i * 50) as f64);
        }
        assert!(
            (p.theta()[1] - 0.02).abs() < 0.002,
            "slope should track the new regime: {}",
            p.theta()[1]
        );

        // Without forgetting, the estimate lags between the two regimes.
        let mut stale = OnlineProfiler::new(1.0);
        for i in 1..40 {
            stale.observe((i * 50) as f64, 0.01 * (i * 50) as f64);
        }
        for i in 1..40 {
            stale.observe((i * 50) as f64, 0.02 * (i * 50) as f64);
        }
        assert!(stale.theta()[1] < p.theta()[1]);
    }

    #[test]
    fn prior_dominates_until_evidence_accumulates() {
        let prior = LinearProfile::new(1.0, 0.05);
        let mut p = OnlineProfiler::with_prior(0.99, &prior);
        assert!((p.time_for(1000.0) - 51.0).abs() < 1e-6);
        // A single noisy observation should not wreck the estimate.
        p.observe(1000.0, 70.0);
        assert!(p.time_for(1000.0) < 70.0);
        assert!(p.time_for(1000.0) > 50.0);
    }

    #[test]
    fn noisy_observations_converge_to_mean_line() {
        let mut p = OnlineProfiler::new(1.0);
        for i in 0..200 {
            let n = 100.0 + (i % 37) as f64 * 53.0;
            let noise = ((i * 2654435761u64 % 1000) as f64 / 1000.0 - 0.5) * 0.4;
            p.observe(n, 0.5 + 0.002 * n + noise);
        }
        assert!(
            (p.theta()[1] - 0.002).abs() < 2e-4,
            "slope {}",
            p.theta()[1]
        );
    }

    #[test]
    fn profile_is_clamped_monotone() {
        let mut p = OnlineProfiler::new(1.0);
        // Adversarial: decreasing time with size would fit a negative slope.
        p.observe(100.0, 10.0);
        p.observe(200.0, 5.0);
        p.observe(300.0, 2.0);
        let profile = p.profile();
        assert!(profile.per_sample >= 0.0);
        assert!(profile.time_for(400.0) >= profile.time_for(100.0));
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn invalid_lambda_rejected() {
        let _ = OnlineProfiler::new(0.0);
    }

    #[test]
    fn non_finite_observation_rejected() {
        let mut p = OnlineProfiler::new(1.0);
        p.observe(1000.0, 12.0);
        let theta = p.theta();
        let pcov = p.p;
        for (samples, seconds) in [
            (f64::NAN, 1.0),
            (1.0, f64::NAN),
            (f64::INFINITY, 1.0),
            (1.0, f64::NEG_INFINITY),
            (-5.0, 1.0),
            (1.0, -0.25),
        ] {
            assert!(!p.observe(samples, seconds), "({samples}, {seconds})");
        }
        // Rejected samples are counted but leave the RLS state untouched.
        assert_eq!(p.rejected(), 6);
        assert_eq!(p.observations(), 1);
        assert_eq!(p.theta(), theta);
        assert_eq!(p.p, pcov);
        // The profiler keeps absorbing good samples afterwards.
        assert!(p.observe(2000.0, 24.0));
        assert_eq!(p.observations(), 2);
        assert!(p.theta()[1].is_finite());
    }
}
