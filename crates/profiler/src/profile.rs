//! Training-time profiles: monotone maps from data size to seconds.
//!
//! Paper Property 1: for any device, the per-epoch cost
//! `T^c(D) + T^u(M) + T^d(M)` is non-decreasing in the amount of training
//! data `D`. Every profile type in this module upholds that invariant by
//! construction ([`LinearProfile`], [`PolyProfile`]) or by an isotonic
//! correction pass ([`TabulatedProfile`]).

use serde::{Deserialize, Serialize};

/// A device's predicted training time as a function of data size.
///
/// Implementations must be monotone non-decreasing in `samples` and return
/// finite, non-negative seconds. `samples` is a count of training samples
/// (shards are converted by the caller).
pub trait CostProfile: Send + Sync {
    /// Predicted training seconds for one local epoch over `samples` samples.
    fn time_for(&self, samples: f64) -> f64;
}

impl<P: CostProfile + ?Sized> CostProfile for Box<P> {
    fn time_for(&self, samples: f64) -> f64 {
        (**self).time_for(samples)
    }
}

impl<P: CostProfile + ?Sized> CostProfile for &P {
    fn time_for(&self, samples: f64) -> f64 {
        (**self).time_for(samples)
    }
}

impl<P: CostProfile + ?Sized> CostProfile for std::sync::Arc<P> {
    fn time_for(&self, samples: f64) -> f64 {
        (**self).time_for(samples)
    }
}

/// `time = fixed + per_sample * samples`, with both terms non-negative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearProfile {
    /// Fixed per-epoch overhead in seconds (model push/pull, setup).
    pub fixed: f64,
    /// Seconds per training sample.
    pub per_sample: f64,
}

impl LinearProfile {
    /// Create a linear profile; clamps negative inputs to zero so the
    /// monotonicity invariant cannot be violated by a noisy regression fit.
    pub fn new(fixed: f64, per_sample: f64) -> Self {
        LinearProfile {
            fixed: fixed.max(0.0),
            per_sample: per_sample.max(0.0),
        }
    }
}

impl CostProfile for LinearProfile {
    fn time_for(&self, samples: f64) -> f64 {
        self.fixed + self.per_sample * samples.max(0.0)
    }
}

/// `time = c0 + c1 * samples + c2 * samples^2` with non-negative
/// coefficients — the quadratic term captures thermal-throttling
/// super-linearity (paper Observation 2: Nexus 6P needs 69 s for 3K samples
/// but 220 s for 6K).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolyProfile {
    /// Constant term (seconds).
    pub c0: f64,
    /// Linear term (seconds per sample).
    pub c1: f64,
    /// Quadratic term (seconds per sample squared).
    pub c2: f64,
}

impl PolyProfile {
    /// Create a quadratic profile; negative coefficients are clamped to zero
    /// to preserve monotonicity on `samples >= 0`.
    pub fn new(c0: f64, c1: f64, c2: f64) -> Self {
        PolyProfile {
            c0: c0.max(0.0),
            c1: c1.max(0.0),
            c2: c2.max(0.0),
        }
    }
}

impl CostProfile for PolyProfile {
    fn time_for(&self, samples: f64) -> f64 {
        let s = samples.max(0.0);
        self.c0 + self.c1 * s + self.c2 * s * s
    }
}

/// A profile tabulated at measured `(samples, seconds)` points with linear
/// interpolation between points and linear extrapolation beyond the last one.
///
/// Construction sorts by sample count and applies
/// [`isotonic_non_decreasing`] to the times, so interpolation is always
/// monotone even if the raw measurements jitter downwards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TabulatedProfile {
    points: Vec<(f64, f64)>,
}

impl TabulatedProfile {
    /// Build from raw measurements. Requires at least one point; all sample
    /// counts must be finite and non-negative.
    ///
    /// # Panics
    /// Panics on an empty slice or non-finite values.
    pub fn from_measurements(raw: &[(f64, f64)]) -> Self {
        assert!(
            !raw.is_empty(),
            "TabulatedProfile: need at least one measurement"
        );
        assert!(
            raw.iter()
                .all(|&(s, t)| s.is_finite() && t.is_finite() && s >= 0.0 && t >= 0.0),
            "TabulatedProfile: measurements must be finite and non-negative"
        );
        let mut pts: Vec<(f64, f64)> = raw.to_vec();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        // Merge duplicate x by averaging their times.
        let mut merged: Vec<(f64, f64, usize)> = Vec::with_capacity(pts.len());
        for (s, t) in pts {
            match merged.last_mut() {
                Some(last) if last.0 == s => {
                    last.1 += t;
                    last.2 += 1;
                }
                _ => merged.push((s, t, 1)),
            }
        }
        let xs: Vec<f64> = merged.iter().map(|m| m.0).collect();
        let ys: Vec<f64> = merged.iter().map(|m| m.1 / m.2 as f64).collect();
        let ys = isotonic_non_decreasing(&ys);
        TabulatedProfile {
            points: xs.into_iter().zip(ys).collect(),
        }
    }

    /// The (sorted, monotone) interpolation knots.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

impl CostProfile for TabulatedProfile {
    fn time_for(&self, samples: f64) -> f64 {
        let s = samples.max(0.0);
        let pts = &self.points;
        if pts.len() == 1 {
            // Single knot: scale proportionally through the origin.
            let (x0, y0) = pts[0];
            return if x0 == 0.0 { y0 } else { y0 * s / x0 };
        }
        if s <= pts[0].0 {
            // Interpolate between the origin and the first knot.
            let (x0, y0) = pts[0];
            return if x0 == 0.0 { y0 } else { y0 * s / x0 };
        }
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if s <= x1 {
                return y0 + (y1 - y0) * (s - x0) / (x1 - x0);
            }
        }
        // Extrapolate with the slope of the last segment.
        let (x0, y0) = pts[pts.len() - 2];
        let (x1, y1) = pts[pts.len() - 1];
        let slope = ((y1 - y0) / (x1 - x0)).max(0.0);
        y1 + slope * (s - x1)
    }
}

/// Pool-adjacent-violators: the closest (in L2) non-decreasing sequence to
/// `values`. Used to repair noisy measured profiles so Property 1 holds.
pub fn isotonic_non_decreasing(values: &[f64]) -> Vec<f64> {
    // Each block: (sum, count). Merge backwards while means decrease.
    let mut blocks: Vec<(f64, usize)> = Vec::with_capacity(values.len());
    for &v in values {
        blocks.push((v, 1));
        while blocks.len() >= 2 {
            let last = blocks[blocks.len() - 1];
            let prev = blocks[blocks.len() - 2];
            if prev.0 / prev.1 as f64 <= last.0 / last.1 as f64 {
                break;
            }
            blocks.pop();
            let top = blocks.last_mut().expect("non-empty");
            top.0 += last.0;
            top.1 += last.1;
        }
    }
    let mut out = Vec::with_capacity(values.len());
    for (sum, count) in blocks {
        let mean = sum / count as f64;
        out.extend(std::iter::repeat_n(mean, count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_profile_monotone_and_clamped() {
        let p = LinearProfile::new(-1.0, 0.5);
        assert_eq!(p.fixed, 0.0);
        assert_eq!(p.time_for(10.0), 5.0);
        assert!(p.time_for(20.0) >= p.time_for(10.0));
        assert_eq!(p.time_for(-5.0), 0.0);
    }

    #[test]
    fn poly_profile_superlinear() {
        // Calibrated loosely to Nexus 6P's LeNet behaviour: 3K -> ~69 s,
        // 6K -> ~220 s (super-linear under throttling).
        let p = PolyProfile::new(0.0, 0.0096, 4.45e-6);
        let t3k = p.time_for(3000.0);
        let t6k = p.time_for(6000.0);
        assert!(
            t6k > 2.5 * t3k,
            "quadratic term must make scaling super-linear"
        );
    }

    #[test]
    fn tabulated_interpolates_linearly() {
        let p = TabulatedProfile::from_measurements(&[(0.0, 0.0), (100.0, 10.0), (200.0, 30.0)]);
        assert!((p.time_for(50.0) - 5.0).abs() < 1e-12);
        assert!((p.time_for(150.0) - 20.0).abs() < 1e-12);
        assert!((p.time_for(300.0) - 50.0).abs() < 1e-12); // extrapolated
    }

    #[test]
    fn tabulated_repairs_non_monotone_measurements() {
        let p = TabulatedProfile::from_measurements(&[(1.0, 5.0), (2.0, 3.0), (3.0, 10.0)]);
        // Isotonic pass pools (5,3) into 4.
        let ys: Vec<f64> = p.points().iter().map(|&(_, y)| y).collect();
        assert_eq!(ys, vec![4.0, 4.0, 10.0]);
        let mut prev = 0.0;
        for s in 0..40 {
            let t = p.time_for(s as f64 * 0.1);
            assert!(t + 1e-12 >= prev, "profile must be monotone");
            prev = t;
        }
    }

    #[test]
    fn tabulated_merges_duplicate_x() {
        let p = TabulatedProfile::from_measurements(&[(10.0, 4.0), (10.0, 6.0)]);
        assert_eq!(p.points(), &[(10.0, 5.0)]);
        assert!((p.time_for(20.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn tabulated_single_point_scales_through_origin() {
        let p = TabulatedProfile::from_measurements(&[(100.0, 20.0)]);
        assert!((p.time_for(50.0) - 10.0).abs() < 1e-12);
        assert!((p.time_for(200.0) - 40.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one measurement")]
    fn tabulated_empty_panics() {
        let _ = TabulatedProfile::from_measurements(&[]);
    }

    #[test]
    fn isotonic_already_sorted_is_identity() {
        let v = vec![1.0, 2.0, 2.0, 5.0];
        assert_eq!(isotonic_non_decreasing(&v), v);
    }

    #[test]
    fn isotonic_constant_output_for_reversed_input() {
        let out = isotonic_non_decreasing(&[3.0, 2.0, 1.0]);
        assert_eq!(out, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn isotonic_output_is_non_decreasing_and_mean_preserving() {
        let v = vec![4.0, 1.0, 7.0, 2.0, 2.0, 9.0, 3.0];
        let out = isotonic_non_decreasing(&v);
        for w in out.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        let sum_in: f64 = v.iter().sum();
        let sum_out: f64 = out.iter().sum();
        assert!(
            (sum_in - sum_out).abs() < 1e-9,
            "PAV preserves the total mass"
        );
    }

    #[test]
    fn boxed_and_arc_profiles_delegate() {
        let p: Box<dyn CostProfile> = Box::new(LinearProfile::new(1.0, 2.0));
        assert_eq!(p.time_for(2.0), 5.0);
        let a = std::sync::Arc::new(LinearProfile::new(1.0, 2.0));
        assert_eq!(a.time_for(2.0), 5.0);
    }
}
