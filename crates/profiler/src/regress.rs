//! Multiple linear regression (paper Eq. (1)).

use serde::{Deserialize, Serialize};

use crate::linalg::{LinalgError, Matrix};

/// Error from fitting a regression model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegressError {
    /// Fewer observations than coefficients (plus intercept).
    TooFewObservations,
    /// Feature rows have inconsistent lengths.
    RaggedFeatures,
    /// The design matrix is rank deficient (e.g. a constant feature).
    Singular,
}

impl std::fmt::Display for RegressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegressError::TooFewObservations => {
                write!(f, "need at least as many observations as coefficients")
            }
            RegressError::RaggedFeatures => write!(f, "feature rows have inconsistent lengths"),
            RegressError::Singular => write!(f, "design matrix is rank deficient"),
        }
    }
}

impl std::error::Error for RegressError {}

/// An ordinary-least-squares linear model `y = b0 + b1 x1 + ... + bp xp`.
///
/// The intercept is always fit; pass feature rows *without* a leading 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    /// Intercept `b0`.
    pub intercept: f64,
    /// Slope coefficients `b1..bp`.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
}

impl LinearRegression {
    /// Fit by ordinary least squares.
    ///
    /// `features[i]` is the feature vector of observation `i`; `targets[i]`
    /// its response. All feature rows must share one length `p`, and
    /// `features.len() >= p + 1`.
    pub fn fit(features: &[Vec<f64>], targets: &[f64]) -> Result<Self, RegressError> {
        let n = features.len();
        if n == 0 || n != targets.len() {
            return Err(RegressError::TooFewObservations);
        }
        let p = features[0].len();
        if features.iter().any(|row| row.len() != p) {
            return Err(RegressError::RaggedFeatures);
        }
        if n < p + 1 {
            return Err(RegressError::TooFewObservations);
        }
        let mut data = Vec::with_capacity(n * (p + 1));
        for row in features {
            data.push(1.0);
            data.extend_from_slice(row);
        }
        let x = Matrix::from_rows(n, p + 1, data);
        let beta = x.lstsq(targets).map_err(|e| match e {
            LinalgError::RankDeficient => RegressError::Singular,
            LinalgError::DimensionMismatch => RegressError::TooFewObservations,
        })?;
        let intercept = beta[0];
        let coefficients = beta[1..].to_vec();

        let mean = targets.iter().sum::<f64>() / n as f64;
        let ss_tot: f64 = targets.iter().map(|y| (y - mean) * (y - mean)).sum();
        let ss_res: f64 = features
            .iter()
            .zip(targets)
            .map(|(row, &y)| {
                let pred = intercept
                    + row
                        .iter()
                        .zip(&coefficients)
                        .map(|(a, b)| a * b)
                        .sum::<f64>();
                (y - pred) * (y - pred)
            })
            .sum();
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };

        Ok(LinearRegression {
            intercept,
            coefficients,
            r_squared,
        })
    }

    /// Predict the response for one feature vector.
    ///
    /// # Panics
    /// Panics if `features.len()` differs from the fitted dimensionality.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.coefficients.len(),
            "predict: feature dimensionality mismatch"
        );
        self.intercept
            + features
                .iter()
                .zip(&self.coefficients)
                .map(|(a, b)| a * b)
                .sum::<f64>()
    }

    /// Root-mean-square error on a labelled set.
    pub fn rmse(&self, features: &[Vec<f64>], targets: &[f64]) -> f64 {
        assert_eq!(features.len(), targets.len());
        if features.is_empty() {
            return 0.0;
        }
        let se: f64 = features
            .iter()
            .zip(targets)
            .map(|(row, &y)| {
                let d = self.predict(row) - y;
                d * d
            })
            .sum();
        (se / features.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_plane() {
        // y = 10 + 2a + 3b
        let features: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let targets: Vec<f64> = features
            .iter()
            .map(|r| 10.0 + 2.0 * r[0] + 3.0 * r[1])
            .collect();
        let model = LinearRegression::fit(&features, &targets).unwrap();
        assert!((model.intercept - 10.0).abs() < 1e-9);
        assert!((model.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((model.coefficients[1] - 3.0).abs() < 1e-9);
        assert!((model.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_noisy_data_has_high_r2_and_small_rmse() {
        let mut features = Vec::new();
        let mut targets = Vec::new();
        // Deterministic pseudo-noise.
        for i in 0..50 {
            let a = i as f64;
            let noise = ((i * 2654435761u64 % 1000) as f64 / 1000.0 - 0.5) * 0.1;
            features.push(vec![a]);
            targets.push(5.0 + 0.5 * a + noise);
        }
        let model = LinearRegression::fit(&features, &targets).unwrap();
        assert!(model.r_squared > 0.999);
        assert!(model.rmse(&features, &targets) < 0.06);
    }

    #[test]
    fn fit_rejects_too_few_observations() {
        let features = vec![vec![1.0, 2.0]];
        assert_eq!(
            LinearRegression::fit(&features, &[1.0]),
            Err(RegressError::TooFewObservations)
        );
    }

    #[test]
    fn fit_rejects_ragged_rows() {
        let features = vec![vec![1.0], vec![1.0, 2.0]];
        assert_eq!(
            LinearRegression::fit(&features, &[1.0, 2.0]),
            Err(RegressError::RaggedFeatures)
        );
    }

    #[test]
    fn fit_rejects_duplicate_feature_column() {
        let features: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, i as f64]).collect();
        let targets: Vec<f64> = (0..5).map(|i| i as f64).collect();
        assert_eq!(
            LinearRegression::fit(&features, &targets),
            Err(RegressError::Singular)
        );
    }

    #[test]
    fn intercept_only_model() {
        let features = vec![vec![], vec![], vec![]];
        let targets = [2.0, 4.0, 6.0];
        let model = LinearRegression::fit(&features, &targets).unwrap();
        assert!((model.intercept - 4.0).abs() < 1e-12);
        assert!(model.coefficients.is_empty());
        assert_eq!(model.predict(&[]), model.intercept);
    }

    #[test]
    fn constant_targets_r2_is_one() {
        let features: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let model = LinearRegression::fit(&features, &[3.0; 4]).unwrap();
        assert!((model.r_squared - 1.0).abs() < 1e-12);
    }
}
