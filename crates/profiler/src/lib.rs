//! Performance profiling for mobile on-device training (paper Section IV-B).
//!
//! The parameter server schedules work using *predicted* per-user training
//! times. This crate implements the paper's two-step profiler:
//!
//! 1. **Step 1** — for each measured data size `d`, fit a multiple linear
//!    regression `time = b0 + b1 * conv_params + b2 * dense_params` across a
//!    set of benchmark model architectures (paper Eq. (1), Fig. 4(a)).
//! 2. **Step 2** — for a target architecture, evaluate the step-1 models at
//!    every measured `d` and regress those predictions against data size,
//!    yielding a curve `time(d)` usable for unseen sizes (Fig. 4(b)).
//!
//! The resulting [`TimeProfile`]s are *monotone non-decreasing* in data size
//! (paper Property 1); tabulated profiles are made monotone by an isotonic
//! (pool-adjacent-violators) pass. The scheduling algorithms in
//! `fedsched-core` consume profiles only through the [`CostProfile`] trait.
//!
//! The least-squares solver is a self-contained Householder-QR implementation
//! in [`linalg`]; no external linear-algebra crate is used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linalg;
pub mod online;
pub mod profile;
pub mod regress;
pub mod twostep;

pub use linalg::Matrix;
pub use online::OnlineProfiler;
pub use profile::{
    isotonic_non_decreasing, CostProfile, LinearProfile, PolyProfile, TabulatedProfile,
};
pub use regress::{LinearRegression, RegressError};
pub use twostep::{ArchPoint, ModelArch, TwoStepProfiler};

/// `TimeProfile` is the historical name used throughout the paper discussion;
/// it is an alias for the boxed trait object form of [`CostProfile`].
pub type TimeProfile = Box<dyn CostProfile>;
