//! The exhaustive table of configuration-error cause codes.
//!
//! `ConfigError` (in `fedsched-fl`) exposes a machine-readable
//! `cause_code()` per variant. Those codes are a published contract:
//! CLI tools grep for them, and the serve crate returns them verbatim in
//! structured HTTP error bodies, so the same string must identify the same
//! failure in-process and over the wire. Before this table the literals
//! were scattered across `build_*` methods; they now live here, in one
//! `pub const` per code, and `ConfigError::cause_code()` references these
//! constants so a drifting string is a compile error, not a silent wire
//! break.
//!
//! Stability note: the codes are **snake_case**, not kebab-case. They were
//! published that way in the first builder release with a "never reworded"
//! guarantee (see the `display_and_cause_codes_are_stable` pin test in
//! `fedsched-fl`), so the convention is frozen — switching to kebab-case
//! now would break every consumer matching on them. The format test below
//! asserts snake_case for exactly that reason.

/// Cohort size of zero.
pub const ZERO_COHORT_SIZE: &str = "zero_cohort_size";
/// Thread count of zero.
pub const ZERO_THREADS: &str = "zero_threads";
/// A knob was set after the simulation already ran rounds.
pub const CONFIGURED_AFTER_RUN: &str = "configured_after_run";
/// An empty shard assignment.
pub const EMPTY_ASSIGNMENT: &str = "empty_assignment";
/// A non-positive or non-finite round deadline.
pub const INVALID_DEADLINE: &str = "invalid_deadline";
/// A rescue state-of-charge floor outside `[0, 1]`.
pub const INVALID_SOC_FLOOR: &str = "invalid_soc_floor";
/// A retry policy that fails `RetryPolicy::check`.
pub const INVALID_RETRY: &str = "invalid_retry";
/// Buffered-async options with a zero buffer or non-positive eta.
pub const INVALID_ASYNC: &str = "invalid_async";
/// A knob the selected build target does not support.
pub const UNSUPPORTED_OPTION: &str = "unsupported_option";
/// A schedule whose arity does not match the device count.
pub const ARITY_MISMATCH: &str = "arity_mismatch";
/// A reschedule interval of zero rounds.
pub const ZERO_RESCHEDULE_INTERVAL: &str = "zero_reschedule_interval";
/// An aggregator that fails `AggregatorKind::validate`.
pub const INVALID_AGGREGATOR: &str = "invalid_aggregator";
/// An adversary config with out-of-range fractions or probabilities.
pub const INVALID_ADVERSARY: &str = "invalid_adversary";
/// A churn process with negative rates or a non-positive horizon.
pub const INVALID_CHURN: &str = "invalid_churn";
/// A hierarchical topology with zero edges or a bad edge link.
pub const INVALID_TOPOLOGY: &str = "invalid_topology";
/// A configuration that cannot be expressed as a wire `JobSpec`
/// (closures: custom probes, injectors, reschedulers, ad-hoc fleets).
pub const NOT_SERIALIZABLE: &str = "not_serializable";
/// A wire `JobSpec` that is malformed or uses an unknown field value.
pub const INVALID_SPEC: &str = "invalid_spec";
/// An online client-selection config with a bad policy parameter, a zero
/// cohort, or a combination the build target cannot honour.
pub const INVALID_SELECTION: &str = "invalid_selection";

/// Every cause code, in declaration order. Exhaustiveness is enforced in
/// `fedsched-fl`, where `ConfigError::cause_code()` maps each variant to a
/// constant from this module.
pub const ALL_CAUSE_CODES: &[&str] = &[
    ZERO_COHORT_SIZE,
    ZERO_THREADS,
    CONFIGURED_AFTER_RUN,
    EMPTY_ASSIGNMENT,
    INVALID_DEADLINE,
    INVALID_SOC_FLOOR,
    INVALID_RETRY,
    INVALID_ASYNC,
    UNSUPPORTED_OPTION,
    ARITY_MISMATCH,
    ZERO_RESCHEDULE_INTERVAL,
    INVALID_AGGREGATOR,
    INVALID_ADVERSARY,
    INVALID_CHURN,
    INVALID_TOPOLOGY,
    NOT_SERIALIZABLE,
    INVALID_SPEC,
    INVALID_SELECTION,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for code in ALL_CAUSE_CODES {
            assert!(seen.insert(*code), "duplicate cause code `{code}`");
        }
    }

    #[test]
    fn codes_are_snake_case() {
        // The published convention is snake_case (NOT kebab-case — see the
        // module docs): ascii lowercase and underscores only, no leading /
        // trailing / doubled separators.
        for code in ALL_CAUSE_CODES {
            assert!(!code.is_empty());
            assert!(
                code.bytes().all(|b| b.is_ascii_lowercase() || b == b'_'),
                "cause code `{code}` is not snake_case"
            );
            assert!(!code.starts_with('_') && !code.ends_with('_'));
            assert!(!code.contains("__"), "cause code `{code}` has `__`");
        }
    }

    #[test]
    fn table_is_pinned() {
        // Wire-contract pin: adding a code extends this list; removing or
        // renaming one is a breaking change and must not happen silently.
        assert_eq!(
            ALL_CAUSE_CODES,
            &[
                "zero_cohort_size",
                "zero_threads",
                "configured_after_run",
                "empty_assignment",
                "invalid_deadline",
                "invalid_soc_floor",
                "invalid_retry",
                "invalid_async",
                "unsupported_option",
                "arity_mismatch",
                "zero_reschedule_interval",
                "invalid_aggregator",
                "invalid_adversary",
                "invalid_churn",
                "invalid_topology",
                "not_serializable",
                "invalid_spec",
                "invalid_selection",
            ]
        );
    }
}
