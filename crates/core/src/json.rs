//! A minimal, dependency-free JSON document layer with deterministic
//! encoding.
//!
//! The workspace's `serde` is a vendored marker stub (offline container, no
//! registry — see `vendor/README.md`), so anything that must *really* move
//! structured data over a wire needs its own encode/decode path. Telemetry
//! already hand-encodes its events; this module is the decode-capable
//! counterpart the orchestration service (`fedsched-serve`) uses for job
//! specs and snapshots:
//!
//! * [`JsonValue`] — a small document tree. Objects preserve **insertion
//!   order**, which is what makes encoding deterministic: encoding a parsed
//!   document reproduces the field order of its producer, and every in-tree
//!   producer writes fields in one fixed order.
//! * [`JsonValue::parse`] — a recursive-descent parser for the JSON subset
//!   the wire schemas use (no unicode escapes beyond `\uXXXX` of the BMP,
//!   nesting capped at [`MAX_DEPTH`]).
//! * [`JsonValue::encode`] — compact, byte-deterministic output. `f64`
//!   values print through Rust's shortest-round-trip formatting (the same
//!   rule the telemetry JSONL uses), so `parse(encode(v)) == v` exactly.
//!
//! Non-finite floats are not representable in JSON numbers; the wire
//! schemas encode them as the strings `"inf"` / `"-inf"` / `"nan"` and
//! decode them through [`JsonValue::as_f64_lenient`].

use std::fmt;

/// Maximum container nesting the parser accepts; deeper documents are
/// rejected rather than risking a stack overflow on hostile input (the
/// serve crate parses request bodies straight off a socket).
pub const MAX_DEPTH: usize = 64;

/// A JSON document node. Object fields keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has no non-finite literals).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

/// Why a document failed to parse or a field lookup failed.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description, stable enough for test assertions.
    pub message: String,
    /// Byte offset the parser had reached (0 for shape errors raised by
    /// accessors after parsing).
    pub offset: usize,
}

impl JsonError {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        JsonError {
            message: message.into(),
            offset,
        }
    }

    /// A shape error raised by an accessor (not tied to a byte offset).
    pub fn shape(message: impl Into<String>) -> Self {
        JsonError::new(message, 0)
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parse a complete JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::new("trailing characters after document", pos));
        }
        Ok(value)
    }

    /// Encode compactly (no whitespace), byte-deterministically.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Num(v) => push_f64(out, *v),
            JsonValue::Str(s) => push_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_escaped(out, key);
                    out.push(':');
                    value.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match; in-tree producers never repeat
    /// keys). `None` for missing fields and non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field, as a shape error when absent.
    pub fn req(&self, key: &str) -> Result<&JsonValue, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::shape(format!("missing field `{key}`")))
    }

    /// The value as a finite `f64`.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            JsonValue::Num(v) => Ok(*v),
            other => Err(JsonError::shape(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as an `f64`, additionally accepting the strings `"inf"`,
    /// `"-inf"` and `"nan"` — the wire encoding for non-finite floats.
    pub fn as_f64_lenient(&self) -> Result<f64, JsonError> {
        match self {
            JsonValue::Num(v) => Ok(*v),
            JsonValue::Str(s) => match s.as_str() {
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                "nan" => Ok(f64::NAN),
                _ => Err(JsonError::shape(format!("expected number, found \"{s}\""))),
            },
            other => Err(JsonError::shape(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as a `u64` (a non-negative integral number).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        let v = self.as_f64()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
            Ok(v as u64)
        } else {
            Err(JsonError::shape(format!(
                "expected non-negative integer, found {v}"
            )))
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let v = self.as_u64()?;
        usize::try_from(v).map_err(|_| JsonError::shape(format!("integer {v} overflows usize")))
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(JsonError::shape(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as a `&str`.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(JsonError::shape(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[JsonValue], JsonError> {
        match self {
            JsonValue::Arr(items) => Ok(items),
            other => Err(JsonError::shape(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// True iff the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// The node's type name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }
}

/// Build an object from `(key, value)` pairs, keeping the given order.
pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// An `f64` node when finite, the wire string (`"inf"`, `"-inf"`, `"nan"`)
/// otherwise — the encoding [`JsonValue::as_f64_lenient`] reverses.
pub fn num(v: f64) -> JsonValue {
    if v.is_finite() {
        JsonValue::Num(v)
    } else if v.is_nan() {
        JsonValue::Str("nan".to_string())
    } else if v > 0.0 {
        JsonValue::Str("inf".to_string())
    } else {
        JsonValue::Str("-inf".to_string())
    }
}

/// A string node.
pub fn str(s: impl Into<String>) -> JsonValue {
    JsonValue::Str(s.into())
}

/// Format a finite float exactly like the encoder does (shortest
/// round-trip, integral values without a decimal point).
fn push_f64(out: &mut String, v: f64) {
    debug_assert!(v.is_finite(), "JSON numbers must be finite");
    use fmt::Write;
    let _ = write!(out, "{v}");
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError::new("document nested too deeply", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::new("unexpected end of document", *pos)),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError::new(format!("expected `{word}`"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::new("invalid number bytes", start))?;
    let v: f64 = text
        .parse()
        .map_err(|_| JsonError::new(format!("invalid number `{text}`"), start))?;
    if !v.is_finite() {
        return Err(JsonError::new("number overflows f64 range", start));
    }
    Ok(JsonValue::Num(v))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::new("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::new("truncated \\u escape", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::new("invalid \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::new("invalid \\u escape", *pos))?;
                        // Surrogates would need pairing; the in-tree wire
                        // schemas never produce them.
                        let c = char::from_u32(code)
                            .ok_or_else(|| JsonError::new("\\u escape is not a scalar", *pos))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(JsonError::new("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::new("invalid UTF-8 in string", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(JsonError::new("expected `,` or `]` in array", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError::new("expected string key in object", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError::new("expected `:` after object key", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(JsonError::new("expected `,` or `}` in object", *pos)),
        }
    }
}

/// FNV-1a 64-bit hash — the workspace's stable fingerprint function for
/// canonical JSON bytes (job-spec caching keys, snapshot integrity). Not a
/// cryptographic hash; collisions only cost a cache miss.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in [
            "null", "true", "false", "0", "-1", "3.5", "1e-9", "\"hi\"", "[]", "{}",
        ] {
            let v = JsonValue::parse(text).unwrap();
            let enc = v.encode();
            assert_eq!(JsonValue::parse(&enc).unwrap(), v, "{text} -> {enc}");
        }
    }

    #[test]
    fn float_shortest_round_trip_is_exact() {
        for v in [
            0.1,
            1.0 / 3.0,
            2.5e6,
            f64::MAX,
            f64::MIN_POSITIVE,
            -0.0,
            123_456_789.123_456_79,
        ] {
            let enc = JsonValue::Num(v).encode();
            let back = JsonValue::parse(&enc).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {enc}");
        }
    }

    #[test]
    fn nonfinite_floats_go_through_strings() {
        for (v, s) in [(f64::INFINITY, "\"inf\""), (f64::NEG_INFINITY, "\"-inf\"")] {
            let node = num(v);
            assert_eq!(node.encode(), s);
            assert_eq!(JsonValue::parse(s).unwrap().as_f64_lenient().unwrap(), v);
        }
        assert!(JsonValue::parse("\"nan\"")
            .unwrap()
            .as_f64_lenient()
            .unwrap()
            .is_nan());
    }

    #[test]
    fn object_order_is_preserved() {
        let doc = r#"{"b":1,"a":2,"z":[{"y":3}]}"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.encode(), doc);
        assert_eq!(v.get("a").unwrap().as_u64().unwrap(), 2);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = JsonValue::Str("a\"b\\c\nd\te\u{0001}é".to_string());
        let enc = v.encode();
        assert_eq!(enc, "\"a\\\"b\\\\c\\nd\\te\\u0001é\"");
        assert_eq!(JsonValue::parse(&enc).unwrap(), v);
        assert_eq!(
            JsonValue::parse("\"\\u0041\\/\"")
                .unwrap()
                .as_str()
                .unwrap(),
            "A/"
        );
    }

    #[test]
    fn whitespace_and_nesting_parse() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.encode(), r#"{"a":[1,2],"b":{}}"#);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1e999",
            "[1] garbage",
            "{'a':1}",
        ] {
            assert!(JsonValue::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn depth_limit_guards_hostile_input() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(JsonValue::parse(&deep).is_err());
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_report_shapes() {
        let v = JsonValue::parse(r#"{"n":1.5,"s":"x","b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.req("n").unwrap().as_f64().unwrap(), 1.5);
        assert!(v.req("n").unwrap().as_u64().is_err());
        assert_eq!(v.req("s").unwrap().as_str().unwrap(), "x");
        assert!(v.req("s").unwrap().as_bool().is_err());
        assert_eq!(v.req("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.req("zz").is_err());
    }

    #[test]
    fn fnv_fingerprint_is_stable() {
        // Pinned: job IDs and cache keys derive from these exact values.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"fedsched"), fnv1a64(b"fedsched"));
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
