//! Exact min-max solver by dynamic programming — the validation oracle.
//!
//! Because IID shards are interchangeable, the state space is just (user
//! prefix, shards remaining): `best[j][r]` = minimal achievable makespan
//! assigning `r` shards to users `j..n`. `O(n s^2)` time, `O(s)` space per
//! row — fine for validation and small benchmarks, too slow for the `s` in
//! the thousands where Fed-LBAP's `O(ns log ns)` matters (the gap is
//! measured in `benches/schedulers.rs`).

use crate::cost::CostMatrix;
use crate::schedule::{Schedule, ScheduleError, Scheduler};

/// Exact DP makespan minimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactMinMax;

impl Scheduler for ExactMinMax {
    fn name(&self) -> &'static str {
        "Exact-DP"
    }

    fn schedule(&self, costs: &CostMatrix) -> Result<Schedule, ScheduleError> {
        let n = costs.n_users();
        let s = costs.total_shards();
        if n == 0 {
            return Err(ScheduleError::NoUsers);
        }

        // best[j][r]: minimal makespan placing r shards on users j..n.
        // Filled backwards; usize::MAX-like sentinel is f64::INFINITY.
        let mut best = vec![vec![f64::INFINITY; s + 1]; n + 1];
        best[n][0] = 0.0;
        for j in (0..n).rev() {
            for r in 0..=s {
                let mut b = f64::INFINITY;
                for k in 0..=r {
                    let tail = best[j + 1][r - k];
                    if tail.is_infinite() {
                        continue;
                    }
                    let here = costs.cost(j, k).max(tail);
                    if here < b {
                        b = here;
                    }
                    // Rows are monotone in k: once cost(j,k) alone exceeds
                    // the best found, larger k cannot help.
                    if costs.cost(j, k) >= b && tail <= costs.cost(j, k) {
                        break;
                    }
                }
                best[j][r] = b;
            }
        }

        // Recover the assignment.
        let mut shards = vec![0usize; n];
        let mut r = s;
        for j in 0..n {
            let target = best[j][r];
            for k in 0..=r {
                let tail = best[j + 1][r - k];
                if tail.is_finite() && costs.cost(j, k).max(tail) <= target + 1e-12 {
                    shards[j] = k;
                    r -= k;
                    break;
                }
            }
        }
        debug_assert_eq!(r, 0);
        Ok(Schedule::new(shards, costs.shard_size()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force enumeration over all compositions (tiny instances only).
    fn brute_force(costs: &CostMatrix) -> f64 {
        fn rec(costs: &CostMatrix, j: usize, remaining: usize, current_max: f64, best: &mut f64) {
            let n = costs.n_users();
            if j == n {
                if remaining == 0 && current_max < *best {
                    *best = current_max;
                }
                return;
            }
            for k in 0..=remaining {
                let m = current_max.max(costs.cost(j, k));
                if m < *best {
                    rec(costs, j + 1, remaining - k, m, best);
                }
            }
        }
        let mut best = f64::INFINITY;
        rec(costs, 0, costs.total_shards(), 0.0, &mut best);
        best
    }

    #[test]
    fn dp_matches_brute_force_enumeration() {
        let cases: Vec<(Vec<f64>, Vec<f64>, usize)> = vec![
            (vec![1.0, 2.0], vec![0.0, 0.0], 6),
            (vec![3.0, 1.0, 2.0], vec![1.0, 0.0, 0.5], 8),
            (vec![1.0, 1.0, 1.0], vec![0.0, 2.0, 4.0], 5),
            (vec![10.0, 1.0], vec![0.0, 5.0], 7),
        ];
        for (rates, comm, s) in cases {
            let c = CostMatrix::from_linear_rates(&rates, s, 10.0, &comm);
            let dp = ExactMinMax.schedule(&c).unwrap().predicted_makespan(&c);
            let bf = brute_force(&c);
            assert!(
                (dp - bf).abs() < 1e-9,
                "dp {dp} != bf {bf} ({rates:?}, {comm:?}, {s})"
            );
        }
    }

    #[test]
    fn dp_schedule_covers_all_shards() {
        let c = CostMatrix::from_linear_rates(&[2.0, 1.0, 3.0], 11, 10.0, &[0.0, 0.0, 0.0]);
        let s = ExactMinMax.schedule(&c).unwrap();
        assert_eq!(s.total_shards(), 11);
    }

    #[test]
    fn recovered_assignment_attains_dp_value() {
        let c = CostMatrix::from_linear_rates(&[1.7, 0.4, 2.2], 13, 10.0, &[0.3, 0.9, 0.0]);
        let sched = ExactMinMax.schedule(&c).unwrap();
        let bf = brute_force(&c);
        assert!((sched.predicted_makespan(&c) - bf).abs() < 1e-9);
    }

    #[test]
    fn empty_users_error() {
        // CostMatrix can't be built with zero users, so exercise the
        // Scheduler contract through a 1-user edge instead.
        let c = CostMatrix::from_linear_rates(&[1.0], 1, 10.0, &[0.0]);
        let s = ExactMinMax.schedule(&c).unwrap();
        assert_eq!(s.shards, vec![1]);
    }
}
