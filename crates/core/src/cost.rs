//! The cost matrix `C = {c_jk}`: predicted time for user `j` to handle a
//! task of `k` shards (paper Section V-B).
//!
//! Entries include both computation (from a [`CostProfile`]) and the user's
//! per-round communication time, and rows are forced monotone non-decreasing
//! in `k` (paper Property 1) with a running-max pass, so the downstream
//! binary searches are always valid even for noisy tabulated profiles.

use fedsched_profiler::CostProfile;
use serde::{Deserialize, Serialize};

/// Dense `n x s` cost matrix with monotone rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostMatrix {
    n_users: usize,
    total_shards: usize,
    shard_size: f64,
    /// Row-major: `rows[j * total_shards + (k - 1)]` is the cost of `k`
    /// shards on user `j`, `k` in `1..=total_shards`.
    rows: Vec<f64>,
    /// Per-user fixed communication cost (charged only when `k > 0`).
    comm: Vec<f64>,
}

impl CostMatrix {
    /// Build from per-user time profiles.
    ///
    /// `comm[j]` is user `j`'s per-round up+down transfer time, charged
    /// whenever the user participates (`k >= 1`).
    ///
    /// `total_shards == 0` is a valid degenerate instance (an empty round):
    /// the matrix has no entries and every scheduler must return the
    /// all-zeros schedule for it.
    ///
    /// # Panics
    /// Panics if `profiles` is empty, lengths mismatch, or `shard_size <= 0`.
    pub fn from_profiles<P: CostProfile>(
        profiles: &[P],
        total_shards: usize,
        shard_size: f64,
        comm: &[f64],
    ) -> Self {
        assert!(!profiles.is_empty(), "CostMatrix: need at least one user");
        assert_eq!(
            profiles.len(),
            comm.len(),
            "CostMatrix: profiles/comm length mismatch"
        );
        assert!(shard_size > 0.0, "CostMatrix: shard_size must be positive");

        let n = profiles.len();
        let mut rows = Vec::with_capacity(n * total_shards);
        for (p, &c) in profiles.iter().zip(comm) {
            let mut running_max = 0.0f64;
            for k in 1..=total_shards {
                let t = p.time_for(k as f64 * shard_size) + c;
                running_max = running_max.max(t);
                rows.push(running_max);
            }
        }
        CostMatrix {
            n_users: n,
            total_shards,
            shard_size,
            rows,
            comm: comm.to_vec(),
        }
    }

    /// Build from constant per-shard rates: `cost(j, k) = rate[j] * k + comm[j]`.
    /// Convenient for tests and synthetic benchmarks.
    pub fn from_linear_rates(
        rates_per_shard: &[f64],
        total_shards: usize,
        shard_size: f64,
        comm: &[f64],
    ) -> Self {
        struct Linear(f64, f64);
        impl CostProfile for Linear {
            fn time_for(&self, samples: f64) -> f64 {
                self.0 * samples / self.1
            }
        }
        let profiles: Vec<Linear> = rates_per_shard
            .iter()
            .map(|&r| Linear(r, shard_size))
            .collect();
        CostMatrix::from_profiles(&profiles, total_shards, shard_size, comm)
    }

    /// Number of users `n`.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Total shards `s` to be distributed.
    pub fn total_shards(&self) -> usize {
        self.total_shards
    }

    /// Samples per shard.
    pub fn shard_size(&self) -> f64 {
        self.shard_size
    }

    /// Cost of `k` shards on user `j`; `k == 0` is free (no participation,
    /// no communication).
    ///
    /// # Panics
    /// Panics if `j >= n_users` or `k > total_shards`.
    pub fn cost(&self, j: usize, k: usize) -> f64 {
        assert!(j < self.n_users, "user index {j} out of range");
        assert!(k <= self.total_shards, "shard count {k} exceeds total");
        if k == 0 {
            0.0
        } else {
            self.rows[j * self.total_shards + (k - 1)]
        }
    }

    /// The user's fixed communication cost.
    pub fn comm(&self, j: usize) -> f64 {
        self.comm[j]
    }

    /// Largest `k` such that `cost(j, k) <= threshold` (0 if even one shard
    /// exceeds it). Binary search over the monotone row: `O(log s)`.
    pub fn max_shards_within(&self, j: usize, threshold: f64) -> usize {
        let row = &self.rows[j * self.total_shards..(j + 1) * self.total_shards];
        // partition_point: first index where cost > threshold.
        row.partition_point(|&c| c <= threshold)
    }

    /// All matrix entries, sorted ascending (the candidate thresholds of
    /// Fed-LBAP's binary search).
    pub fn sorted_costs(&self) -> Vec<f64> {
        let mut v = self.rows.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("costs are finite"));
        v
    }

    /// Per-shard marginal cost `cost(j, k) - cost(j, k-1)`.
    pub fn marginal(&self, j: usize, k: usize) -> f64 {
        assert!(k >= 1);
        self.cost(j, k) - self.cost(j, k - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_profiler::LinearProfile;

    #[test]
    fn linear_rates_build_expected_entries() {
        let c = CostMatrix::from_linear_rates(&[1.0, 2.0], 3, 50.0, &[0.5, 0.0]);
        assert_eq!(c.cost(0, 0), 0.0);
        assert_eq!(c.cost(0, 1), 1.5);
        assert_eq!(c.cost(0, 3), 3.5);
        assert_eq!(c.cost(1, 2), 4.0);
    }

    #[test]
    fn rows_are_monotone_even_with_odd_profiles() {
        // A profile that is *not* monotone (violates Property 1): the
        // running-max pass must repair the row.
        struct Weird;
        impl CostProfile for Weird {
            fn time_for(&self, samples: f64) -> f64 {
                if samples as usize == 200 {
                    1.0
                } else {
                    samples / 100.0
                }
            }
        }
        let c = CostMatrix::from_profiles(&[Weird], 4, 100.0, &[0.0]);
        for k in 2..=4 {
            assert!(c.cost(0, k) >= c.cost(0, k - 1));
        }
    }

    #[test]
    fn comm_cost_charged_only_when_participating() {
        let p = [LinearProfile::new(0.0, 0.01)];
        let c = CostMatrix::from_profiles(&p, 5, 100.0, &[2.0]);
        assert_eq!(c.cost(0, 0), 0.0);
        assert!((c.cost(0, 1) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_shards_within_matches_linear_scan() {
        let c = CostMatrix::from_linear_rates(&[1.0, 3.0], 10, 10.0, &[0.0, 1.0]);
        for j in 0..2 {
            for threshold in [0.0, 0.5, 3.0, 7.0, 100.0] {
                let fast = c.max_shards_within(j, threshold);
                let slow = (1..=10)
                    .filter(|&k| c.cost(j, k) <= threshold)
                    .max()
                    .unwrap_or(0);
                assert_eq!(fast, slow, "j={j} threshold={threshold}");
            }
        }
    }

    #[test]
    fn sorted_costs_is_ascending_with_all_entries() {
        let c = CostMatrix::from_linear_rates(&[2.0, 1.0], 4, 10.0, &[0.0, 0.0]);
        let s = c.sorted_costs();
        assert_eq!(s.len(), 8);
        for w in s.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn marginal_cost_of_first_shard_includes_comm() {
        let c = CostMatrix::from_linear_rates(&[1.0], 3, 10.0, &[5.0]);
        assert_eq!(c.marginal(0, 1), 6.0);
        assert_eq!(c.marginal(0, 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_comm_rejected() {
        let p = [LinearProfile::new(0.0, 1.0)];
        let _ = CostMatrix::from_profiles(&p, 3, 10.0, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_user_index_panics() {
        let c = CostMatrix::from_linear_rates(&[1.0], 3, 10.0, &[0.0]);
        let _ = c.cost(1, 1);
    }
}
