//! Deadline-based straggler dropout — the "system design" baseline the
//! paper contrasts against (Bonawitz et al., SysML'19): give everyone an
//! equal share, and hard-drop whoever cannot finish by the deadline.
//!
//! Unlike Fed-LBAP, dropped users' data is simply *lost* for the round
//! ("while not attempting to make best use from their data", paper
//! Section II-B), so this scheduler trades coverage for latency. The
//! [`DropReport`] quantifies that loss so experiments can show both sides.

use serde::Serialize;

use crate::baselines::EqualScheduler;
use crate::cost::CostMatrix;
use crate::schedule::{Schedule, ScheduleError, Scheduler};

/// Equal-share scheduling with a hard per-round deadline.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineDropout {
    /// Users whose equal share would exceed this many seconds are dropped.
    pub deadline_s: f64,
}

/// What the deadline cost us.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DropReport {
    /// Indices of dropped users.
    pub dropped: Vec<usize>,
    /// Shards lost with them (not redistributed).
    pub lost_shards: usize,
    /// Fraction of the round's data that was lost.
    pub lost_fraction: f64,
}

impl DeadlineDropout {
    /// Create with a deadline in seconds.
    ///
    /// # Panics
    /// Panics on a non-positive deadline.
    pub fn new(deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0, "deadline must be positive");
        DeadlineDropout { deadline_s }
    }

    /// A deadline calibrated as `factor` times the *mean* per-user time of
    /// the equal split — the common "wait a bit longer than average, then
    /// cut" production policy.
    pub fn from_mean_factor(costs: &CostMatrix, factor: f64) -> Result<Self, ScheduleError> {
        let equal = EqualScheduler.schedule(costs)?;
        let times = equal.predicted_times(costs);
        let active: Vec<f64> = times.into_iter().filter(|&t| t > 0.0).collect();
        let mean = active.iter().sum::<f64>() / active.len().max(1) as f64;
        Ok(DeadlineDropout::new(mean * factor))
    }

    /// Schedule and report what was dropped.
    pub fn schedule_with_report(
        &self,
        costs: &CostMatrix,
    ) -> Result<(Schedule, DropReport), ScheduleError> {
        let equal = EqualScheduler.schedule(costs)?;
        let mut shards = equal.shards.clone();
        let mut dropped = Vec::new();
        let mut lost = 0usize;
        for (j, k) in shards.iter_mut().enumerate() {
            if *k > 0 && costs.cost(j, *k) > self.deadline_s {
                dropped.push(j);
                lost += *k;
                *k = 0;
            }
        }
        let total = equal.total_shards();
        let report = DropReport {
            dropped,
            lost_shards: lost,
            lost_fraction: if total == 0 {
                0.0
            } else {
                lost as f64 / total as f64
            },
        };
        Ok((Schedule::new(shards, costs.shard_size()), report))
    }
}

impl Scheduler for DeadlineDropout {
    fn name(&self) -> &'static str {
        "Deadline-Dropout"
    }

    /// Note: the returned schedule may cover *fewer* shards than
    /// `costs.total_shards()` — dropped data is lost, by design.
    fn schedule(&self, costs: &CostMatrix) -> Result<Schedule, ScheduleError> {
        self.schedule_with_report(costs).map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lbap::FedLbap;

    fn costs() -> CostMatrix {
        // User 1 is 10x slower.
        CostMatrix::from_linear_rates(&[1.0, 10.0, 1.2], 30, 10.0, &[0.0, 0.0, 0.0])
    }

    #[test]
    fn slow_user_is_dropped_and_data_lost() {
        let c = costs();
        // Equal split: 10 shards each -> times 10, 100, 12.
        let (schedule, report) = DeadlineDropout::new(20.0).schedule_with_report(&c).unwrap();
        assert_eq!(report.dropped, vec![1]);
        assert_eq!(report.lost_shards, 10);
        assert!((report.lost_fraction - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(schedule.total_shards(), 20);
        assert!(schedule.predicted_makespan(&c) <= 20.0);
    }

    #[test]
    fn generous_deadline_drops_nobody() {
        let c = costs();
        let (schedule, report) = DeadlineDropout::new(1000.0)
            .schedule_with_report(&c)
            .unwrap();
        assert!(report.dropped.is_empty());
        assert_eq!(schedule.total_shards(), 30);
    }

    #[test]
    fn mean_factor_policy_cuts_the_straggler() {
        let c = costs();
        // Mean equal time = (10+100+12)/3 ≈ 40.7; factor 1.2 -> ~49 s.
        let policy = DeadlineDropout::from_mean_factor(&c, 1.2).unwrap();
        let (_, report) = policy.schedule_with_report(&c).unwrap();
        assert_eq!(report.dropped, vec![1]);
    }

    #[test]
    fn lbap_meets_the_same_deadline_without_losing_data() {
        // The paper's pitch: Fed-LBAP achieves low makespan *and* full
        // coverage, dominating hard dropout.
        let c = costs();
        let lbap = FedLbap.schedule(&c).unwrap();
        let (dropped_sched, report) = DeadlineDropout::new(20.0).schedule_with_report(&c).unwrap();
        assert!(lbap.predicted_makespan(&c) <= 20.0 + 1e-9);
        assert_eq!(lbap.total_shards(), 30);
        assert!(dropped_sched.total_shards() < 30);
        assert!(report.lost_shards > 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_deadline_rejected() {
        let _ = DeadlineDropout::new(0.0);
    }
}
