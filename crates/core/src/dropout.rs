//! Deadline-based straggler dropout — the "system design" baseline the
//! paper contrasts against (Bonawitz et al., SysML'19): give everyone an
//! equal share, and hard-drop whoever cannot finish by the deadline.
//!
//! Unlike Fed-LBAP, dropped users' data is simply *lost* for the round
//! ("while not attempting to make best use from their data", paper
//! Section II-B), so this scheduler trades coverage for latency. The
//! [`DropReport`] quantifies that loss so experiments can show both sides.

use fedsched_telemetry::{Event, Probe};
use serde::Serialize;

use crate::baselines::EqualScheduler;
use crate::cost::CostMatrix;
use crate::schedule::{emit_decision, Schedule, ScheduleError, Scheduler};

/// Equal-share scheduling with a hard per-round deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineDropout {
    /// Users whose equal share would exceed this many seconds are dropped.
    pub deadline_s: f64,
}

/// What the deadline cost us.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DropReport {
    /// Indices of dropped users.
    pub dropped: Vec<usize>,
    /// Shards lost with them (not redistributed).
    pub lost_shards: usize,
    /// Fraction of the round's data that was lost.
    pub lost_fraction: f64,
}

impl DeadlineDropout {
    /// Create with a deadline in seconds.
    ///
    /// # Panics
    /// Panics on a non-positive deadline.
    pub fn new(deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0, "deadline must be positive");
        DeadlineDropout { deadline_s }
    }

    /// A deadline calibrated as `factor` times the *mean* per-user time of
    /// the equal split — the common "wait a bit longer than average, then
    /// cut" production policy.
    ///
    /// Degenerate instances where that mean is not a positive finite number
    /// — an all-zero cost matrix, an empty round, or a non-positive
    /// `factor` — yield [`ScheduleError::Infeasible`] instead of a panic:
    /// there is no meaningful deadline to calibrate.
    pub fn from_mean_factor(costs: &CostMatrix, factor: f64) -> Result<Self, ScheduleError> {
        let equal = EqualScheduler.schedule(costs)?;
        let times = equal.predicted_times(costs);
        let active: Vec<f64> = times.into_iter().filter(|&t| t > 0.0).collect();
        let mean = active.iter().sum::<f64>() / active.len().max(1) as f64;
        let deadline = mean * factor;
        if !(deadline > 0.0 && deadline.is_finite()) {
            return Err(ScheduleError::Infeasible);
        }
        Ok(DeadlineDropout::new(deadline))
    }

    /// Schedule and report what was dropped.
    pub fn schedule_with_report(
        &self,
        costs: &CostMatrix,
    ) -> Result<(Schedule, DropReport), ScheduleError> {
        let equal = EqualScheduler.schedule(costs)?;
        let mut shards = equal.shards.clone();
        let mut dropped = Vec::new();
        let mut lost = 0usize;
        for (j, k) in shards.iter_mut().enumerate() {
            if *k > 0 && costs.cost(j, *k) > self.deadline_s {
                dropped.push(j);
                lost += *k;
                *k = 0;
            }
        }
        let total = equal.total_shards();
        let report = DropReport {
            dropped,
            lost_shards: lost,
            lost_fraction: if total == 0 {
                0.0
            } else {
                lost as f64 / total as f64
            },
        };
        Ok((Schedule::new(shards, costs.shard_size()), report))
    }

    /// [`DeadlineDropout::schedule_with_report`], emitting one
    /// `deadline_drop` event per dropped user through `probe`.
    pub fn schedule_with_report_traced(
        &self,
        costs: &CostMatrix,
        probe: &Probe,
    ) -> Result<(Schedule, DropReport), ScheduleError> {
        let result = self.schedule_with_report(costs)?;
        {
            let (schedule, report) = &result;
            let equal = EqualScheduler.schedule(costs)?;
            for &user in &report.dropped {
                let k = equal.shards[user];
                probe.emit(|| Event::DeadlineDrop {
                    user,
                    predicted_s: costs.cost(user, k),
                    deadline_s: self.deadline_s,
                    lost_shards: k,
                });
            }
            emit_decision(
                self.name(),
                costs,
                &Ok(schedule.clone()),
                Some(self.deadline_s),
                probe,
            );
        }
        Ok(result)
    }
}

impl Scheduler for DeadlineDropout {
    fn name(&self) -> &'static str {
        "Deadline-Dropout"
    }

    /// Note: the returned schedule may cover *fewer* shards than
    /// `costs.total_shards()` — dropped data is lost, by design.
    fn schedule(&self, costs: &CostMatrix) -> Result<Schedule, ScheduleError> {
        self.schedule_with_report(costs).map(|(s, _)| s)
    }

    /// Emits per-user `deadline_drop` events ahead of the decision record,
    /// with the deadline as the decision threshold.
    fn schedule_traced(
        &self,
        costs: &CostMatrix,
        probe: &Probe,
    ) -> Result<Schedule, ScheduleError> {
        match self.schedule_with_report_traced(costs, probe) {
            Ok((schedule, _)) => Ok(schedule),
            Err(err) => {
                let failed: Result<Schedule, ScheduleError> = Err(err.clone());
                emit_decision(self.name(), costs, &failed, Some(self.deadline_s), probe);
                Err(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lbap::FedLbap;

    fn costs() -> CostMatrix {
        // User 1 is 10x slower.
        CostMatrix::from_linear_rates(&[1.0, 10.0, 1.2], 30, 10.0, &[0.0, 0.0, 0.0])
    }

    #[test]
    fn slow_user_is_dropped_and_data_lost() {
        let c = costs();
        // Equal split: 10 shards each -> times 10, 100, 12.
        let (schedule, report) = DeadlineDropout::new(20.0).schedule_with_report(&c).unwrap();
        assert_eq!(report.dropped, vec![1]);
        assert_eq!(report.lost_shards, 10);
        assert!((report.lost_fraction - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(schedule.total_shards(), 20);
        assert!(schedule.predicted_makespan(&c) <= 20.0);
    }

    #[test]
    fn generous_deadline_drops_nobody() {
        let c = costs();
        let (schedule, report) = DeadlineDropout::new(1000.0)
            .schedule_with_report(&c)
            .unwrap();
        assert!(report.dropped.is_empty());
        assert_eq!(schedule.total_shards(), 30);
    }

    #[test]
    fn mean_factor_policy_cuts_the_straggler() {
        let c = costs();
        // Mean equal time = (10+100+12)/3 ≈ 40.7; factor 1.2 -> ~49 s.
        let policy = DeadlineDropout::from_mean_factor(&c, 1.2).unwrap();
        let (_, report) = policy.schedule_with_report(&c).unwrap();
        assert_eq!(report.dropped, vec![1]);
    }

    #[test]
    fn lbap_meets_the_same_deadline_without_losing_data() {
        // The paper's pitch: Fed-LBAP achieves low makespan *and* full
        // coverage, dominating hard dropout.
        let c = costs();
        let lbap = FedLbap.schedule(&c).unwrap();
        let (dropped_sched, report) = DeadlineDropout::new(20.0).schedule_with_report(&c).unwrap();
        assert!(lbap.predicted_makespan(&c) <= 20.0 + 1e-9);
        assert_eq!(lbap.total_shards(), 30);
        assert!(dropped_sched.total_shards() < 30);
        assert!(report.lost_shards > 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_deadline_rejected() {
        let _ = DeadlineDropout::new(0.0);
    }

    #[test]
    fn all_zero_cost_matrix_yields_error_not_panic() {
        // Regression: a free cost matrix used to make the mean deadline 0
        // and panic inside `DeadlineDropout::new`.
        let c = CostMatrix::from_linear_rates(&[0.0, 0.0], 10, 10.0, &[0.0, 0.0]);
        assert_eq!(
            DeadlineDropout::from_mean_factor(&c, 1.2),
            Err(ScheduleError::Infeasible)
        );
    }

    #[test]
    fn empty_round_yields_error_not_panic() {
        let c = CostMatrix::from_linear_rates(&[1.0, 2.0], 0, 10.0, &[0.0, 0.0]);
        assert_eq!(
            DeadlineDropout::from_mean_factor(&c, 1.2),
            Err(ScheduleError::Infeasible)
        );
    }

    #[test]
    fn non_positive_factor_yields_error_not_panic() {
        let c = costs();
        for factor in [0.0, -1.0, f64::NAN] {
            assert_eq!(
                DeadlineDropout::from_mean_factor(&c, factor),
                Err(ScheduleError::Infeasible),
                "factor {factor}"
            );
        }
    }

    #[test]
    fn traced_schedule_emits_drop_events_and_decision() {
        use fedsched_telemetry::{EventLog, Probe};
        use std::sync::Arc;
        let c = costs();
        let log = Arc::new(EventLog::new());
        let policy = DeadlineDropout::new(20.0);
        let traced = policy
            .schedule_traced(&c, &Probe::attached(log.clone()))
            .unwrap();
        assert_eq!(traced, policy.schedule(&c).unwrap());
        let events = log.events();
        let drops: Vec<(usize, usize)> = events
            .iter()
            .filter_map(|e| match e {
                Event::DeadlineDrop {
                    user,
                    predicted_s,
                    deadline_s,
                    lost_shards,
                } => {
                    assert!(*predicted_s > *deadline_s);
                    Some((*user, *lost_shards))
                }
                _ => None,
            })
            .collect();
        assert_eq!(drops, vec![(1, 10)]);
        assert!(events.iter().any(|e| matches!(
            e,
            Event::ScheduleDecision {
                threshold: Some(d),
                ..
            } if *d == 20.0
        )));
    }
}
