//! Deadline-based straggler dropout — the "system design" baseline the
//! paper contrasts against (Bonawitz et al., SysML'19): give everyone an
//! equal share, and hard-drop whoever cannot finish by the deadline.
//!
//! Unlike Fed-LBAP, dropped users' data is simply *lost* for the round
//! ("while not attempting to make best use from their data", paper
//! Section II-B), so this scheduler trades coverage for latency. The
//! [`DropReport`] quantifies that loss so experiments can show both sides.

use fedsched_telemetry::{Event, Probe};
use serde::Serialize;

use crate::baselines::EqualScheduler;
use crate::cost::CostMatrix;
use crate::schedule::{emit_decision, Schedule, ScheduleError, Scheduler};

/// How a per-round straggler deadline is derived from predicted per-user
/// round times.
///
/// This is the single deadline vocabulary shared by the scheduling layer
/// (calibrating [`DeadlineDropout`]) and the round simulators in
/// `fedsched-fl` (cutting stragglers mid-round): one policy type instead of
/// the historical `Option<f64>` / bare `f64` split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum DeadlinePolicy {
    /// No deadline: rounds wait for the slowest participant.
    Off,
    /// A fixed deadline in seconds.
    Fixed(f64),
    /// `factor` times the mean of the pooled predicted times — the common
    /// "wait a bit longer than average, then cut" production policy.
    MeanFactor(f64),
    /// The nearest-rank `q`-quantile (`q` in `[0, 1]`) of the pooled
    /// predicted times: wait for the fastest `q` fraction, cut the rest.
    Quantile(f64),
}

impl DeadlinePolicy {
    /// Whether this policy never cuts anyone.
    pub fn is_off(&self) -> bool {
        matches!(self, DeadlinePolicy::Off)
    }

    /// Snake_case policy name for telemetry (`"off"`, `"fixed"`,
    /// `"mean_factor"`, `"quantile"`).
    pub fn name(&self) -> &'static str {
        match self {
            DeadlinePolicy::Off => "off",
            DeadlinePolicy::Fixed(_) => "fixed",
            DeadlinePolicy::MeanFactor(_) => "mean_factor",
            DeadlinePolicy::Quantile(_) => "quantile",
        }
    }

    /// Check the policy parameters are well-formed, returning the violated
    /// rule otherwise. `Off` is always valid; `Fixed` and `MeanFactor` need
    /// a positive finite parameter; `Quantile` needs `q` in `[0, 1]`.
    pub fn check(&self) -> Result<(), &'static str> {
        match *self {
            DeadlinePolicy::Off => Ok(()),
            DeadlinePolicy::Fixed(d) => {
                if d > 0.0 && d.is_finite() {
                    Ok(())
                } else {
                    Err("fixed deadline must be positive and finite")
                }
            }
            DeadlinePolicy::MeanFactor(f) => {
                if f > 0.0 && f.is_finite() {
                    Ok(())
                } else {
                    Err("mean factor must be positive and finite")
                }
            }
            DeadlinePolicy::Quantile(q) => {
                if (0.0..=1.0).contains(&q) {
                    Ok(())
                } else {
                    Err("quantile must be in [0, 1]")
                }
            }
        }
    }

    /// Resolve the policy against pooled predicted per-user round times.
    ///
    /// Non-positive and non-finite entries (idle users, degenerate
    /// predictions) are ignored. Returns `None` when the policy is `Off` or
    /// no meaningful deadline can be derived (empty pool, non-positive
    /// result) — callers treat `None` as "no deadline this round".
    pub fn resolve(&self, predicted_times: &[f64]) -> Option<f64> {
        let deadline = match *self {
            DeadlinePolicy::Off => return None,
            DeadlinePolicy::Fixed(d) => d,
            DeadlinePolicy::MeanFactor(factor) => {
                let active: Vec<f64> = pool_active(predicted_times);
                if active.is_empty() {
                    return None;
                }
                active.iter().sum::<f64>() / active.len() as f64 * factor
            }
            DeadlinePolicy::Quantile(q) => {
                let mut active = pool_active(predicted_times);
                if active.is_empty() {
                    return None;
                }
                active.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let rank = (q.clamp(0.0, 1.0) * (active.len() - 1) as f64).round() as usize;
                active[rank.min(active.len() - 1)]
            }
        };
        (deadline > 0.0 && deadline.is_finite()).then_some(deadline)
    }
}

/// Positive finite entries of a predicted-time pool.
fn pool_active(times: &[f64]) -> Vec<f64> {
    times
        .iter()
        .copied()
        .filter(|t| *t > 0.0 && t.is_finite())
        .collect()
}

/// Equal-share scheduling with a hard per-round deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineDropout {
    /// Users whose equal share would exceed this many seconds are dropped.
    pub deadline_s: f64,
}

/// What the deadline cost us.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DropReport {
    /// Indices of dropped users.
    pub dropped: Vec<usize>,
    /// Shards lost with them (not redistributed).
    pub lost_shards: usize,
    /// Fraction of the round's data that was lost.
    pub lost_fraction: f64,
}

impl DeadlineDropout {
    /// Create with a deadline in seconds.
    ///
    /// # Panics
    /// Panics on a non-positive deadline.
    pub fn new(deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0, "deadline must be positive");
        DeadlineDropout { deadline_s }
    }

    /// A deadline calibrated as `factor` times the *mean* per-user time of
    /// the equal split — the common "wait a bit longer than average, then
    /// cut" production policy.
    ///
    /// Degenerate instances where that mean is not a positive finite number
    /// — an all-zero cost matrix, an empty round, or a non-positive
    /// `factor` — yield [`ScheduleError::Infeasible`] instead of a panic:
    /// there is no meaningful deadline to calibrate.
    pub fn from_mean_factor(costs: &CostMatrix, factor: f64) -> Result<Self, ScheduleError> {
        match DeadlineDropout::from_policy(costs, DeadlinePolicy::MeanFactor(factor))? {
            Some(dropout) => Ok(dropout),
            None => Err(ScheduleError::Infeasible),
        }
    }

    /// Calibrate a dropout deadline from any [`DeadlinePolicy`], resolved
    /// against the equal split's predicted per-user times.
    ///
    /// `Off` yields `Ok(None)` (no dropout stage at all); calibrated
    /// policies that cannot resolve to a positive finite deadline yield
    /// [`ScheduleError::Infeasible`], mirroring
    /// [`DeadlineDropout::from_mean_factor`].
    pub fn from_policy(
        costs: &CostMatrix,
        policy: DeadlinePolicy,
    ) -> Result<Option<Self>, ScheduleError> {
        if policy.is_off() {
            return Ok(None);
        }
        let equal = EqualScheduler.schedule(costs)?;
        let times = equal.predicted_times(costs);
        match policy.resolve(&times) {
            Some(deadline) => Ok(Some(DeadlineDropout::new(deadline))),
            None => Err(ScheduleError::Infeasible),
        }
    }

    /// Schedule and report what was dropped.
    pub fn schedule_with_report(
        &self,
        costs: &CostMatrix,
    ) -> Result<(Schedule, DropReport), ScheduleError> {
        let equal = EqualScheduler.schedule(costs)?;
        let mut shards = equal.shards.clone();
        let mut dropped = Vec::new();
        let mut lost = 0usize;
        for (j, k) in shards.iter_mut().enumerate() {
            if *k > 0 && costs.cost(j, *k) > self.deadline_s {
                dropped.push(j);
                lost += *k;
                *k = 0;
            }
        }
        let total = equal.total_shards();
        let report = DropReport {
            dropped,
            lost_shards: lost,
            lost_fraction: if total == 0 {
                0.0
            } else {
                lost as f64 / total as f64
            },
        };
        Ok((Schedule::new(shards, costs.shard_size()), report))
    }

    /// [`DeadlineDropout::schedule_with_report`], emitting one
    /// `deadline_drop` event per dropped user through `probe`.
    pub fn schedule_with_report_traced(
        &self,
        costs: &CostMatrix,
        probe: &Probe,
    ) -> Result<(Schedule, DropReport), ScheduleError> {
        let result = self.schedule_with_report(costs)?;
        {
            let (schedule, report) = &result;
            let equal = EqualScheduler.schedule(costs)?;
            for &user in &report.dropped {
                let k = equal.shards[user];
                probe.emit(|| Event::DeadlineDrop {
                    user,
                    predicted_s: costs.cost(user, k),
                    deadline_s: self.deadline_s,
                    lost_shards: k,
                });
            }
            emit_decision(
                self.name(),
                costs,
                &Ok(schedule.clone()),
                Some(self.deadline_s),
                probe,
            );
        }
        Ok(result)
    }
}

impl Scheduler for DeadlineDropout {
    fn name(&self) -> &'static str {
        "Deadline-Dropout"
    }

    /// Note: the returned schedule may cover *fewer* shards than
    /// `costs.total_shards()` — dropped data is lost, by design.
    fn schedule(&self, costs: &CostMatrix) -> Result<Schedule, ScheduleError> {
        self.schedule_with_report(costs).map(|(s, _)| s)
    }

    /// Emits per-user `deadline_drop` events ahead of the decision record,
    /// with the deadline as the decision threshold.
    fn schedule_traced(
        &self,
        costs: &CostMatrix,
        probe: &Probe,
    ) -> Result<Schedule, ScheduleError> {
        match self.schedule_with_report_traced(costs, probe) {
            Ok((schedule, _)) => Ok(schedule),
            Err(err) => {
                let failed: Result<Schedule, ScheduleError> = Err(err.clone());
                emit_decision(self.name(), costs, &failed, Some(self.deadline_s), probe);
                Err(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lbap::FedLbap;

    fn costs() -> CostMatrix {
        // User 1 is 10x slower.
        CostMatrix::from_linear_rates(&[1.0, 10.0, 1.2], 30, 10.0, &[0.0, 0.0, 0.0])
    }

    #[test]
    fn slow_user_is_dropped_and_data_lost() {
        let c = costs();
        // Equal split: 10 shards each -> times 10, 100, 12.
        let (schedule, report) = DeadlineDropout::new(20.0).schedule_with_report(&c).unwrap();
        assert_eq!(report.dropped, vec![1]);
        assert_eq!(report.lost_shards, 10);
        assert!((report.lost_fraction - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(schedule.total_shards(), 20);
        assert!(schedule.predicted_makespan(&c) <= 20.0);
    }

    #[test]
    fn generous_deadline_drops_nobody() {
        let c = costs();
        let (schedule, report) = DeadlineDropout::new(1000.0)
            .schedule_with_report(&c)
            .unwrap();
        assert!(report.dropped.is_empty());
        assert_eq!(schedule.total_shards(), 30);
    }

    #[test]
    fn mean_factor_policy_cuts_the_straggler() {
        let c = costs();
        // Mean equal time = (10+100+12)/3 ≈ 40.7; factor 1.2 -> ~49 s.
        let policy = DeadlineDropout::from_mean_factor(&c, 1.2).unwrap();
        let (_, report) = policy.schedule_with_report(&c).unwrap();
        assert_eq!(report.dropped, vec![1]);
    }

    #[test]
    fn lbap_meets_the_same_deadline_without_losing_data() {
        // The paper's pitch: Fed-LBAP achieves low makespan *and* full
        // coverage, dominating hard dropout.
        let c = costs();
        let lbap = FedLbap.schedule(&c).unwrap();
        let (dropped_sched, report) = DeadlineDropout::new(20.0).schedule_with_report(&c).unwrap();
        assert!(lbap.predicted_makespan(&c) <= 20.0 + 1e-9);
        assert_eq!(lbap.total_shards(), 30);
        assert!(dropped_sched.total_shards() < 30);
        assert!(report.lost_shards > 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_deadline_rejected() {
        let _ = DeadlineDropout::new(0.0);
    }

    #[test]
    fn all_zero_cost_matrix_yields_error_not_panic() {
        // Regression: a free cost matrix used to make the mean deadline 0
        // and panic inside `DeadlineDropout::new`.
        let c = CostMatrix::from_linear_rates(&[0.0, 0.0], 10, 10.0, &[0.0, 0.0]);
        assert_eq!(
            DeadlineDropout::from_mean_factor(&c, 1.2),
            Err(ScheduleError::Infeasible)
        );
    }

    #[test]
    fn empty_round_yields_error_not_panic() {
        let c = CostMatrix::from_linear_rates(&[1.0, 2.0], 0, 10.0, &[0.0, 0.0]);
        assert_eq!(
            DeadlineDropout::from_mean_factor(&c, 1.2),
            Err(ScheduleError::Infeasible)
        );
    }

    #[test]
    fn non_positive_factor_yields_error_not_panic() {
        let c = costs();
        for factor in [0.0, -1.0, f64::NAN] {
            assert_eq!(
                DeadlineDropout::from_mean_factor(&c, factor),
                Err(ScheduleError::Infeasible),
                "factor {factor}"
            );
        }
    }

    #[test]
    fn policy_resolution_matches_its_definition() {
        let times = [10.0, 100.0, 12.0, 0.0, f64::INFINITY];
        assert_eq!(DeadlinePolicy::Off.resolve(&times), None);
        assert_eq!(DeadlinePolicy::Fixed(25.0).resolve(&times), Some(25.0));
        // Active pool is {10, 100, 12}: mean ≈ 40.67.
        let mean = (10.0 + 100.0 + 12.0) / 3.0;
        assert_eq!(
            DeadlinePolicy::MeanFactor(1.2).resolve(&times),
            Some(mean * 1.2)
        );
        // Nearest-rank quantiles over the sorted pool [10, 12, 100].
        assert_eq!(DeadlinePolicy::Quantile(0.0).resolve(&times), Some(10.0));
        assert_eq!(DeadlinePolicy::Quantile(0.5).resolve(&times), Some(12.0));
        assert_eq!(DeadlinePolicy::Quantile(1.0).resolve(&times), Some(100.0));
        // Degenerate pools resolve to nothing.
        assert_eq!(DeadlinePolicy::MeanFactor(1.2).resolve(&[]), None);
        assert_eq!(DeadlinePolicy::Quantile(0.5).resolve(&[0.0]), None);
        assert_eq!(DeadlinePolicy::MeanFactor(0.0).resolve(&times), None);
    }

    #[test]
    fn policy_check_rejects_malformed_parameters() {
        assert!(DeadlinePolicy::Off.check().is_ok());
        assert!(DeadlinePolicy::Fixed(10.0).check().is_ok());
        assert!(DeadlinePolicy::Fixed(0.0).check().is_err());
        assert!(DeadlinePolicy::Fixed(f64::INFINITY).check().is_err());
        assert!(DeadlinePolicy::MeanFactor(-1.0).check().is_err());
        assert!(DeadlinePolicy::MeanFactor(f64::NAN).check().is_err());
        assert!(DeadlinePolicy::Quantile(0.9).check().is_ok());
        assert!(DeadlinePolicy::Quantile(1.5).check().is_err());
    }

    #[test]
    fn from_policy_matches_mean_factor_and_handles_off() {
        let c = costs();
        assert_eq!(
            DeadlineDropout::from_policy(&c, DeadlinePolicy::Off),
            Ok(None)
        );
        assert_eq!(
            DeadlineDropout::from_policy(&c, DeadlinePolicy::MeanFactor(1.2))
                .unwrap()
                .unwrap(),
            DeadlineDropout::from_mean_factor(&c, 1.2).unwrap()
        );
        // Quantile 1.0 waits for the equal split's slowest user: drops nobody.
        let q = DeadlineDropout::from_policy(&c, DeadlinePolicy::Quantile(1.0))
            .unwrap()
            .unwrap();
        let (_, report) = q.schedule_with_report(&c).unwrap();
        assert!(report.dropped.is_empty());
    }

    #[test]
    fn traced_schedule_emits_drop_events_and_decision() {
        use fedsched_telemetry::{EventLog, Probe};
        use std::sync::Arc;
        let c = costs();
        let log = Arc::new(EventLog::new());
        let policy = DeadlineDropout::new(20.0);
        let traced = policy
            .schedule_traced(&c, &Probe::attached(log.clone()))
            .unwrap();
        assert_eq!(traced, policy.schedule(&c).unwrap());
        let events = log.events();
        let drops: Vec<(usize, usize)> = events
            .iter()
            .filter_map(|e| match e {
                Event::DeadlineDrop {
                    user,
                    predicted_s,
                    deadline_s,
                    lost_shards,
                } => {
                    assert!(*predicted_s > *deadline_s);
                    Some((*user, *lost_shards))
                }
                _ => None,
            })
            .collect();
        assert_eq!(drops, vec![(1, 10)]);
        assert!(events.iter().any(|e| matches!(
            e,
            Event::ScheduleDecision {
                threshold: Some(d),
                ..
            } if *d == 20.0
        )));
    }
}
