//! Fed-MinAvg: the min-average-cost algorithm for non-IID data (paper
//! Algorithm 2, problem P2).
//!
//! Data shards are placed one at a time, each going to the user with the
//! minimal marginal cost `T_j((l_j + 1) d) + alpha F_j` (Eq. 12) — a greedy
//! strategy for the bin-packing-with-item-fragmentation abstraction of P2.
//! Opening a user for the first time additionally charges its per-round
//! communication time (the paper omits this term "for clarity"; it matters
//! for heavyweight models over LTE, and can be disabled by passing zero
//! comm costs). The accuracy cost is re-evaluated every step because the
//! covered-class set `U` and the training-set size `D_u` evolve as shards
//! are placed. Users at capacity are closed. `O(mn)` for `m` shards.

use std::collections::BTreeSet;

use fedsched_profiler::CostProfile;
use fedsched_telemetry::{Event, Probe};
use serde::Serialize;

use crate::acc::AccuracyCost;
use crate::schedule::{Schedule, ScheduleError};

/// One federated user as seen by Fed-MinAvg.
#[derive(Debug, Clone)]
pub struct UserSpec<P> {
    /// Predicted computation time profile.
    pub profile: P,
    /// Per-round communication time (charged when the user participates).
    pub comm: f64,
    /// The classes present in the user's local data.
    pub classes: BTreeSet<usize>,
    /// Capacity in shards (storage or battery budget, Eq. 9).
    pub capacity_shards: usize,
}

/// A complete Fed-MinAvg problem instance.
#[derive(Debug, Clone)]
pub struct MinAvgProblem<P> {
    /// The cohort.
    pub users: Vec<UserSpec<P>>,
    /// Shards to distribute (`D` in the paper).
    pub total_shards: usize,
    /// Samples per shard (`d`).
    pub shard_size: f64,
    /// The accuracy-cost model (K, alpha, beta).
    pub acc: AccuracyCost,
}

/// Rich output: the schedule plus diagnostics used by the evaluation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MinAvgOutcome {
    /// The resulting shard assignment.
    pub schedule: Schedule,
    /// Users in the order they were first opened.
    pub open_order: Vec<usize>,
    /// Final `alpha * F_j` for every user.
    pub final_alpha_f: Vec<f64>,
    /// The P2 objective: sum of computation + communication + accuracy
    /// costs over selected users.
    pub objective: f64,
}

/// The Fed-MinAvg scheduler. Stateless; construct with [`Default`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FedMinAvg;

impl FedMinAvg {
    /// Run Algorithm 2.
    ///
    /// Errors with [`ScheduleError::Infeasible`] when the summed capacities
    /// cannot hold `total_shards`, and [`ScheduleError::NoUsers`] on an
    /// empty cohort.
    pub fn schedule<P: CostProfile>(
        &self,
        problem: &MinAvgProblem<P>,
    ) -> Result<MinAvgOutcome, ScheduleError> {
        let n = problem.users.len();
        if n == 0 {
            return Err(ScheduleError::NoUsers);
        }
        let cap_total: usize = problem.users.iter().map(|u| u.capacity_shards).sum();
        if cap_total < problem.total_shards {
            return Err(ScheduleError::Infeasible);
        }

        let d = problem.shard_size;
        let mut covered: BTreeSet<usize> = BTreeSet::new();
        let mut shards = vec![0usize; n];
        let mut opened = vec![false; n];
        let mut open_order = Vec::new();
        let mut d_u = 0usize; // shards placed so far

        while d_u < problem.total_shards {
            // Marginal cost of giving the next shard to user j (Eq. 12).
            let mut best: Option<(usize, f64)> = None;
            for (j, user) in problem.users.iter().enumerate() {
                if shards[j] >= user.capacity_shards {
                    continue; // bin closed
                }
                let l_next = (shards[j] + 1) as f64;
                let mut cost = user.profile.time_for(l_next * d)
                    + problem.acc.alpha_f(&user.classes, &covered, d_u);
                if !opened[j] {
                    cost += user.comm;
                }
                match best {
                    Some((_, b)) if cost >= b => {}
                    _ => best = Some((j, cost)),
                }
            }
            let (j, _) = best.ok_or(ScheduleError::Infeasible)?;
            shards[j] += 1;
            d_u += 1;
            if !opened[j] {
                opened[j] = true;
                open_order.push(j);
            }
            covered.extend(problem.users[j].classes.iter().copied());
        }

        // Final diagnostics.
        let final_alpha_f: Vec<f64> = problem
            .users
            .iter()
            .map(|u| problem.acc.alpha_f(&u.classes, &covered, d_u))
            .collect();
        let schedule = Schedule::new(shards, d);
        let objective = self.objective(problem, &schedule);
        Ok(MinAvgOutcome {
            schedule,
            open_order,
            final_alpha_f,
            objective,
        })
    }

    /// [`FedMinAvg::schedule`], emitting a telemetry record of the decision:
    /// [`Event::MinAvgDecision`] with the objective, final accuracy costs
    /// and open order on success, [`Event::ScheduleRejected`] on failure.
    pub fn schedule_traced<P: CostProfile>(
        &self,
        problem: &MinAvgProblem<P>,
        probe: &Probe,
    ) -> Result<MinAvgOutcome, ScheduleError> {
        let result = self.schedule(problem);
        probe.emit(|| match &result {
            Ok(out) => Event::MinAvgDecision {
                n_users: problem.users.len(),
                total_shards: problem.total_shards,
                objective: out.objective,
                final_alpha_f: out.final_alpha_f.iter().sum(),
                open_order: out.open_order.clone(),
                shards: out.schedule.shards.clone(),
            },
            Err(err) => Event::ScheduleRejected {
                scheduler: "Fed-MinAvg".to_string(),
                n_users: problem.users.len(),
                total_shards: problem.total_shards,
                cause: err.cause_code().to_string(),
            },
        });
        result
    }

    /// The P2 objective value of a schedule: per selected user, computation
    /// time at its load plus communication plus `alpha * F_j` under the
    /// *final* coverage.
    pub fn objective<P: CostProfile>(
        &self,
        problem: &MinAvgProblem<P>,
        schedule: &Schedule,
    ) -> f64 {
        let covered: BTreeSet<usize> = problem
            .users
            .iter()
            .zip(&schedule.shards)
            .filter(|(_, &k)| k > 0)
            .flat_map(|(u, _)| u.classes.iter().copied())
            .collect();
        let d_u = schedule.total_shards();
        problem
            .users
            .iter()
            .zip(&schedule.shards)
            .map(|(u, &k)| {
                if k == 0 {
                    0.0
                } else {
                    u.profile.time_for(k as f64 * problem.shard_size)
                        + u.comm
                        + problem.acc.alpha_f(&u.classes, &covered, d_u)
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_profiler::LinearProfile;

    fn set(v: &[usize]) -> BTreeSet<usize> {
        v.iter().copied().collect()
    }

    fn user(per_sample: f64, classes: &[usize], cap: usize) -> UserSpec<LinearProfile> {
        UserSpec {
            profile: LinearProfile::new(0.0, per_sample),
            comm: 0.0,
            classes: set(classes),
            capacity_shards: cap,
        }
    }

    fn problem(
        users: Vec<UserSpec<LinearProfile>>,
        total: usize,
        alpha: f64,
        beta: f64,
    ) -> MinAvgProblem<LinearProfile> {
        MinAvgProblem {
            users,
            total_shards: total,
            shard_size: 100.0,
            acc: AccuracyCost::new(10, alpha, beta),
        }
    }

    #[test]
    fn covers_all_shards_and_respects_capacity() {
        let p = problem(
            vec![
                user(0.01, &[0, 1, 2], 5),
                user(0.02, &[3, 4], 5),
                user(0.05, &[5], 20),
            ],
            12,
            100.0,
            0.0,
        );
        let out = FedMinAvg.schedule(&p).unwrap();
        assert_eq!(out.schedule.total_shards(), 12);
        for (u, &k) in p.users.iter().zip(&out.schedule.shards) {
            assert!(k <= u.capacity_shards);
        }
    }

    #[test]
    fn infeasible_when_capacity_short() {
        let p = problem(
            vec![user(0.01, &[0], 3), user(0.01, &[1], 3)],
            7,
            100.0,
            0.0,
        );
        assert_eq!(
            FedMinAvg.schedule(&p).unwrap_err(),
            ScheduleError::Infeasible
        );
    }

    #[test]
    fn empty_cohort_errors() {
        let p = problem(vec![], 5, 100.0, 0.0);
        assert_eq!(FedMinAvg.schedule(&p).unwrap_err(), ScheduleError::NoUsers);
    }

    #[test]
    fn large_alpha_starves_few_class_users() {
        // User 0: fast but only 1 class. User 1: slower with 8 classes.
        // With tiny alpha the fast user dominates; with huge alpha the
        // class-rich user does (paper Fig. 6 dynamics).
        let mk = |alpha| {
            problem(
                vec![
                    user(0.001, &[7], 100),
                    user(0.002, &[0, 1, 2, 3, 4, 5, 6, 9], 100),
                ],
                50,
                alpha,
                0.0,
            )
        };
        let lo = FedMinAvg.schedule(&mk(0.1)).unwrap();
        assert!(
            lo.schedule.shards[0] > lo.schedule.shards[1],
            "{:?}",
            lo.schedule.shards
        );
        let hi = FedMinAvg.schedule(&mk(5000.0)).unwrap();
        assert!(
            hi.schedule.shards[1] > hi.schedule.shards[0],
            "{:?}",
            hi.schedule.shards
        );
    }

    #[test]
    fn beta_rescues_unique_class_outliers() {
        // User 2 is slow and single-class, but holds class 9 that nobody
        // else has. With beta = 0 and a large alpha it gets nothing; with
        // beta > 0 the growing discount eventually pulls it in.
        let mk = |beta| {
            problem(
                vec![
                    user(0.001, &[0, 1, 2, 3], 100),
                    user(0.0012, &[2, 3, 4, 5], 100),
                    user(0.01, &[9], 100),
                ],
                60,
                500.0,
                beta,
            )
        };
        let without = FedMinAvg.schedule(&mk(0.0)).unwrap();
        assert_eq!(
            without.schedule.shards[2], 0,
            "{:?}",
            without.schedule.shards
        );
        let with = FedMinAvg.schedule(&mk(100.0)).unwrap();
        assert!(with.schedule.shards[2] > 0, "{:?}", with.schedule.shards);
    }

    #[test]
    fn comm_cost_penalizes_opening_extra_users() {
        let mut users = vec![user(0.001, &[0, 1], 100), user(0.001, &[0, 1], 100)];
        users[1].comm = 1e6; // prohibitively expensive to involve
        let p = MinAvgProblem {
            users,
            total_shards: 20,
            shard_size: 100.0,
            acc: AccuracyCost::new(10, 1.0, 0.0),
        };
        let out = FedMinAvg.schedule(&p).unwrap();
        assert_eq!(out.schedule.shards, vec![20, 0]);
        assert_eq!(out.open_order, vec![0]);
    }

    #[test]
    fn open_order_starts_with_cheapest_initial_cost() {
        let p = problem(
            vec![user(0.01, &[0], 100), user(0.001, &[0, 1, 2, 3, 4], 100)],
            10,
            100.0,
            0.0,
        );
        let out = FedMinAvg.schedule(&p).unwrap();
        // User 1 is both faster and class-richer: must open first.
        assert_eq!(out.open_order[0], 1);
    }

    #[test]
    fn objective_counts_only_selected_users() {
        let p = problem(
            vec![user(0.01, &[0], 100), user(0.01, &[1], 100)],
            5,
            100.0,
            0.0,
        );
        let sched = Schedule::new(vec![5, 0], 100.0);
        let obj = FedMinAvg.objective(&p, &sched);
        // comp = 0.01 * 500 = 5; alpha*F = 100 * 10/1 = 1000; comm = 0.
        assert!((obj - 1005.0).abs() < 1e-9);
    }

    #[test]
    fn traced_schedule_records_decision_and_rejection() {
        use fedsched_telemetry::EventLog;
        use std::sync::Arc;
        let log = Arc::new(EventLog::new());
        let probe = Probe::attached(log.clone());

        let p = problem(
            vec![user(0.01, &[0, 1], 10), user(0.02, &[2], 10)],
            8,
            100.0,
            0.0,
        );
        let out = FedMinAvg.schedule_traced(&p, &probe).unwrap();
        let infeasible = problem(vec![user(0.01, &[0], 2)], 5, 100.0, 0.0);
        assert!(FedMinAvg.schedule_traced(&infeasible, &probe).is_err());

        let events = log.events();
        assert_eq!(events.len(), 2);
        match &events[0] {
            Event::MinAvgDecision {
                shards,
                objective,
                open_order,
                ..
            } => {
                assert_eq!(*shards, out.schedule.shards);
                assert_eq!(*objective, out.objective);
                assert_eq!(*open_order, out.open_order);
            }
            other => panic!("expected a minavg decision, got {other:?}"),
        }
        match &events[1] {
            Event::ScheduleRejected { cause, .. } => assert_eq!(cause, "infeasible"),
            other => panic!("expected a rejection, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let p = problem(
            vec![
                user(0.003, &[0, 1, 2], 40),
                user(0.002, &[3, 4], 40),
                user(0.004, &[5, 6, 7, 8], 40),
            ],
            30,
            250.0,
            2.0,
        );
        let a = FedMinAvg.schedule(&p).unwrap();
        let b = FedMinAvg.schedule(&p).unwrap();
        assert_eq!(a, b);
    }
}
