//! Schedule-quality analysis: how good is an assignment, and why?
//!
//! The paper evaluates schedulers by realized round time only; this module
//! adds the diagnostics a practitioner wants when *choosing* a scheduler:
//! the optimality gap against the exact DP oracle, load fairness (Jain's
//! index), straggler identification, and per-user slack.

use serde::Serialize;

use crate::cost::CostMatrix;
use crate::exact::ExactMinMax;
use crate::schedule::{Schedule, Scheduler};

/// A quality report for one schedule under one cost matrix.
#[derive(Debug, Clone, Serialize)]
pub struct ScheduleAnalysis {
    /// Predicted makespan of the analyzed schedule.
    pub makespan: f64,
    /// The exact optimal makespan (DP oracle).
    pub optimal_makespan: f64,
    /// `makespan / optimal_makespan` (1.0 = optimal).
    pub optimality_ratio: f64,
    /// Index of the straggler (user attaining the makespan).
    pub straggler: usize,
    /// Jain's fairness index over predicted per-user times of *active*
    /// users: 1.0 = perfectly synchronized finish, 1/n = one user does
    /// everything.
    pub time_fairness: f64,
    /// Per-user slack: `makespan - predicted_time[j]` (how long each user
    /// idles waiting for the straggler).
    pub slack: Vec<f64>,
    /// Sum of all users' busy time (proportional to total energy burned).
    pub total_busy_time: f64,
}

/// Analyze `schedule` against `costs`.
///
/// # Panics
/// Panics if the schedule's arity differs from the cost matrix.
pub fn analyze(schedule: &Schedule, costs: &CostMatrix) -> ScheduleAnalysis {
    assert_eq!(
        schedule.shards.len(),
        costs.n_users(),
        "schedule/costs arity mismatch"
    );
    let times = schedule.predicted_times(costs);
    let makespan = times.iter().cloned().fold(0.0, f64::max);
    let straggler = times
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .unwrap_or(0);

    let active: Vec<f64> = times.iter().cloned().filter(|&t| t > 0.0).collect();
    let time_fairness = if active.is_empty() {
        1.0
    } else {
        let sum: f64 = active.iter().sum();
        let sum_sq: f64 = active.iter().map(|t| t * t).sum();
        sum * sum / (active.len() as f64 * sum_sq)
    };

    let optimal = ExactMinMax
        .schedule(costs)
        .expect("cost matrix is always schedulable")
        .predicted_makespan(costs);

    ScheduleAnalysis {
        makespan,
        optimal_makespan: optimal,
        optimality_ratio: if optimal > 0.0 {
            makespan / optimal
        } else {
            1.0
        },
        straggler,
        time_fairness,
        slack: times.iter().map(|t| makespan - t).collect(),
        total_busy_time: times.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::EqualScheduler;
    use crate::lbap::FedLbap;

    fn costs() -> CostMatrix {
        CostMatrix::from_linear_rates(&[1.0, 4.0], 10, 10.0, &[0.0, 0.0])
    }

    #[test]
    fn lbap_is_reported_optimal() {
        let c = costs();
        let s = FedLbap.schedule(&c).unwrap();
        let a = analyze(&s, &c);
        assert!((a.optimality_ratio - 1.0).abs() < 1e-9);
        assert_eq!(a.makespan, a.optimal_makespan);
    }

    #[test]
    fn equal_split_shows_gap_and_straggler() {
        let c = costs();
        let s = EqualScheduler.schedule(&c).unwrap();
        let a = analyze(&s, &c);
        assert!(a.optimality_ratio > 1.5, "ratio {}", a.optimality_ratio);
        assert_eq!(a.straggler, 1, "the 4x slower user straggles");
        assert!(a.slack[0] > 0.0);
        assert_eq!(a.slack[1], 0.0);
    }

    #[test]
    fn fairness_index_bounds() {
        let c = costs();
        // Perfectly balanced times: 8/2 split gives both users 8s.
        let balanced = Schedule::new(vec![8, 2], 10.0);
        let a = analyze(&balanced, &c);
        assert!((a.time_fairness - 1.0).abs() < 1e-9);

        // Everything on one user: fairness 1.0 over active users, but only
        // one is active.
        let solo = Schedule::new(vec![10, 0], 10.0);
        let a = analyze(&solo, &c);
        assert_eq!(a.time_fairness, 1.0);
        assert_eq!(a.total_busy_time, 10.0);
    }

    #[test]
    fn busy_time_tracks_total_load() {
        let c = costs();
        let s = Schedule::new(vec![5, 5], 10.0);
        let a = analyze(&s, &c);
        assert_eq!(a.total_busy_time, 5.0 + 20.0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let c = costs();
        let s = Schedule::new(vec![10], 10.0);
        let _ = analyze(&s, &c);
    }
}
