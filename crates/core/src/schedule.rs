//! Schedules (the algorithms' output) and the scheduler trait.

use fedsched_telemetry::{Event, Probe};
use serde::{Deserialize, Serialize};

use crate::cost::CostMatrix;

/// Errors a scheduler can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// No users to schedule onto.
    NoUsers,
    /// The requested shard total cannot be placed (e.g. capacities sum to
    /// less than the data).
    Infeasible,
    /// Inconsistent input dimensions (profiles vs comm costs vs classes).
    DimensionMismatch,
}

impl ScheduleError {
    /// Stable snake_case code used in telemetry events.
    pub fn cause_code(&self) -> &'static str {
        match self {
            ScheduleError::NoUsers => "no_users",
            ScheduleError::Infeasible => "infeasible",
            ScheduleError::DimensionMismatch => "dimension_mismatch",
        }
    }
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NoUsers => write!(f, "no users to schedule onto"),
            ScheduleError::Infeasible => write!(f, "data cannot be placed within capacities"),
            ScheduleError::DimensionMismatch => write!(f, "input dimensions are inconsistent"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The output of every scheduler: how many data shards each user trains on
/// this round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Shards assigned to each user (index = user).
    pub shards: Vec<usize>,
    /// Samples per shard (the paper's granularity, e.g. 100).
    pub shard_size: f64,
}

impl Schedule {
    /// Construct a schedule.
    pub fn new(shards: Vec<usize>, shard_size: f64) -> Self {
        Schedule { shards, shard_size }
    }

    /// Total shards placed.
    pub fn total_shards(&self) -> usize {
        self.shards.iter().sum()
    }

    /// Samples assigned to user `j`.
    pub fn samples_for(&self, j: usize) -> f64 {
        self.shards[j] as f64 * self.shard_size
    }

    /// Number of users that received at least one shard.
    pub fn active_users(&self) -> usize {
        self.shards.iter().filter(|&&s| s > 0).count()
    }

    /// Predicted per-user times under a cost matrix (0 for idle users).
    pub fn predicted_times(&self, costs: &CostMatrix) -> Vec<f64> {
        self.shards
            .iter()
            .enumerate()
            .map(|(j, &k)| costs.cost(j, k))
            .collect()
    }

    /// Predicted makespan (the synchronous round time) under a cost matrix.
    pub fn predicted_makespan(&self, costs: &CostMatrix) -> f64 {
        self.predicted_times(costs).into_iter().fold(0.0, f64::max)
    }
}

/// A scheduler for the IID setting: consumes a cost matrix, produces a
/// shard assignment covering exactly `costs.total_shards()` shards.
///
/// Schedulers are `Send + Sync` so controllers that own one (e.g. the
/// resilient round simulator's between-round rescheduler) can be shipped to
/// worker threads by the parallel multi-cohort engine. All schedulers here
/// are immutable value types, so the bound costs nothing.
pub trait Scheduler: Send + Sync {
    /// Human-readable name for reports ("Fed-LBAP", "Equal", ...).
    fn name(&self) -> &'static str;

    /// Compute the assignment.
    fn schedule(&self, costs: &CostMatrix) -> Result<Schedule, ScheduleError>;

    /// [`Scheduler::schedule`], emitting a telemetry decision record.
    ///
    /// The default emits [`Event::ScheduleDecision`] (threshold `None`) on
    /// success and [`Event::ScheduleRejected`] on failure; schedulers with
    /// richer internals (Fed-LBAP's `c*`) override this to fill them in.
    /// With a disabled probe this is exactly `schedule` plus one branch.
    fn schedule_traced(
        &self,
        costs: &CostMatrix,
        probe: &Probe,
    ) -> Result<Schedule, ScheduleError> {
        let result = self.schedule(costs);
        emit_decision(self.name(), costs, &result, None, probe);
        result
    }
}

/// Shared emission helper for [`Scheduler::schedule_traced`] implementations.
pub(crate) fn emit_decision(
    name: &str,
    costs: &CostMatrix,
    result: &Result<Schedule, ScheduleError>,
    threshold: Option<f64>,
    probe: &Probe,
) {
    probe.emit(|| match result {
        Ok(schedule) => Event::ScheduleDecision {
            scheduler: name.to_string(),
            n_users: costs.n_users(),
            total_shards: costs.total_shards(),
            threshold,
            shards: schedule.shards.clone(),
            predicted_makespan: schedule.predicted_makespan(costs),
        },
        Err(err) => Event::ScheduleRejected {
            scheduler: name.to_string(),
            n_users: costs.n_users(),
            total_shards: costs.total_shards(),
            cause: err.cause_code().to_string(),
        },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostMatrix;

    fn costs() -> CostMatrix {
        // Two users: user 0 takes 1s per shard, user 1 takes 2s per shard.
        CostMatrix::from_linear_rates(&[1.0, 2.0], 4, 100.0, &[0.0, 0.0])
    }

    #[test]
    fn totals_and_samples() {
        let s = Schedule::new(vec![3, 1], 100.0);
        assert_eq!(s.total_shards(), 4);
        assert_eq!(s.samples_for(0), 300.0);
        assert_eq!(s.active_users(), 2);
    }

    #[test]
    fn makespan_is_max_user_time() {
        let s = Schedule::new(vec![3, 1], 100.0);
        let c = costs();
        let times = s.predicted_times(&c);
        assert_eq!(times, vec![3.0, 2.0]);
        assert_eq!(s.predicted_makespan(&c), 3.0);
    }

    #[test]
    fn idle_user_costs_nothing() {
        let s = Schedule::new(vec![4, 0], 100.0);
        let c = costs();
        assert_eq!(s.predicted_times(&c), vec![4.0, 0.0]);
        assert_eq!(s.active_users(), 1);
    }
}
