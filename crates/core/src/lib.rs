//! The paper's core contribution: data-allocation scheduling for federated
//! learning on heterogeneous mobile devices.
//!
//! Federated learning rounds are synchronous: the server waits for the
//! slowest participant, so the per-epoch *makespan* is set by the straggler.
//! The paper's key idea is to use **the amount of training data as a tunable
//! knob** — deliberately *unbalancing* load so that slow (or thermally
//! throttled) devices receive less data:
//!
//! * [`lbap::FedLbap`] solves problem **P1** (IID data): jointly partition
//!   `D` data shards and assign them to `n` users to minimize the makespan.
//!   A binary search over the sorted cost matrix finds the minimal threshold
//!   `c*` admitting a feasible assignment, in `O(ns log ns)` (paper
//!   Algorithm 1).
//! * [`minavg::FedMinAvg`] solves problem **P2** (non-IID data): greedy
//!   min-average-cost shard placement where each user carries an *accuracy
//!   cost* [`acc::AccuracyCost`] (Eq. 6) reflecting how skewed its class
//!   distribution is, discounted when it contributes classes nobody else has
//!   (paper Algorithm 2, a bin-packing-with-item-fragmentation variant).
//! * [`baselines`] implements the paper's comparison points: `Proportional`
//!   (data ∝ mean CPU frequency), `Random`, and `Equal` (FedAvg's default).
//! * [`exact`] is a dynamic-programming *exact* makespan minimizer in
//!   `O(n s^2)`, used to validate Fed-LBAP's optimality in tests and to
//!   report optimality gaps in the benchmarks.
//!
//! Inputs come in through [`cost::CostMatrix`] (built from
//! [`fedsched_profiler::CostProfile`]s plus per-user communication costs),
//! outputs through [`schedule::Schedule`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acc;
pub mod analysis;
pub mod baselines;
pub mod causes;
pub mod cost;
pub mod dropout;
pub mod events;
pub mod exact;
pub mod json;
pub mod lbap;
pub mod minavg;
pub mod privacy;
pub mod schedule;

pub use acc::AccuracyCost;
pub use analysis::{analyze, ScheduleAnalysis};
pub use baselines::{EqualScheduler, ProportionalScheduler, RandomScheduler};
pub use cost::CostMatrix;
pub use dropout::{DeadlineDropout, DeadlinePolicy, DropReport};
pub use events::{EventQueue, Parking};
pub use exact::ExactMinMax;
pub use json::{JsonError, JsonValue};
pub use lbap::FedLbap;
pub use minavg::{FedMinAvg, MinAvgProblem, UserSpec};
pub use schedule::{Schedule, ScheduleError, Scheduler};
