//! The accuracy cost `F_j` of selecting a user under non-IID data
//! (paper Eq. (6)).
//!
//! `F_j = K / |U_j|` — inversely proportional to how many classes user `j`
//! holds — when the user's classes intersect the already-covered set `U`.
//! When they are *disjoint* (the user only contributes classes nobody in the
//! current training set has), the cost is discounted by `(beta/alpha) * D_u`
//! where `D_u` is the number of shards already scheduled: the bigger the
//! training set that is still missing those classes, the more appealing the
//! outlier becomes. Scheduling compares `alpha * F_j` against seconds of
//! computation time, so [`AccuracyCost::alpha_f`] returns the pre-multiplied
//! value `alpha * K/|U_j| - beta * D_u` directly (paper Algorithm 2, lines
//! 10–13).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Parameters of the accuracy-cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyCost {
    /// Number of classes in the test set, `K`.
    pub k_classes: usize,
    /// Weight translating accuracy cost into seconds (`alpha`), searched in
    /// `[100, 5000]` by the paper.
    pub alpha: f64,
    /// Coverage-discount rate (`beta`, the paper uses 0 or 2; requires
    /// `alpha > beta`).
    pub beta: f64,
}

impl AccuracyCost {
    /// Create the cost model.
    ///
    /// # Panics
    /// Panics if `k_classes == 0`, `alpha <= 0`, `beta < 0` or
    /// `alpha <= beta` (the paper requires `alpha > beta`).
    pub fn new(k_classes: usize, alpha: f64, beta: f64) -> Self {
        assert!(k_classes > 0, "K must be positive");
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(beta >= 0.0, "beta must be non-negative");
        assert!(alpha > beta, "the paper requires alpha > beta");
        AccuracyCost {
            k_classes,
            alpha,
            beta,
        }
    }

    /// `alpha * F_j` for a user holding `classes`, given the covered set and
    /// the current training-set size `d_u` (in shards).
    ///
    /// A user with *no* classes (empty local data) is penalized with
    /// `2 * alpha * K` — strictly worse than any single-class user — rather
    /// than an infinite cost, so degenerate cohorts still schedule.
    pub fn alpha_f(&self, classes: &BTreeSet<usize>, covered: &BTreeSet<usize>, d_u: usize) -> f64 {
        if classes.is_empty() {
            return 2.0 * self.alpha * self.k_classes as f64;
        }
        let base = self.alpha * self.k_classes as f64 / classes.len() as f64;
        let disjoint = classes.is_disjoint(covered);
        if disjoint {
            base - self.beta * d_u as f64
        } else {
            base
        }
    }

    /// The un-scaled `F_j` (Eq. (6) exactly).
    pub fn f(&self, classes: &BTreeSet<usize>, covered: &BTreeSet<usize>, d_u: usize) -> f64 {
        self.alpha_f(classes, covered, d_u) / self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[usize]) -> BTreeSet<usize> {
        v.iter().copied().collect()
    }

    #[test]
    fn more_classes_cost_less() {
        let acc = AccuracyCost::new(10, 1000.0, 0.0);
        let covered = set(&[0]);
        let two = acc.alpha_f(&set(&[0, 1]), &covered, 5);
        let eight = acc.alpha_f(&set(&[0, 1, 2, 3, 4, 5, 6, 7]), &covered, 5);
        assert!(eight < two);
        assert!((two - 1000.0 * 10.0 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_outlier_gets_discount_growing_with_d_u() {
        let acc = AccuracyCost::new(10, 1000.0, 2.0);
        let covered = set(&[0, 1, 2]);
        let outlier = set(&[7]);
        let f0 = acc.alpha_f(&outlier, &covered, 0);
        let f100 = acc.alpha_f(&outlier, &covered, 100);
        assert!((f0 - 10_000.0).abs() < 1e-9);
        assert!((f100 - (10_000.0 - 200.0)).abs() < 1e-9);
    }

    #[test]
    fn overlapping_user_gets_no_discount() {
        let acc = AccuracyCost::new(10, 1000.0, 2.0);
        let covered = set(&[0, 1, 2]);
        let user = set(&[2, 7]);
        assert_eq!(acc.alpha_f(&user, &covered, 500), 1000.0 * 5.0);
    }

    #[test]
    fn empty_covered_set_means_everyone_is_an_outlier() {
        // At the start U = ∅, so every user's classes are disjoint from it
        // (and D_u = 0, so the discount is zero anyway).
        let acc = AccuracyCost::new(10, 1000.0, 2.0);
        let f = acc.alpha_f(&set(&[3]), &BTreeSet::new(), 0);
        assert_eq!(f, 10_000.0);
    }

    #[test]
    fn beta_zero_disables_discount() {
        let acc = AccuracyCost::new(10, 1000.0, 0.0);
        let outlier = set(&[9]);
        assert_eq!(
            acc.alpha_f(&outlier, &set(&[0]), 1_000_000),
            acc.alpha_f(&outlier, &set(&[0]), 0)
        );
    }

    #[test]
    fn classless_user_is_heavily_penalized_but_finite() {
        let acc = AccuracyCost::new(10, 1000.0, 2.0);
        let f = acc.alpha_f(&BTreeSet::new(), &set(&[0]), 3);
        assert!(f.is_finite());
        assert!(f > acc.alpha_f(&set(&[5]), &set(&[0]), 3));
    }

    #[test]
    fn unscaled_f_matches_eq6() {
        let acc = AccuracyCost::new(10, 500.0, 2.0);
        let covered = set(&[1]);
        let user = set(&[1, 2]);
        assert!((acc.f(&user, &covered, 7) - 5.0).abs() < 1e-12);
        let outlier = set(&[9, 8]);
        // K/|U_j| - (beta/alpha) * D_u = 5 - (2/500)*7
        assert!((acc.f(&outlier, &covered, 7) - (5.0 - 0.028)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha > beta")]
    fn alpha_must_exceed_beta() {
        let _ = AccuracyCost::new(10, 2.0, 2.0);
    }
}
