//! Deterministic discrete-event machinery for the simulation layer.
//!
//! The round simulators in `fedsched-fl` historically advanced the whole
//! population in lockstep sweeps: every round touches every device, even
//! the ones with nothing scheduled. At the population sizes the roadmap
//! targets, most of those cycles are wasted on idle devices. The
//! event-driven engine replaces the sweep with a priority queue of timed
//! events: a device is only touched when its next event fires.
//!
//! Two primitives live here, deliberately free of any simulation
//! semantics so they can be property-tested in isolation:
//!
//! * [`EventQueue`] — a binary-heap min-queue keyed by
//!   `(sim_time, seq)`. The explicit, monotonically increasing sequence
//!   number makes the pop order *total*: two events at the same simulated
//!   time pop in insertion order, on every platform, for every seed. This
//!   is the foundation of the event engine's byte-identity contract —
//!   float-keyed heaps alone leave equal-time ordering unspecified.
//! * [`Parking`] — park/unpark bookkeeping for idle entities. A parked
//!   device owns no queued event and costs nothing per round; unparking
//!   is the only way back into the hot loop. The structure counts parks
//!   and unparks so conservation (nothing dropped, nothing duplicated)
//!   is checkable.
//!
//! # Determinism rules
//!
//! 1. Event times are `f64` seconds compared with [`f64::total_cmp`], so
//!    ordering is total even in the presence of exotic floats.
//! 2. Ties break on the sequence number, never on payload contents.
//! 3. The sequence counter is owned by the queue and survives across
//!    rounds — replaying the same schedule of pushes replays the same
//!    pops, bit for bit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One queued event: fire time, tie-breaking sequence number, payload.
#[derive(Debug, Clone)]
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq && self.time.total_cmp(&other.time) == Ordering::Equal
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse both keys: `BinaryHeap` is a max-heap, we want the
        // earliest (time, seq) out first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of timed events.
///
/// Pops strictly in `(time, seq)` order, where `seq` is assigned at
/// [`schedule`](EventQueue::schedule) time from a monotonic counter —
/// equal-time events therefore pop in insertion order.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// An empty queue with the sequence counter at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at simulated time `time`, returning the sequence
    /// number it was stamped with.
    ///
    /// # Panics
    /// Panics on a NaN time — a NaN would still order totally under
    /// `total_cmp` (after every real number), but it is always a bug in
    /// the caller's clock arithmetic and must not be silently enqueued.
    pub fn schedule(&mut self, time: f64, event: E) -> u64 {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        seq
    }

    /// Remove and return the earliest event as `(time, seq, event)`.
    pub fn pop(&mut self) -> Option<(f64, u64, E)> {
        self.heap.pop().map(|e| (e.time, e.seq, e.event))
    }

    /// Fire time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events scheduled over the queue's lifetime (the next
    /// sequence number). Monotone across rounds; never reset by pops.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drop all pending events without touching the sequence counter.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// Park/unpark bookkeeping over a fixed population of `n` slots.
///
/// A *parked* slot is out of the hot loop: the event engine must not
/// schedule events for it, and must not iterate it per round. Unparking
/// re-admits it. The structure is a plain bitmap plus conservation
/// counters; it carries no event payloads itself, so "a parked device
/// still owns its pending work" is the caller's invariant — checked in
/// the simulators by shard-conservation tests.
#[derive(Debug, Clone)]
pub struct Parking {
    parked: Vec<bool>,
    parked_count: usize,
    /// Lifetime number of park transitions (for conservation checks).
    parks: u64,
    /// Lifetime number of unpark transitions.
    unparks: u64,
}

impl Parking {
    /// All `n` slots start *unparked* (active).
    pub fn new(n: usize) -> Self {
        Parking {
            parked: vec![false; n],
            parked_count: 0,
            parks: 0,
            unparks: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.parked.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.parked.is_empty()
    }

    /// Park slot `i`. Returns `true` iff the slot transitioned (it was
    /// active); parking a parked slot is a counted no-op that returns
    /// `false`, so double-parks are visible to tests.
    pub fn park(&mut self, i: usize) -> bool {
        if self.parked[i] {
            return false;
        }
        self.parked[i] = true;
        self.parked_count += 1;
        self.parks += 1;
        true
    }

    /// Unpark slot `i`. Returns `true` iff the slot transitioned.
    pub fn unpark(&mut self, i: usize) -> bool {
        if !self.parked[i] {
            return false;
        }
        self.parked[i] = false;
        self.parked_count -= 1;
        self.unparks += 1;
        true
    }

    /// Whether slot `i` is parked.
    pub fn is_parked(&self, i: usize) -> bool {
        self.parked[i]
    }

    /// Number of currently parked slots.
    pub fn parked_count(&self) -> usize {
        self.parked_count
    }

    /// Number of currently active (unparked) slots.
    pub fn active_count(&self) -> usize {
        self.parked.len() - self.parked_count
    }

    /// Lifetime `(parks, unparks)` transition counters.
    pub fn transitions(&self) -> (u64, u64) {
        (self.parks, self.unparks)
    }

    /// Indices of active slots, ascending.
    pub fn active_indices(&self) -> Vec<usize> {
        self.parked
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| (!p).then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7.5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sequence_survives_interleaved_pops() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "a");
        assert_eq!(q.pop().map(|(_, s, e)| (s, e)), Some((0, "a")));
        // New pushes keep counting; a later push at the same time as an
        // even later push still pops first.
        q.schedule(5.0, "b");
        q.schedule(5.0, "c");
        assert_eq!(q.scheduled_total(), 3);
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("b"));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("c"));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.schedule(1.0, ());
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop().map(|(t, _, _)| t), Some(1.0));
        assert_eq!(q.peek_time(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn parking_tracks_transitions() {
        let mut p = Parking::new(4);
        assert_eq!(p.active_count(), 4);
        assert!(p.park(2));
        assert!(!p.park(2), "double park is a no-op");
        assert_eq!(p.parked_count(), 1);
        assert_eq!(p.active_indices(), vec![0, 1, 3]);
        assert!(p.unpark(2));
        assert!(!p.unpark(2), "double unpark is a no-op");
        assert_eq!(p.transitions(), (1, 1));
        assert_eq!(p.active_count(), 4);
    }

    proptest! {
        /// Any interleaving of pushes pops in (time, seq) order: times
        /// non-decreasing, and equal times strictly increasing in seq.
        #[test]
        fn pop_order_is_total_over_random_pushes(
            times in proptest::collection::vec(0u32..1000, 1..200)
        ) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                // Coarse integer times maximize collisions, stressing the
                // tie-break rather than the float ordering.
                q.schedule((t / 10) as f64, i);
            }
            let mut popped = Vec::new();
            while let Some((t, s, e)) = q.pop() {
                popped.push((t, s, e));
            }
            prop_assert_eq!(popped.len(), times.len());
            for w in popped.windows(2) {
                let (t0, s0, _) = w[0];
                let (t1, s1, _) = w[1];
                prop_assert!(t0 <= t1, "times must be non-decreasing");
                if t0 == t1 {
                    prop_assert!(s0 < s1, "equal times must pop in insertion order");
                }
            }
            // Payload i was stamped with seq i, so equal-time runs are in
            // insertion order exactly when seq order == payload order.
            for (_, s, e) in popped {
                prop_assert_eq!(s as usize, e);
            }
        }

        /// Park/unpark conservation: after any transition sequence, the
        /// parked set matches a reference model — nothing is dropped,
        /// nothing duplicated — and the counters balance.
        #[test]
        fn parking_conserves_slots(
            ops in proptest::collection::vec((0usize..16, 0u32..2), 0..200)
        ) {
            let mut p = Parking::new(16);
            let mut model = [false; 16];
            for (i, park) in ops {
                if park == 1 {
                    let changed = p.park(i);
                    prop_assert_eq!(changed, !model[i]);
                    model[i] = true;
                } else {
                    let changed = p.unpark(i);
                    prop_assert_eq!(changed, model[i]);
                    model[i] = false;
                }
            }
            let want_parked = model.iter().filter(|&&b| b).count();
            prop_assert_eq!(p.parked_count(), want_parked);
            prop_assert_eq!(p.active_count(), 16 - want_parked);
            for (i, &parked) in model.iter().enumerate() {
                prop_assert_eq!(p.is_parked(i), parked);
            }
            let (parks, unparks) = p.transitions();
            prop_assert_eq!(parks as i64 - unparks as i64, want_parked as i64);
        }
    }
}
