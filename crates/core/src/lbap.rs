//! Fed-LBAP: joint partitioning and assignment for IID data (paper
//! Algorithm 1, problem P1).
//!
//! The classical linear bottleneck assignment problem needs a perfect
//! matching check per threshold; here shards are interchangeable (IID), so a
//! threshold `c*` is feasible iff the users' threshold-capacities cover the
//! data (paper Property 2): `sum_j max{k : C[j][k] <= c*} >= s`. Rows are
//! monotone (Property 1), so each capacity is one binary search. Binary
//! searching the sorted cost values for the minimal feasible threshold gives
//! `O(ns log(ns))`, the paper's `O(n^2 log n)` when `s = n`.

use crate::cost::CostMatrix;
use crate::schedule::{emit_decision, Schedule, ScheduleError, Scheduler};
use fedsched_telemetry::Probe;

/// The Fed-LBAP scheduler. Stateless; construct with [`Default`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FedLbap;

impl FedLbap {
    /// The minimal feasible threshold `c*` — the optimal makespan over all
    /// partition+assignment combinations. Exposed for tests and diagnostics.
    pub fn optimal_threshold(&self, costs: &CostMatrix) -> f64 {
        let sorted = costs.sorted_costs();
        let s = costs.total_shards();
        if s == 0 {
            // An empty round has no candidate thresholds (`sorted` is
            // empty); nobody trains, so the makespan is zero.
            return 0.0;
        }
        let feasible = |c: f64| -> bool {
            let mut cap = 0usize;
            for j in 0..costs.n_users() {
                cap += costs.max_shards_within(j, c);
                if cap >= s {
                    return true;
                }
            }
            false
        };
        // Binary search the sorted candidate thresholds for the first
        // feasible one. The largest entry is always feasible: every user
        // can then absorb all s shards.
        let mut lo = 0usize;
        let mut hi = sorted.len() - 1;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if feasible(sorted[mid]) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        sorted[lo]
    }

    /// Construct the assignment for a given threshold: fill users up to
    /// their threshold capacity until all shards are placed, preferring
    /// users with the *cheapest marginal* shards first so the total load
    /// (and hence total energy) stays low among makespan-optimal solutions.
    fn assign_within(&self, costs: &CostMatrix, threshold: f64) -> Vec<usize> {
        let n = costs.n_users();
        let s = costs.total_shards();
        let caps: Vec<usize> = (0..n)
            .map(|j| costs.max_shards_within(j, threshold))
            .collect();

        // Order users by the time they'd take at full capacity, ascending —
        // giving shards to efficient users first.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let ta = if caps[a] == 0 {
                f64::INFINITY
            } else {
                costs.cost(a, caps[a]) / caps[a] as f64
            };
            let tb = if caps[b] == 0 {
                f64::INFINITY
            } else {
                costs.cost(b, caps[b]) / caps[b] as f64
            };
            ta.partial_cmp(&tb).expect("finite costs")
        });

        let mut shards = vec![0usize; n];
        let mut remaining = s;
        for &j in &order {
            if remaining == 0 {
                break;
            }
            let take = caps[j].min(remaining);
            shards[j] = take;
            remaining -= take;
        }
        debug_assert_eq!(remaining, 0, "threshold was infeasible");
        shards
    }
}

impl Scheduler for FedLbap {
    fn name(&self) -> &'static str {
        "Fed-LBAP"
    }

    fn schedule(&self, costs: &CostMatrix) -> Result<Schedule, ScheduleError> {
        if costs.n_users() == 0 {
            return Err(ScheduleError::NoUsers);
        }
        let c_star = self.optimal_threshold(costs);
        let shards = self.assign_within(costs, c_star);
        Ok(Schedule::new(shards, costs.shard_size()))
    }

    /// Traced variant reporting the chosen threshold `c*` in the decision
    /// event.
    fn schedule_traced(
        &self,
        costs: &CostMatrix,
        probe: &Probe,
    ) -> Result<Schedule, ScheduleError> {
        let result = self.schedule(costs);
        let threshold = result.is_ok().then(|| self.optimal_threshold(costs));
        emit_decision(self.name(), costs, &result, threshold, probe);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::EqualScheduler;
    use crate::exact::ExactMinMax;

    #[test]
    fn single_user_gets_everything() {
        let c = CostMatrix::from_linear_rates(&[2.0], 7, 10.0, &[1.0]);
        let s = FedLbap.schedule(&c).unwrap();
        assert_eq!(s.shards, vec![7]);
        assert_eq!(s.predicted_makespan(&c), c.cost(0, 7));
    }

    #[test]
    fn two_identical_users_split_evenly_in_makespan() {
        let c = CostMatrix::from_linear_rates(&[1.0, 1.0], 10, 10.0, &[0.0, 0.0]);
        let s = FedLbap.schedule(&c).unwrap();
        assert_eq!(s.total_shards(), 10);
        // Makespan must be the even-split value (5 shards).
        assert_eq!(s.predicted_makespan(&c), 5.0);
    }

    #[test]
    fn fast_user_carries_more() {
        // User 0 is 4x faster: optimal split of 10 shards is 8/2.
        let c = CostMatrix::from_linear_rates(&[1.0, 4.0], 10, 10.0, &[0.0, 0.0]);
        let s = FedLbap.schedule(&c).unwrap();
        assert_eq!(s.shards, vec![8, 2]);
        assert_eq!(s.predicted_makespan(&c), 8.0);
    }

    #[test]
    fn straggler_can_be_left_idle() {
        // User 1 takes 100s for even one shard; placing everything on user
        // 0 (10s) is optimal, so the straggler is excluded entirely.
        let c = CostMatrix::from_linear_rates(&[1.0, 100.0], 10, 10.0, &[0.0, 0.0]);
        let s = FedLbap.schedule(&c).unwrap();
        assert_eq!(s.shards, vec![10, 0]);
    }

    #[test]
    fn comm_cost_tilts_the_split() {
        // Identical compute, but user 1 pays 3s of comm: it should get
        // fewer shards.
        let c = CostMatrix::from_linear_rates(&[1.0, 1.0], 10, 10.0, &[0.0, 3.0]);
        let s = FedLbap.schedule(&c).unwrap();
        assert!(s.shards[0] > s.shards[1], "{:?}", s.shards);
        assert_eq!(s.total_shards(), 10);
    }

    #[test]
    fn matches_exact_dp_on_small_instances() {
        // Heterogeneous rates and comm costs; DP gives the true optimum.
        let cases: Vec<(Vec<f64>, Vec<f64>, usize)> = vec![
            (vec![1.0, 2.0, 3.0], vec![0.0, 0.5, 1.0], 12),
            (vec![5.0, 1.0], vec![2.0, 0.0], 9),
            (vec![1.0, 1.0, 1.0, 1.0], vec![0.0; 4], 7),
            (vec![2.5, 0.5, 4.0], vec![1.0, 1.0, 1.0], 15),
        ];
        for (rates, comm, shards) in cases {
            let c = CostMatrix::from_linear_rates(&rates, shards, 10.0, &comm);
            let lbap = FedLbap.schedule(&c).unwrap();
            let exact = ExactMinMax.schedule(&c).unwrap();
            let lm = lbap.predicted_makespan(&c);
            let em = exact.predicted_makespan(&c);
            assert!(
                (lm - em).abs() < 1e-9,
                "LBAP {lm} != exact {em} for rates {rates:?} comm {comm:?} s={shards}"
            );
        }
    }

    #[test]
    fn never_worse_than_equal_baseline() {
        let c =
            CostMatrix::from_linear_rates(&[1.0, 3.0, 7.0, 2.0], 40, 10.0, &[0.5, 0.0, 2.0, 0.1]);
        let lbap = FedLbap.schedule(&c).unwrap().predicted_makespan(&c);
        let equal = EqualScheduler.schedule(&c).unwrap().predicted_makespan(&c);
        assert!(lbap <= equal + 1e-12, "LBAP {lbap} > Equal {equal}");
    }

    #[test]
    fn assignment_always_covers_all_shards() {
        for s in [1usize, 2, 17, 100] {
            let c = CostMatrix::from_linear_rates(&[1.0, 2.0, 4.0], s, 10.0, &[0.0, 1.0, 0.5]);
            let sched = FedLbap.schedule(&c).unwrap();
            assert_eq!(sched.total_shards(), s);
        }
    }

    #[test]
    fn zero_shards_yields_empty_schedule() {
        // Regression: `optimal_threshold` used to underflow on the empty
        // candidate list (`sorted_costs().len() - 1`) when s == 0.
        let c = CostMatrix::from_linear_rates(&[1.0, 2.0, 3.0], 0, 10.0, &[0.0, 0.5, 1.0]);
        assert_eq!(FedLbap.optimal_threshold(&c), 0.0);
        let s = FedLbap.schedule(&c).unwrap();
        assert_eq!(s.shards, vec![0, 0, 0]);
        assert_eq!(s.predicted_makespan(&c), 0.0);
    }

    #[test]
    fn zero_shards_is_empty_for_every_scheduler() {
        use crate::baselines::{ProportionalScheduler, RandomScheduler};
        let c = CostMatrix::from_linear_rates(&[1.0, 2.0], 0, 10.0, &[0.0, 0.0]);
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(FedLbap),
            Box::new(ExactMinMax),
            Box::new(EqualScheduler),
            Box::new(RandomScheduler::new(3)),
            Box::new(ProportionalScheduler::new(vec![1.0, 2.0])),
        ];
        for s in schedulers {
            let schedule = s.schedule(&c).unwrap();
            assert_eq!(schedule.shards, vec![0, 0], "{}", s.name());
        }
    }

    #[test]
    fn traced_schedule_reports_threshold() {
        use fedsched_telemetry::{Event, EventLog};
        use std::sync::Arc;
        let c = CostMatrix::from_linear_rates(&[1.0, 4.0], 10, 10.0, &[0.0, 0.0]);
        let log = Arc::new(EventLog::new());
        let probe = Probe::attached(log.clone());
        let s = FedLbap.schedule_traced(&c, &probe).unwrap();
        let events = log.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::ScheduleDecision {
                scheduler,
                threshold,
                shards,
                ..
            } => {
                assert_eq!(scheduler, "Fed-LBAP");
                assert_eq!(*threshold, Some(FedLbap.optimal_threshold(&c)));
                assert_eq!(*shards, s.shards);
            }
            other => panic!("expected a decision event, got {other:?}"),
        }
    }

    #[test]
    fn threshold_is_attained_by_schedule() {
        let c = CostMatrix::from_linear_rates(&[1.3, 2.7, 0.9], 23, 10.0, &[0.2, 0.0, 1.5]);
        let t = FedLbap.optimal_threshold(&c);
        let sched = FedLbap.schedule(&c).unwrap();
        assert!(sched.predicted_makespan(&c) <= t + 1e-12);
    }
}
