//! Differentially-private class reporting (paper Section IV-A: users report
//! class information protected by "security protocols ... and
//! differentially-private class information").
//!
//! Fed-MinAvg needs each user's class *set* (or at least its size and
//! novelty). Randomized response over the 10 class-membership bits gives
//! per-bit epsilon-DP: each bit is reported truthfully with probability
//! `e^eps / (1 + e^eps)` and flipped otherwise. The server can still form an
//! unbiased estimate of the true class count for the accuracy cost, at a
//! privacy-controlled accuracy loss this module's tests quantify.

use std::collections::BTreeSet;

use rand::Rng;

/// Probability of reporting a membership bit truthfully under randomized
/// response with privacy parameter `epsilon` (per bit).
pub fn truth_probability(epsilon: f64) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let e = epsilon.exp();
    e / (1.0 + e)
}

/// Report a privatized version of `classes` over the universe `0..k`.
pub fn privatize_classes<R: Rng>(
    classes: &BTreeSet<usize>,
    k: usize,
    epsilon: f64,
    rng: &mut R,
) -> BTreeSet<usize> {
    let p_truth = truth_probability(epsilon);
    (0..k)
        .filter(|c| {
            let member = classes.contains(c);
            if rng.gen::<f64>() < p_truth {
                member
            } else {
                !member
            }
        })
        .collect()
}

/// Unbiased estimate of the true class count from a privatized report:
/// `(observed - k(1-p)) / (2p - 1)`, clamped to `[0, k]`.
pub fn estimate_class_count(reported: usize, k: usize, epsilon: f64) -> f64 {
    let p = truth_probability(epsilon);
    let raw = (reported as f64 - k as f64 * (1.0 - p)) / (2.0 * p - 1.0);
    raw.clamp(0.0, k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn set(v: &[usize]) -> BTreeSet<usize> {
        v.iter().copied().collect()
    }

    #[test]
    fn truth_probability_increases_with_epsilon() {
        assert!(truth_probability(0.1) < truth_probability(1.0));
        assert!(truth_probability(1.0) < truth_probability(5.0));
        assert!(
            (truth_probability(0.0001) - 0.5).abs() < 1e-3,
            "eps->0 is a coin flip"
        );
        assert!(truth_probability(10.0) > 0.9999);
    }

    #[test]
    fn high_epsilon_reports_are_nearly_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let truth = set(&[1, 4, 7]);
        let mut exact = 0;
        for _ in 0..100 {
            if privatize_classes(&truth, 10, 8.0, &mut rng) == truth {
                exact += 1;
            }
        }
        assert!(exact > 95, "only {exact}/100 exact at eps=8");
    }

    #[test]
    fn low_epsilon_reports_are_noisy() {
        let mut rng = StdRng::seed_from_u64(2);
        let truth = set(&[1, 4, 7]);
        let mut exact = 0;
        for _ in 0..100 {
            if privatize_classes(&truth, 10, 0.2, &mut rng) == truth {
                exact += 1;
            }
        }
        assert!(exact < 20, "{exact}/100 exact at eps=0.2 — too faithful");
    }

    #[test]
    fn count_estimator_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(3);
        let truth = set(&[0, 1, 2, 3]); // 4 classes of 10
        let eps = 1.0;
        let n = 4000;
        let mean_estimate: f64 = (0..n)
            .map(|_| {
                let report = privatize_classes(&truth, 10, eps, &mut rng);
                estimate_class_count(report.len(), 10, eps)
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean_estimate - 4.0).abs() < 0.25,
            "mean estimate {mean_estimate} should be ~4"
        );
    }

    #[test]
    fn estimator_clamps_to_valid_range() {
        assert_eq!(estimate_class_count(0, 10, 0.5), 0.0);
        assert!(estimate_class_count(10, 10, 0.5) <= 10.0);
    }

    #[test]
    fn minavg_still_schedules_with_privatized_classes() {
        use crate::acc::AccuracyCost;
        use crate::minavg::{FedMinAvg, MinAvgProblem, UserSpec};
        use fedsched_profiler::LinearProfile;

        let mut rng = StdRng::seed_from_u64(4);
        let true_sets = [
            set(&[0, 1, 2, 3, 4]),
            set(&[5, 6]),
            set(&[7, 8, 9]),
            set(&[0, 9]),
        ];
        let users: Vec<UserSpec<LinearProfile>> = true_sets
            .iter()
            .map(|classes| UserSpec {
                profile: LinearProfile::new(0.1, 0.001),
                comm: 0.2,
                classes: privatize_classes(classes, 10, 2.0, &mut rng),
                capacity_shards: 50,
            })
            .collect();
        let problem = MinAvgProblem {
            users,
            total_shards: 80,
            shard_size: 10.0,
            acc: AccuracyCost::new(10, 5.0, 1.0),
        };
        let out = FedMinAvg
            .schedule(&problem)
            .expect("feasible with noisy classes");
        assert_eq!(out.schedule.total_shards(), 80);
    }
}
