//! The paper's baseline schedulers: Proportional, Random and Equal.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cost::CostMatrix;
use crate::schedule::{Schedule, ScheduleError, Scheduler};

/// Distribute `total` shards according to non-negative `weights`, largest
/// remainders first so the result sums exactly to `total`.
fn apportion(weights: &[f64], total: usize) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    let n = weights.len();
    if sum <= 0.0 {
        // Degenerate: fall back to equal shares.
        return apportion(&vec![1.0; n], total);
    }
    let exact: Vec<f64> = weights.iter().map(|w| w / sum * total as f64).collect();
    let mut shards: Vec<usize> = exact.iter().map(|e| e.floor() as usize).collect();
    let assigned: usize = shards.iter().sum();
    // Hand the leftover to the largest fractional remainders.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa).expect("finite")
    });
    for &j in order.iter().take(total - assigned) {
        shards[j] += 1;
    }
    shards
}

/// `Equal`: every user gets the same share (FedAvg's default partition).
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualScheduler;

impl Scheduler for EqualScheduler {
    fn name(&self) -> &'static str {
        "Equal"
    }

    fn schedule(&self, costs: &CostMatrix) -> Result<Schedule, ScheduleError> {
        if costs.n_users() == 0 {
            return Err(ScheduleError::NoUsers);
        }
        let shards = apportion(&vec![1.0; costs.n_users()], costs.total_shards());
        Ok(Schedule::new(shards, costs.shard_size()))
    }
}

/// `Proportional`: shares proportional to a processing-power signal — the
/// paper uses the mean per-core CPU frequency, which misjudges thermal
/// behaviour and is why this heuristic underperforms (Section VII-A).
#[derive(Debug, Clone)]
pub struct ProportionalScheduler {
    /// The per-user power signal (e.g. mean core GHz).
    pub weights: Vec<f64>,
}

impl ProportionalScheduler {
    /// Create from a power signal.
    pub fn new(weights: Vec<f64>) -> Self {
        ProportionalScheduler { weights }
    }
}

impl Scheduler for ProportionalScheduler {
    fn name(&self) -> &'static str {
        "Proportional"
    }

    fn schedule(&self, costs: &CostMatrix) -> Result<Schedule, ScheduleError> {
        if costs.n_users() == 0 {
            return Err(ScheduleError::NoUsers);
        }
        if self.weights.len() != costs.n_users() {
            return Err(ScheduleError::DimensionMismatch);
        }
        Ok(Schedule::new(
            apportion(&self.weights, costs.total_shards()),
            costs.shard_size(),
        ))
    }
}

/// `Random`: a uniformly random composition of the shard total — every way
/// of splitting `s` shards among `n` users (stars and bars) is equally
/// likely. Deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    seed: u64,
}

impl RandomScheduler {
    /// Create with a seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler { seed }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn schedule(&self, costs: &CostMatrix) -> Result<Schedule, ScheduleError> {
        let n = costs.n_users();
        if n == 0 {
            return Err(ScheduleError::NoUsers);
        }
        let s = costs.total_shards();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Stars and bars: choose n-1 cut points in 0..=s with repetition,
        // sort, take differences.
        let mut cuts: Vec<usize> = (0..n - 1).map(|_| rng.gen_range(0..=s)).collect();
        cuts.sort_unstable();
        let mut shards = Vec::with_capacity(n);
        let mut prev = 0usize;
        for &c in &cuts {
            shards.push(c - prev);
            prev = c;
        }
        shards.push(s - prev);
        Ok(Schedule::new(shards, costs.shard_size()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(n: usize, s: usize) -> CostMatrix {
        CostMatrix::from_linear_rates(&vec![1.0; n], s, 10.0, &vec![0.0; n])
    }

    #[test]
    fn apportion_sums_to_total() {
        for total in [0usize, 1, 7, 100] {
            for weights in [vec![1.0, 1.0, 1.0], vec![2.7, 0.1, 9.3], vec![0.0, 0.0]] {
                let a = apportion(&weights, total);
                assert_eq!(a.iter().sum::<usize>(), total, "{weights:?} {total}");
            }
        }
    }

    #[test]
    fn equal_splits_evenly_with_remainder() {
        let s = EqualScheduler.schedule(&costs(3, 10)).unwrap();
        let mut shards = s.shards.clone();
        shards.sort_unstable();
        assert_eq!(shards, vec![3, 3, 4]);
    }

    #[test]
    fn proportional_tracks_weights() {
        let sched = ProportionalScheduler::new(vec![3.0, 1.0]);
        let s = sched.schedule(&costs(2, 8)).unwrap();
        assert_eq!(s.shards, vec![6, 2]);
    }

    #[test]
    fn proportional_rejects_wrong_arity() {
        let sched = ProportionalScheduler::new(vec![1.0]);
        assert_eq!(
            sched.schedule(&costs(2, 8)).unwrap_err(),
            ScheduleError::DimensionMismatch
        );
    }

    #[test]
    fn proportional_zero_weights_fall_back_to_equal() {
        let sched = ProportionalScheduler::new(vec![0.0, 0.0]);
        let s = sched.schedule(&costs(2, 8)).unwrap();
        assert_eq!(s.shards, vec![4, 4]);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_covers_total() {
        let a = RandomScheduler::new(9).schedule(&costs(4, 20)).unwrap();
        let b = RandomScheduler::new(9).schedule(&costs(4, 20)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.total_shards(), 20);
        let c = RandomScheduler::new(10).schedule(&costs(4, 20)).unwrap();
        assert_eq!(c.total_shards(), 20);
    }

    #[test]
    fn random_single_user_takes_all() {
        let s = RandomScheduler::new(3).schedule(&costs(1, 5)).unwrap();
        assert_eq!(s.shards, vec![5]);
    }

    #[test]
    fn random_spreads_mass_across_users() {
        // Over many seeds, every user should receive shards sometimes.
        let c = costs(3, 9);
        let mut touched = [false; 3];
        for seed in 0..50 {
            let s = RandomScheduler::new(seed).schedule(&c).unwrap();
            for (j, &k) in s.shards.iter().enumerate() {
                if k > 0 {
                    touched[j] = true;
                }
            }
        }
        assert!(touched.iter().all(|&t| t));
    }
}
