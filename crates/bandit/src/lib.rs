//! Online bandit-driven client selection for federated scheduling.
//!
//! The source paper schedules shards from the profiler's *point estimates*,
//! but real fleets drift: thermal history, background load and churn move a
//! device's effective speed between rounds, so a static Fed-LBAP plan goes
//! stale. This crate treats cohort selection as a multi-armed bandit — one
//! arm per device, reward = observed per-round efficiency — so the server
//! keeps probing the fleet and concentrates work on the devices that are
//! fast *now*, not the ones that were fast when the offline profile was
//! taken.
//!
//! * [`SelectionPolicy`] — the policy trait: per-arm pull counts and reward
//!   statistics, plus a `select(eligible, k, stream)` step with
//!   seed-deterministic tie-breaking;
//! * [`EpsilonGreedy`], [`Ucb1`], [`ThompsonSampling`] — the three classic
//!   policies (Thompson uses a Gaussian posterior over each arm's mean);
//! * [`BanditScheduler`] — composes a policy with any inner
//!   [`Scheduler`](fedsched_core::Scheduler): the policy picks the cohort,
//!   the inner scheduler (e.g. Fed-LBAP) splits the shards among the
//!   selected devices;
//! * [`selection_stream`] — the dedicated salted [`DrawStream`] channel all
//!   selection randomness comes from, so runs replay byte-identically and
//!   never perturb the simulation's main RNG.
//!
//! Determinism contract: every random ingredient (exploration coins,
//! posterior samples, tie-breaks) is drawn from the caller-provided
//! [`DrawStream`], which is counter-based and scoped per `(seed, round)`.
//! Two runs with the same seed select identical cohorts regardless of
//! thread count, and a policy asked to select from identical state draws
//! an identical number of stream values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fedsched_core::{CostMatrix, Schedule, ScheduleError, Scheduler};
use fedsched_faults::DrawStream;
use fedsched_profiler::CostProfile;
use serde::Serialize;
use std::sync::Mutex;

/// Salt folded into the master seed for the selection draw channel
/// (`"bandit_s"` as big-endian bytes). Distinct from the fault plan's
/// per-transfer channels and the adversary/churn/drift salts, so selection
/// never aliases another consumer's stream.
pub const SELECTION_SALT: u64 = 0x6261_6e64_6974_5f73;

/// Penalty cost assigned to unselected devices when masking a cost matrix:
/// large but finite, so inner schedulers starve them of work while their
/// binary searches stay valid.
const MASK_FIXED_S: f64 = 1e6;
/// Per-shard slope of the mask penalty.
const MASK_PER_SHARD_S: f64 = 1e3;

/// The dedicated selection draw stream for one round: scoped to
/// `(seed, round)` exactly like
/// [`FaultInjector::draw_stream`](fedsched_faults::FaultInjector::draw_stream)
/// but under its own salt, so selection draws are independent of every
/// fault-injection channel.
pub fn selection_stream(seed: u64, round: u64) -> DrawStream {
    DrawStream::new(
        (seed ^ SELECTION_SALT)
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(round << 32),
    )
}

/// Seed-or-inherit knob in the `MaybeSeededRng` style: `None` derives the
/// selection stream from the run's master seed (replayable by default),
/// `Some` pins an explicit stream so two jobs sharing a master seed can
/// still explore differently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Default)]
pub struct MaybeSeeded {
    /// Explicit seed override, if any.
    pub seed: Option<u64>,
}

impl MaybeSeeded {
    /// Inherit the run's master seed.
    pub fn inherit() -> Self {
        MaybeSeeded { seed: None }
    }

    /// Pin an explicit seed.
    pub fn pinned(seed: u64) -> Self {
        MaybeSeeded { seed: Some(seed) }
    }

    /// The seed this knob resolves to under `fallback`.
    pub fn resolve(&self, fallback: u64) -> u64 {
        self.seed.unwrap_or(fallback)
    }
}

/// Reward statistics for one arm (one device): pull count plus a Welford
/// accumulator over observed rewards.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ArmState {
    /// Times this arm was pulled (selected and credited a reward).
    pub pulls: u64,
    /// Empirical mean reward.
    pub mean: f64,
    /// Welford sum of squared deviations (`variance = m2 / pulls`).
    pub m2: f64,
}

impl ArmState {
    /// Fold one reward observation in.
    pub fn observe(&mut self, reward: f64) {
        self.pulls += 1;
        let delta = reward - self.mean;
        self.mean += delta / self.pulls as f64;
        self.m2 += delta * (reward - self.mean);
    }

    /// Empirical reward variance (0 before the second pull).
    pub fn variance(&self) -> f64 {
        if self.pulls < 2 {
            0.0
        } else {
            self.m2 / self.pulls as f64
        }
    }
}

/// Grow-on-demand arm table shared by every policy implementation.
#[derive(Debug, Clone, Default)]
struct ArmTable {
    arms: Vec<ArmState>,
    total_pulls: u64,
}

impl ArmTable {
    fn ensure(&mut self, n: usize) {
        if self.arms.len() < n {
            self.arms.resize(n, ArmState::default());
        }
    }

    fn update(&mut self, arm: usize, reward: f64) {
        assert!(
            reward.is_finite(),
            "bandit rewards must be finite, got {reward}"
        );
        self.ensure(arm + 1);
        self.arms[arm].observe(reward);
        self.total_pulls += 1;
    }

    fn pulls(&self, arm: usize) -> u64 {
        self.arms.get(arm).map_or(0, |a| a.pulls)
    }

    fn mean(&self, arm: usize) -> f64 {
        self.arms.get(arm).map_or(0.0, |a| a.mean)
    }
}

/// A cohort-selection policy: scores every eligible arm from its reward
/// history plus stream draws, then keeps the top `k`.
///
/// Implementations must take *all* randomness from the provided
/// [`DrawStream`] and must never consult ambient entropy, so a selection
/// step is a pure function of `(policy state, eligible, k, stream)`.
pub trait SelectionPolicy: Send {
    /// Policy name for telemetry and reports.
    fn name(&self) -> &'static str;

    /// Select up to `k` arms among those with `eligible[arm] == true`.
    /// Returns the selected arm indices in ascending order. Fewer than `k`
    /// eligible arms selects all of them.
    fn select(&mut self, eligible: &[bool], k: usize, stream: &mut DrawStream) -> Vec<usize>;

    /// Credit `arm` with one observed `reward` (higher is better).
    ///
    /// # Panics
    /// Panics on a non-finite reward — reward plumbing must filter NaN/inf
    /// before it reaches the policy.
    fn update(&mut self, arm: usize, reward: f64);

    /// Times `arm` has been credited a reward.
    fn pulls(&self, arm: usize) -> u64;

    /// Empirical mean reward of `arm` (0 before the first pull).
    fn mean(&self, arm: usize) -> f64;
}

/// One standard Gaussian via Box–Muller over two stream draws.
fn gaussian(stream: &mut DrawStream) -> f64 {
    let u1 = stream.next_u01();
    let u2 = stream.next_u01();
    (-2.0 * (1.0 - u1).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Rank `scored` (arm, score) pairs and keep the top `k` by
/// `(score desc, tie-break asc, index asc)`. The tie-break values come
/// from the selection stream, one per scored arm, so equal-score arms are
/// broken seed-deterministically rather than positionally.
fn top_k(mut scored: Vec<(usize, f64, f64)>, k: usize) -> Vec<usize> {
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("scores are never NaN")
            .then(a.2.partial_cmp(&b.2).expect("tie-breaks are never NaN"))
            .then(a.0.cmp(&b.0))
    });
    let mut selected: Vec<usize> = scored.into_iter().take(k).map(|(j, _, _)| j).collect();
    selected.sort_unstable();
    selected
}

/// Epsilon-greedy: exploit the top-`k` empirical means, then re-roll each
/// selected slot with probability `epsilon` to a uniformly random
/// unselected eligible arm. Unpulled arms score `+inf`, so every arm is
/// tried before exploitation kicks in.
#[derive(Debug, Default)]
pub struct EpsilonGreedy {
    /// Per-slot exploration probability, in `[0, 1]`.
    pub epsilon: f64,
    table: ArmTable,
}

impl EpsilonGreedy {
    /// A policy with the given exploration probability.
    pub fn new(epsilon: f64) -> Self {
        EpsilonGreedy {
            epsilon,
            table: ArmTable::default(),
        }
    }
}

impl SelectionPolicy for EpsilonGreedy {
    fn name(&self) -> &'static str {
        "epsilon_greedy"
    }

    fn select(&mut self, eligible: &[bool], k: usize, stream: &mut DrawStream) -> Vec<usize> {
        self.table.ensure(eligible.len());
        let scored: Vec<(usize, f64, f64)> = eligible
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(j, _)| {
                let a = &self.table.arms[j];
                let score = if a.pulls == 0 { f64::INFINITY } else { a.mean };
                (j, score, stream.next_u01())
            })
            .collect();
        let mut selected = top_k(scored, k);
        // Exploration pass: one coin per selected slot, re-rolled slots
        // swap in a uniformly random currently-unselected eligible arm.
        for slot in 0..selected.len() {
            if stream.next_u01() >= self.epsilon {
                continue;
            }
            let pool: Vec<usize> = eligible
                .iter()
                .enumerate()
                .filter(|(j, &e)| e && !selected.contains(j))
                .map(|(j, _)| j)
                .collect();
            if pool.is_empty() {
                continue;
            }
            let pick = (stream.next_u01() * pool.len() as f64) as usize;
            selected[slot] = pool[pick.min(pool.len() - 1)];
        }
        selected.sort_unstable();
        selected
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.table.update(arm, reward);
    }

    fn pulls(&self, arm: usize) -> u64 {
        self.table.pulls(arm)
    }

    fn mean(&self, arm: usize) -> f64 {
        self.table.mean(arm)
    }
}

/// UCB1 (Auer et al.): score `mean + c * sqrt(2 ln t / pulls)` with the
/// classic unpulled-first rule (`+inf` before the first pull). `c` scales
/// the confidence width to the reward scale; 1.0 is the textbook value.
#[derive(Debug, Default)]
pub struct Ucb1 {
    /// Confidence-width multiplier.
    pub c: f64,
    table: ArmTable,
}

impl Ucb1 {
    /// A policy with the given confidence-width multiplier.
    pub fn new(c: f64) -> Self {
        Ucb1 {
            c,
            table: ArmTable::default(),
        }
    }
}

impl SelectionPolicy for Ucb1 {
    fn name(&self) -> &'static str {
        "ucb1"
    }

    fn select(&mut self, eligible: &[bool], k: usize, stream: &mut DrawStream) -> Vec<usize> {
        self.table.ensure(eligible.len());
        let t = self.table.total_pulls.max(1) as f64;
        let scored: Vec<(usize, f64, f64)> = eligible
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(j, _)| {
                let a = &self.table.arms[j];
                let score = if a.pulls == 0 {
                    f64::INFINITY
                } else {
                    a.mean + self.c * (2.0 * t.ln() / a.pulls as f64).sqrt()
                };
                (j, score, stream.next_u01())
            })
            .collect();
        top_k(scored, k)
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.table.update(arm, reward);
    }

    fn pulls(&self, arm: usize) -> u64 {
        self.table.pulls(arm)
    }

    fn mean(&self, arm: usize) -> f64 {
        self.table.mean(arm)
    }
}

/// Thompson sampling with a Gaussian posterior over each arm's mean: score
/// `mean + sqrt(v / pulls) * g` where `v` is the empirical reward variance
/// (unit prior before the second pull) and `g` a stream-drawn standard
/// normal. Unpulled arms score `+inf`, matching the other policies'
/// unpulled-first rule.
#[derive(Debug, Default)]
pub struct ThompsonSampling {
    table: ArmTable,
}

impl ThompsonSampling {
    /// A fresh policy.
    pub fn new() -> Self {
        ThompsonSampling::default()
    }
}

impl SelectionPolicy for ThompsonSampling {
    fn name(&self) -> &'static str {
        "thompson"
    }

    fn select(&mut self, eligible: &[bool], k: usize, stream: &mut DrawStream) -> Vec<usize> {
        self.table.ensure(eligible.len());
        let scored: Vec<(usize, f64, f64)> = eligible
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(j, _)| {
                let a = &self.table.arms[j];
                let score = if a.pulls == 0 {
                    f64::INFINITY
                } else {
                    let v = if a.pulls < 2 { 1.0 } else { a.variance() };
                    a.mean + (v / a.pulls as f64).sqrt() * gaussian(stream)
                };
                (j, score, stream.next_u01())
            })
            .collect();
        top_k(scored, k)
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.table.update(arm, reward);
    }

    fn pulls(&self, arm: usize) -> u64 {
        self.table.pulls(arm)
    }

    fn mean(&self, arm: usize) -> f64 {
        self.table.mean(arm)
    }
}

/// Wire-serializable policy choice, buildable into a boxed
/// [`SelectionPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum PolicyKind {
    /// [`EpsilonGreedy`] with the given exploration probability.
    EpsilonGreedy {
        /// Per-slot exploration probability, in `[0, 1]`.
        epsilon: f64,
    },
    /// [`Ucb1`] with the given confidence-width multiplier.
    Ucb1 {
        /// Confidence-width multiplier, positive and finite.
        c: f64,
    },
    /// [`ThompsonSampling`] (Gaussian posterior, no knobs).
    ThompsonSampling,
}

impl PolicyKind {
    /// Stable snake_case tag (wire format + telemetry).
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::EpsilonGreedy { .. } => "epsilon_greedy",
            PolicyKind::Ucb1 { .. } => "ucb1",
            PolicyKind::ThompsonSampling => "thompson",
        }
    }

    /// Check the policy's knobs are in range.
    pub fn validate(&self) -> Result<(), &'static str> {
        match self {
            PolicyKind::EpsilonGreedy { epsilon } => {
                if !(0.0..=1.0).contains(epsilon) || !epsilon.is_finite() {
                    return Err("epsilon must be a probability in [0, 1]");
                }
            }
            PolicyKind::Ucb1 { c } => {
                if !(*c > 0.0 && c.is_finite()) {
                    return Err("ucb1 confidence width must be positive and finite");
                }
            }
            PolicyKind::ThompsonSampling => {}
        }
        Ok(())
    }

    /// Build a fresh policy instance.
    ///
    /// # Panics
    /// Panics on an invalid kind — validate first on fallible paths.
    pub fn build(&self) -> Box<dyn SelectionPolicy> {
        if let Err(rule) = self.validate() {
            panic!("{rule}");
        }
        match *self {
            PolicyKind::EpsilonGreedy { epsilon } => Box::new(EpsilonGreedy::new(epsilon)),
            PolicyKind::Ucb1 { c } => Box::new(Ucb1::new(c)),
            PolicyKind::ThompsonSampling => Box::new(ThompsonSampling::new()),
        }
    }
}

/// The full online-selection configuration a job carries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SelectionConfig {
    /// Which policy scores the arms.
    pub policy: PolicyKind,
    /// Devices selected per scheduling domain (cohort) each round; clamped
    /// to the domain size at run time.
    pub k: usize,
    /// Selection-stream seed override (`None` inherits the master seed).
    pub seed: MaybeSeeded,
}

impl SelectionConfig {
    /// A configuration inheriting the master seed.
    pub fn new(policy: PolicyKind, k: usize) -> Self {
        SelectionConfig {
            policy,
            k,
            seed: MaybeSeeded::inherit(),
        }
    }

    /// Check every knob is in range.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.k == 0 {
            return Err("selection cohort size k must be at least 1");
        }
        self.policy.validate()
    }
}

/// Replace the rows of unselected users with a large-but-finite penalty so
/// any inner scheduler starves them while its searches stay valid.
/// Selected users' rows (and comm) are copied through bit-identically.
pub fn mask_costs(costs: &CostMatrix, selected: &[bool]) -> CostMatrix {
    assert_eq!(
        selected.len(),
        costs.n_users(),
        "selection mask/user count mismatch"
    );
    struct Row<'a> {
        costs: &'a CostMatrix,
        j: usize,
        masked: bool,
    }
    impl CostProfile for Row<'_> {
        fn time_for(&self, samples: f64) -> f64 {
            let k = (samples / self.costs.shard_size()).round() as usize;
            if self.masked {
                MASK_FIXED_S + k as f64 * MASK_PER_SHARD_S
            } else {
                // Rows store compute + comm; from_profiles re-adds comm.
                self.costs.cost(self.j, k) - self.costs.comm(self.j)
            }
        }
    }
    let profiles: Vec<Row> = (0..costs.n_users())
        .map(|j| Row {
            costs,
            j,
            masked: !selected[j],
        })
        .collect();
    let comm: Vec<f64> = (0..costs.n_users()).map(|j| costs.comm(j)).collect();
    CostMatrix::from_profiles(&profiles, costs.total_shards(), costs.shard_size(), &comm)
}

/// A [`Scheduler`] that selects the cohort online before delegating the
/// shard split to an inner scheduler: each `schedule` call is one bandit
/// round — the policy picks `k` arms from its reward history, unselected
/// users' costs are masked to a penalty, and the inner scheduler (e.g.
/// Fed-LBAP) splits the shards among the selected.
///
/// Rewards are fed back between rounds via
/// [`BanditScheduler::reward`]. The policy lives behind a mutex because
/// [`Scheduler`] takes `&self`; calls are short and uncontended.
pub struct BanditScheduler {
    inner: Box<dyn Scheduler>,
    policy: Mutex<Box<dyn SelectionPolicy>>,
    k: usize,
    seed: u64,
    round: Mutex<u64>,
    last_selected: Mutex<Vec<usize>>,
}

impl BanditScheduler {
    /// Compose `policy` (selection) with `inner` (shard split), drawing
    /// selection randomness from [`selection_stream`] under `seed`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(
        inner: Box<dyn Scheduler>,
        policy: Box<dyn SelectionPolicy>,
        k: usize,
        seed: u64,
    ) -> Self {
        assert!(k > 0, "selection cohort size k must be at least 1");
        BanditScheduler {
            inner,
            policy: Mutex::new(policy),
            k,
            seed,
            round: Mutex::new(0),
            last_selected: Mutex::new(Vec::new()),
        }
    }

    /// The cohort chosen by the most recent `schedule` call.
    pub fn last_selected(&self) -> Vec<usize> {
        self.last_selected.lock().expect("bandit lock").clone()
    }

    /// Credit `arm` with one observed reward.
    pub fn reward(&self, arm: usize, reward: f64) {
        self.policy.lock().expect("bandit lock").update(arm, reward);
    }
}

impl Scheduler for BanditScheduler {
    fn name(&self) -> &'static str {
        "Bandit"
    }

    fn schedule(&self, costs: &CostMatrix) -> Result<Schedule, ScheduleError> {
        let n = costs.n_users();
        if n == 0 {
            return Err(ScheduleError::NoUsers);
        }
        let mut round = self.round.lock().expect("bandit lock");
        let mut stream = selection_stream(self.seed, *round);
        *round += 1;
        drop(round);
        let eligible = vec![true; n];
        let selected =
            self.policy
                .lock()
                .expect("bandit lock")
                .select(&eligible, self.k.min(n), &mut stream);
        let mut mask = vec![false; n];
        for &j in &selected {
            mask[j] = true;
        }
        *self.last_selected.lock().expect("bandit lock") = selected;
        self.inner.schedule(&mask_costs(costs, &mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_core::lbap::FedLbap;

    fn stream() -> DrawStream {
        selection_stream(42, 0)
    }

    #[test]
    fn arm_state_welford_matches_naive_moments() {
        let rewards = [1.0, 3.0, 2.0, 5.0, 4.0];
        let mut a = ArmState::default();
        for r in rewards {
            a.observe(r);
        }
        let mean = rewards.iter().sum::<f64>() / rewards.len() as f64;
        let var = rewards.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / rewards.len() as f64;
        assert_eq!(a.pulls, 5);
        assert!((a.mean - mean).abs() < 1e-12);
        assert!((a.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn unpulled_arms_are_selected_first() {
        for mut policy in [
            Box::new(EpsilonGreedy::new(0.0)) as Box<dyn SelectionPolicy>,
            Box::new(Ucb1::new(1.0)),
            Box::new(ThompsonSampling::new()),
        ] {
            // Arms 0 and 1 have good history; 2 and 3 are unpulled.
            for _ in 0..3 {
                policy.update(0, 10.0);
                policy.update(1, 9.0);
            }
            let sel = policy.select(&[true; 4], 2, &mut stream());
            assert_eq!(sel, vec![2, 3], "{} must try unpulled arms", policy.name());
        }
    }

    #[test]
    fn selection_is_replayable_and_thread_free() {
        let mut a = Ucb1::new(1.0);
        let mut b = Ucb1::new(1.0);
        for arm in 0..6 {
            a.update(arm, arm as f64);
            b.update(arm, arm as f64);
        }
        for round in 0..20u64 {
            let sa = a.select(&[true; 6], 3, &mut selection_stream(7, round));
            let sb = b.select(&[true; 6], 3, &mut selection_stream(7, round));
            assert_eq!(sa, sb, "round {round}");
            assert_eq!(sa.len(), 3);
            assert!(sa.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        }
    }

    #[test]
    fn greedy_exploits_the_best_arms_once_all_are_pulled() {
        let mut p = EpsilonGreedy::new(0.0);
        for arm in 0..5 {
            p.update(arm, arm as f64);
        }
        let sel = p.select(&[true; 5], 2, &mut stream());
        assert_eq!(sel, vec![3, 4]);
        assert_eq!(p.pulls(3), 1);
        assert_eq!(p.mean(4), 4.0);
    }

    #[test]
    fn epsilon_one_explores_outside_the_greedy_set() {
        // With epsilon = 1 every slot re-rolls; over many rounds the
        // selection must include arms outside the greedy top-k.
        let mut p = EpsilonGreedy::new(1.0);
        for arm in 0..6 {
            p.update(arm, if arm < 2 { 100.0 } else { 0.0 });
        }
        let mut saw_weak_arm = false;
        for round in 0..30u64 {
            let sel = p.select(&[true; 6], 2, &mut selection_stream(3, round));
            assert_eq!(sel.len(), 2);
            if sel.iter().any(|&j| j >= 2) {
                saw_weak_arm = true;
            }
        }
        assert!(saw_weak_arm, "epsilon=1 must leave the greedy set");
    }

    #[test]
    fn ucb_width_shrinks_with_pulls() {
        // Arm 0: high mean, many pulls. Arm 1: slightly lower mean, one
        // pull — its confidence width should win the second slot over a
        // much-pulled equal arm.
        let mut p = Ucb1::new(1.0);
        for _ in 0..50 {
            p.update(0, 1.0);
            p.update(2, 0.9);
        }
        p.update(1, 0.9);
        let sel = p.select(&[true, true, true], 2, &mut stream());
        assert!(sel.contains(&0));
        assert!(sel.contains(&1), "under-explored arm must outrank arm 2");
    }

    #[test]
    fn thompson_concentrates_with_evidence() {
        let mut p = ThompsonSampling::new();
        for _ in 0..200 {
            p.update(0, 10.0);
            p.update(1, 1.0);
        }
        let mut arm0 = 0;
        for round in 0..50u64 {
            let sel = p.select(&[true, true], 1, &mut selection_stream(11, round));
            if sel == vec![0] {
                arm0 += 1;
            }
        }
        assert!(
            arm0 >= 45,
            "posterior must favour the better arm, got {arm0}/50"
        );
    }

    #[test]
    fn ineligible_arms_are_never_selected() {
        let mut p = ThompsonSampling::new();
        let eligible = [true, false, true, false, true];
        for round in 0..10u64 {
            let sel = p.select(&eligible, 4, &mut selection_stream(5, round));
            assert!(sel.iter().all(|&j| eligible[j]), "round {round}: {sel:?}");
            assert_eq!(sel.len(), 3, "all eligible arms when k exceeds them");
        }
        let mut eg = EpsilonGreedy::new(1.0);
        for round in 0..10u64 {
            let sel = eg.select(&eligible, 2, &mut selection_stream(5, round));
            assert!(sel.iter().all(|&j| eligible[j]), "round {round}: {sel:?}");
        }
    }

    #[test]
    fn policy_kind_builds_validates_and_names() {
        assert_eq!(
            PolicyKind::EpsilonGreedy { epsilon: 0.1 }.name(),
            "epsilon_greedy"
        );
        assert_eq!(PolicyKind::Ucb1 { c: 1.0 }.name(), "ucb1");
        assert_eq!(PolicyKind::ThompsonSampling.name(), "thompson");
        assert!(PolicyKind::EpsilonGreedy { epsilon: 1.5 }
            .validate()
            .is_err());
        assert!(PolicyKind::Ucb1 { c: 0.0 }.validate().is_err());
        assert!(PolicyKind::Ucb1 { c: f64::NAN }.validate().is_err());
        assert!(SelectionConfig::new(PolicyKind::ThompsonSampling, 0)
            .validate()
            .is_err());
        assert!(SelectionConfig::new(PolicyKind::ThompsonSampling, 3)
            .validate()
            .is_ok());
        let p = PolicyKind::Ucb1 { c: 2.0 }.build();
        assert_eq!(p.name(), "ucb1");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_reward_panics() {
        let mut p = Ucb1::new(1.0);
        p.update(0, f64::NAN);
    }

    #[test]
    fn mask_preserves_selected_rows_bit_for_bit() {
        let costs = CostMatrix::from_linear_rates(&[1.0, 2.0, 3.0], 6, 50.0, &[0.5, 0.2, 0.1]);
        let masked = mask_costs(&costs, &[true, false, true]);
        for k in 0..=6 {
            assert_eq!(masked.cost(0, k), costs.cost(0, k));
            assert_eq!(masked.cost(2, k), costs.cost(2, k));
        }
        assert!(masked.cost(1, 1) >= 1e6, "unselected rows take the penalty");
    }

    #[test]
    fn bandit_scheduler_starves_unselected_users() {
        // k = 2 of 4: every schedule must leave at least two users idle.
        let sched = BanditScheduler::new(Box::new(FedLbap), Box::new(Ucb1::new(1.0)), 2, 99);
        let costs = CostMatrix::from_linear_rates(&[1.0, 1.1, 1.2, 1.3], 40, 50.0, &[0.1; 4]);
        for _ in 0..6 {
            let s = sched.schedule(&costs).expect("feasible");
            let selected = sched.last_selected();
            assert_eq!(selected.len(), 2);
            assert_eq!(s.total_shards(), 40);
            for (j, &shards) in s.shards.iter().enumerate() {
                if !selected.contains(&j) {
                    assert_eq!(shards, 0, "unselected user {j} must stay idle");
                }
            }
            for &j in &selected {
                sched.reward(j, 1.0 / (1.0 + j as f64));
            }
        }
        // With rewards favouring low indices, greedy pressure should
        // eventually settle on arms 0 and 1.
        let final_sel = sched.last_selected();
        assert!(final_sel.iter().all(|&j| j < 4));
    }

    #[test]
    fn maybe_seeded_resolves() {
        assert_eq!(MaybeSeeded::inherit().resolve(7), 7);
        assert_eq!(MaybeSeeded::pinned(3).resolve(7), 3);
    }
}
