//! Long-running orchestration service for fedsched experiments.
//!
//! Everything below leans on one property of the simulators: they are
//! seed-deterministic with byte-stable telemetry. That turns crash
//! recovery into a pure-computation problem — a snapshot is just the
//! [`JobRequest`] (spec + schedule + round budget) plus the number of
//! completed rounds, and restoring means rebuilding the simulator from
//! the spec and replaying that many rounds. The replayed job is
//! bit-identical to one that never crashed: same round digests, same
//! telemetry bytes. The `resume_identity` test suite pins this at
//! engine pool widths 1, 4, and 8.
//!
//! Layers, bottom-up:
//!
//! * [`job`] — the serializable job documents: [`JobRequest`] (what to
//!   run), [`Snapshot`] (where a run got to), [`JobStatus`].
//! * [`store`] — [`StateStore`] persistence behind snapshots, with an
//!   in-memory implementation for tests and a directory-backed one for
//!   the `fedsched-serve` binary.
//! * [`supervisor`] — the actor runtime: one worker thread per job
//!   owning its simulator, a typed-command mailbox, panic isolation
//!   (a panicking round is caught, the simulator rebuilt by replay,
//!   and the round retried once), and an experiment cache keyed by the
//!   request fingerprint so identical submissions share one job.
//! * [`http`] — a hand-rolled HTTP/1.1 + JSON front end over
//!   `std::net::TcpListener`. No async runtime: connections are short
//!   (`Connection: close`) and handled thread-per-connection, which is
//!   plenty for an experiment-orchestration control plane.
//!
//! Every configuration error crosses the wire untranslated: the HTTP
//! error body carries the same `cause_code` string that
//! [`fedsched_fl::ConfigError`] reports in-process.

pub mod http;
pub mod job;
pub mod store;
pub mod supervisor;

pub use http::Server;
pub use job::{JobRequest, JobStatus, Snapshot};
pub use store::{DirStore, MemoryStore, StateStore};
pub use supervisor::{AdvanceReply, JobInfo, Supervisor, SupervisorError};
