//! Serializable job documents.
//!
//! A [`JobRequest`] is everything needed to (re)run an experiment:
//! the [`JobSpec`], the per-device [`Schedule`], and the total round
//! budget. A [`Snapshot`] is a request plus a completed-round count;
//! because the simulators are deterministic, that pair reconstructs
//! the exact mid-run state by replay. Both documents use the same
//! canonical JSON discipline as the spec layer: fixed field order,
//! strict decoding (unknown fields are errors), and a version tag.

use fedsched_core::json::{self, JsonValue};
use fedsched_core::Schedule;
use fedsched_fl::spec::{schedule_from_json, schedule_to_json};
use fedsched_fl::{ConfigError, JobSpec};

/// Version tag for the job-request and snapshot wire documents.
pub const JOB_DOC_VERSION: u64 = 1;

fn bad(problem: impl Into<String>) -> ConfigError {
    ConfigError::InvalidSpec(problem.into())
}

fn expect_fields(v: &JsonValue, allowed: &[&str]) -> Result<(), ConfigError> {
    if let JsonValue::Obj(fields) = v {
        for (key, _) in fields {
            if !allowed.contains(&key.as_str()) {
                return Err(bad(format!("unknown field `{key}`")));
            }
        }
    }
    Ok(())
}

/// A complete, serializable description of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// What to build (target, devices, knobs).
    pub spec: JobSpec,
    /// The per-device shard assignment every round uses.
    pub schedule: Schedule,
    /// Total rounds the job runs before it is `Done`.
    pub rounds_total: usize,
}

impl JobRequest {
    /// Canonical JSON document: `{"version":1,"spec":..,"schedule":..,
    /// "rounds_total":..}` with fields in exactly that order.
    pub fn to_json(&self) -> JsonValue {
        json::obj(vec![
            ("version", json::num(JOB_DOC_VERSION as f64)),
            ("spec", self.spec.to_json()),
            ("schedule", schedule_to_json(&self.schedule)),
            ("rounds_total", json::num(self.rounds_total as f64)),
        ])
    }

    /// The canonical encoding as a string; input to [`JobRequest::fingerprint`].
    pub fn canonical_json(&self) -> String {
        self.to_json().encode()
    }

    /// Strict decode; unknown fields and version mismatches are
    /// [`ConfigError::InvalidSpec`].
    pub fn from_json(v: &JsonValue) -> Result<Self, ConfigError> {
        expect_fields(v, &["version", "spec", "schedule", "rounds_total"])?;
        let version = v
            .get("version")
            .and_then(|x| x.as_u64().ok())
            .ok_or_else(|| bad("job request is missing `version`"))?;
        if version != JOB_DOC_VERSION {
            return Err(bad(format!(
                "unsupported job document version {version} (this build speaks {JOB_DOC_VERSION})"
            )));
        }
        let spec = JobSpec::from_json(
            v.get("spec")
                .ok_or_else(|| bad("job request is missing `spec`"))?,
        )?;
        let schedule = schedule_from_json(
            v.get("schedule")
                .ok_or_else(|| bad("job request is missing `schedule`"))?,
        )?;
        let rounds_total = v
            .get("rounds_total")
            .and_then(|x| x.as_usize().ok())
            .ok_or_else(|| bad("job request needs an integer `rounds_total`"))?;
        if rounds_total == 0 {
            return Err(bad("`rounds_total` must be at least 1"));
        }
        if schedule.shards.len() != spec.devices.n_devices()? {
            return Err(bad(format!(
                "schedule covers {} devices but the spec builds {}",
                schedule.shards.len(),
                spec.devices.n_devices()?
            )));
        }
        Ok(JobRequest {
            spec,
            schedule,
            rounds_total,
        })
    }

    /// Parse a request from raw JSON text.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let v =
            JsonValue::parse(text).map_err(|e| bad(format!("malformed JSON: {}", e.message)))?;
        Self::from_json(&v)
    }

    /// FNV-1a 64 fingerprint of the canonical encoding. Two requests
    /// collide exactly when they describe the same experiment; the
    /// supervisor's cache and job IDs key on this.
    pub fn fingerprint(&self) -> u64 {
        json::fnv1a64(self.canonical_json().as_bytes())
    }

    /// The job ID this request maps to: `"j"` + 16 hex digits of the
    /// fingerprint.
    pub fn job_id(&self) -> String {
        format!("j{:016x}", self.fingerprint())
    }
}

/// A persisted resume point: the request plus how far it got.
///
/// Restore rebuilds the simulator from `request.spec` and replays
/// `completed_rounds` rounds; determinism makes the result bit-identical
/// to the pre-crash state, telemetry included.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// ID of the job this snapshot belongs to.
    pub job_id: String,
    /// Rounds already executed when the snapshot was taken.
    pub completed_rounds: usize,
    /// The full job description; sufficient to replay.
    pub request: JobRequest,
}

impl Snapshot {
    /// Canonical JSON document.
    pub fn to_json(&self) -> JsonValue {
        json::obj(vec![
            ("version", json::num(JOB_DOC_VERSION as f64)),
            ("job_id", json::str(&self.job_id)),
            ("completed_rounds", json::num(self.completed_rounds as f64)),
            ("request", self.request.to_json()),
        ])
    }

    /// The canonical encoding as a string (what the store persists).
    pub fn canonical_json(&self) -> String {
        self.to_json().encode()
    }

    /// Strict decode of a persisted snapshot.
    pub fn from_json(v: &JsonValue) -> Result<Self, ConfigError> {
        expect_fields(v, &["version", "job_id", "completed_rounds", "request"])?;
        let version = v
            .get("version")
            .and_then(|x| x.as_u64().ok())
            .ok_or_else(|| bad("snapshot is missing `version`"))?;
        if version != JOB_DOC_VERSION {
            return Err(bad(format!(
                "unsupported snapshot version {version} (this build speaks {JOB_DOC_VERSION})"
            )));
        }
        let job_id = v
            .get("job_id")
            .and_then(|x| x.as_str().ok())
            .ok_or_else(|| bad("snapshot is missing `job_id`"))?
            .to_string();
        let completed_rounds = v
            .get("completed_rounds")
            .and_then(|x| x.as_usize().ok())
            .ok_or_else(|| bad("snapshot needs an integer `completed_rounds`"))?;
        let request = JobRequest::from_json(
            v.get("request")
                .ok_or_else(|| bad("snapshot is missing `request`"))?,
        )?;
        if completed_rounds > request.rounds_total {
            return Err(bad(format!(
                "snapshot claims {completed_rounds} completed rounds of {}",
                request.rounds_total
            )));
        }
        if job_id != request.job_id() {
            return Err(bad(format!(
                "snapshot job_id `{job_id}` does not match the request fingerprint `{}`",
                request.job_id()
            )));
        }
        Ok(Snapshot {
            job_id,
            completed_rounds,
            request,
        })
    }

    /// Parse a snapshot from raw JSON text.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let v =
            JsonValue::parse(text).map_err(|e| bad(format!("malformed JSON: {}", e.message)))?;
        Self::from_json(&v)
    }
}

/// Lifecycle of a supervised job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Rounds remain and the worker is healthy.
    Running,
    /// All `rounds_total` rounds have executed.
    Done,
    /// A round panicked twice in a row (once live, once after a
    /// restore-and-retry); the job is parked and no longer advances.
    Failed,
}

impl JobStatus {
    /// Stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_fl::spec::BuildTarget;
    use fedsched_fl::{DeviceSetSpec, JobSpec};

    fn request() -> JobRequest {
        let spec = JobSpec::new(
            BuildTarget::Engine,
            DeviceSetSpec::Testbed { preset: 1, seed: 7 },
            fedsched_device::TrainingWorkload::lenet(),
            fedsched_net::Link::wifi_campus(),
            2.5e6,
            7,
        );
        JobRequest {
            spec,
            schedule: Schedule::new(vec![8; 3], 100.0),
            rounds_total: 4,
        }
    }

    #[test]
    fn request_round_trips_and_is_canonical() {
        let req = request();
        let text = req.canonical_json();
        let back = JobRequest::parse(&text).unwrap();
        assert_eq!(back, req);
        assert_eq!(
            back.canonical_json(),
            text,
            "canonical form is a fixed point"
        );
        assert_eq!(back.fingerprint(), req.fingerprint());
        assert!(req.job_id().starts_with('j'));
        assert_eq!(req.job_id().len(), 17);
    }

    #[test]
    fn request_rejects_garbage() {
        let req = request();
        let err = |t: &str| JobRequest::parse(t).unwrap_err().cause_code();

        assert_eq!(err("not json"), "invalid_spec");
        assert_eq!(
            err(&req.canonical_json().replace("rounds_total", "round_total")),
            "invalid_spec"
        );
        assert_eq!(
            err(&req
                .canonical_json()
                .replace("\"version\":1", "\"version\":9")),
            "invalid_spec"
        );
        // Schedule arity must match the device set (3 devices in preset 1).
        let mut short = request();
        short.schedule = Schedule::new(vec![8; 2], 100.0);
        assert_eq!(err(&short.canonical_json()), "invalid_spec");
        // A zero round budget never makes sense.
        let mut zero = request();
        zero.rounds_total = 0;
        assert_eq!(err(&zero.canonical_json()), "invalid_spec");
    }

    #[test]
    fn snapshot_round_trips_and_validates() {
        let req = request();
        let snap = Snapshot {
            job_id: req.job_id(),
            completed_rounds: 2,
            request: req.clone(),
        };
        let back = Snapshot::parse(&snap.canonical_json()).unwrap();
        assert_eq!(back, snap);

        let mut wrong_id = snap.clone();
        wrong_id.job_id = "j0000000000000000".to_string();
        assert_eq!(
            Snapshot::parse(&wrong_id.canonical_json())
                .unwrap_err()
                .cause_code(),
            "invalid_spec"
        );

        let mut too_far = snap;
        too_far.completed_rounds = 99;
        assert_eq!(
            Snapshot::parse(&too_far.canonical_json())
                .unwrap_err()
                .cause_code(),
            "invalid_spec"
        );
    }

    #[test]
    fn distinct_requests_get_distinct_ids() {
        let a = request();
        let mut b = request();
        b.rounds_total = 5;
        assert_ne!(a.job_id(), b.job_id());
        let mut c = request();
        c.spec.seed = 8;
        assert_ne!(a.job_id(), c.job_id());
    }
}
