//! Hand-rolled HTTP/1.1 + JSON front end over `std::net`.
//!
//! The service is an experiment-orchestration control plane, not a data
//! plane: requests are small, responses are small (telemetry is the one
//! exception and is still bounded), and connections are one-shot
//! (`Connection: close`). A blocking accept loop with one thread per
//! connection covers that comfortably with zero dependencies.
//!
//! Routes (all JSON unless noted):
//!
//! | Method & path                  | Meaning                                     |
//! |--------------------------------|---------------------------------------------|
//! | `POST /jobs`                   | Submit a [`JobRequest`]; cached by fingerprint |
//! | `GET /jobs`                    | List all jobs                               |
//! | `GET /jobs/:id`                | One job's status                            |
//! | `POST /jobs/:id/advance`       | Run up to `{"rounds":k}` rounds (default 1) |
//! | `GET /jobs/:id/telemetry`      | JSONL event stream; `?from=N` tails         |
//! | `POST /jobs/:id/snapshot`      | Persist and return a resume point           |
//! | `POST /jobs/:id/crash`         | Test hook: `{"mode":"panic"|"die"}`         |
//! | `DELETE /jobs/:id`             | Stop the worker, drop job and state         |
//! | `GET /healthz`                 | Liveness probe                              |
//!
//! Errors use one body shape everywhere:
//! `{"error":{"cause":"<code>","message":"..."}}`, where `cause` for
//! config problems is the exact in-process
//! [`ConfigError::cause_code`](fedsched_fl::ConfigError::cause_code)
//! string — the wire never renames an error.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread;

use fedsched_core::json::{self, JsonValue};

use crate::job::JobRequest;
use crate::supervisor::{AdvanceReply, CrashMode, JobInfo, Supervisor, SupervisorError};

/// Maximum accepted request-body size; a [`JobRequest`] is a few KB.
const MAX_BODY: usize = 1 << 20;

/// A bound, not-yet-serving HTTP server.
pub struct Server {
    listener: TcpListener,
    supervisor: Arc<Supervisor>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) over `supervisor`.
    pub fn bind(addr: impl ToSocketAddrs, supervisor: Arc<Supervisor>) -> io::Result<Self> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            supervisor,
        })
    }

    /// The bound address (reports the real port after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept connections forever, one handler thread per connection.
    /// Per-connection I/O errors are swallowed: a client that hangs up
    /// mid-request must not take the service down.
    pub fn serve_forever(&self) -> io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            let supervisor = self.supervisor.clone();
            thread::spawn(move || {
                let _ = handle_connection(stream, &supervisor);
            });
        }
    }

    /// Move the accept loop onto a background thread (for tests and
    /// embedded use).
    pub fn spawn(self) -> thread::JoinHandle<()> {
        thread::spawn(move || {
            let _ = self.serve_forever();
        })
    }
}

struct Request {
    method: String,
    /// Path with the query string split off.
    path: String,
    /// Decoded `?key=value` pairs, in order.
    query: Vec<(String, String)>,
    body: String,
}

struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn json(status: u16, v: &JsonValue) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: v.encode(),
        }
    }

    fn error(status: u16, cause: &str, message: &str) -> Self {
        Self::json(
            status,
            &json::obj(vec![(
                "error",
                json::obj(vec![
                    ("cause", json::str(cause)),
                    ("message", json::str(message)),
                ]),
            )]),
        )
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        _ => "Internal Server Error",
    }
}

fn handle_connection(stream: TcpStream, supervisor: &Supervisor) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let response = match read_request(&mut reader) {
        Ok(request) => route(&request, supervisor),
        Err(bad) => bad,
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        response.body
    )?;
    stream.flush()
}

/// Parse one request off the wire; malformed input becomes a ready-made
/// 400/413 response.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, Response> {
    let io_err = |_| Response::error(400, "bad_request", "connection error mid-request");
    let mut line = String::new();
    reader.read_line(&mut line).map_err(io_err)?;
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m.to_string(), t.to_string()),
        _ => {
            return Err(Response::error(
                400,
                "bad_request",
                "malformed HTTP request line",
            ))
        }
    };

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(io_err)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| Response::error(400, "bad_request", "bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(Response::error(
            413,
            "bad_request",
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(io_err)?;
    let body = String::from_utf8(body)
        .map_err(|_| Response::error(400, "bad_request", "request body is not UTF-8"))?;

    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.clone(), ""),
    };
    let query = query_text
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();

    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn supervisor_error(e: SupervisorError) -> Response {
    match e {
        SupervisorError::NotFound(id) => {
            Response::error(404, "not_found", &format!("no job `{id}`"))
        }
        SupervisorError::Config(cfg) => Response::error(400, cfg.cause_code(), &format!("{cfg}")),
        SupervisorError::Io(io) => {
            Response::error(500, "io_error", &format!("state store error: {io}"))
        }
        SupervisorError::JobFailed(why) => Response::error(409, "job_failed", &why),
    }
}

fn info_json(info: &JobInfo) -> JsonValue {
    json::obj(vec![
        ("job_id", json::str(&info.job_id)),
        ("status", json::str(info.status.name())),
        ("completed_rounds", json::num(info.completed_rounds as f64)),
        ("rounds_total", json::num(info.rounds_total as f64)),
        ("restarts", json::num(info.restarts as f64)),
        ("telemetry_events", json::num(info.telemetry_events as f64)),
    ])
}

fn advance_json(reply: &AdvanceReply) -> JsonValue {
    let mut fields = vec![
        ("executed", json::num(reply.executed as f64)),
        ("completed_rounds", json::num(reply.completed_rounds as f64)),
        ("status", json::str(reply.status.name())),
    ];
    if let Some(makespan) = reply.last_makespan_s {
        fields.push(("last_makespan_s", json::num(makespan)));
    }
    json::obj(fields)
}

fn route(request: &Request, supervisor: &Supervisor) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            Response::json(200, &json::obj(vec![("ok", JsonValue::Bool(true))]))
        }

        ("POST", ["jobs"]) => match JobRequest::parse(&request.body) {
            Ok(job_request) => match supervisor.create_job(job_request) {
                Ok((info, cached)) => Response::json(
                    if cached { 200 } else { 201 },
                    &json::obj(vec![
                        ("job", info_json(&info)),
                        ("cached", JsonValue::Bool(cached)),
                    ]),
                ),
                Err(e) => supervisor_error(e),
            },
            Err(cfg) => Response::error(400, cfg.cause_code(), &format!("{cfg}")),
        },

        ("GET", ["jobs"]) => {
            let jobs: Vec<JsonValue> = supervisor.list().iter().map(info_json).collect();
            Response::json(200, &json::obj(vec![("jobs", JsonValue::Arr(jobs))]))
        }

        ("GET", ["jobs", id]) => match supervisor.info(id) {
            Ok(info) => Response::json(200, &info_json(&info)),
            Err(e) => supervisor_error(e),
        },

        ("POST", ["jobs", id, "advance"]) => {
            let rounds = if request.body.trim().is_empty() {
                Ok(1)
            } else {
                JsonValue::parse(&request.body)
                    .ok()
                    .and_then(|v| v.get("rounds").and_then(|x| x.as_usize().ok()))
                    .ok_or(())
            };
            match rounds {
                Ok(rounds) => match supervisor.advance(id, rounds) {
                    Ok(reply) => Response::json(200, &advance_json(&reply)),
                    Err(e) => supervisor_error(e),
                },
                Err(()) => Response::error(
                    400,
                    "bad_request",
                    "advance body must be `{\"rounds\": <positive integer>}` or empty",
                ),
            }
        }

        ("GET", ["jobs", id, "telemetry"]) => {
            let from = request
                .query
                .iter()
                .find(|(k, _)| k == "from")
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or(0usize);
            match supervisor.telemetry(id, from) {
                Ok(jsonl) => Response {
                    status: 200,
                    content_type: "application/x-ndjson",
                    body: jsonl,
                },
                Err(e) => supervisor_error(e),
            }
        }

        ("POST", ["jobs", id, "snapshot"]) => match supervisor.snapshot(id) {
            Ok(snapshot) => Response::json(200, &snapshot.to_json()),
            Err(e) => supervisor_error(e),
        },

        ("POST", ["jobs", id, "crash"]) => {
            let mode = JsonValue::parse(&request.body).ok().and_then(|v| {
                v.get("mode")
                    .and_then(|m| m.as_str().ok().map(String::from))
            });
            let mode = match mode.as_deref() {
                None | Some("panic") => CrashMode::Panic,
                Some("die") => CrashMode::Die,
                Some(other) => {
                    return Response::error(
                        400,
                        "bad_request",
                        &format!("unknown crash mode `{other}` (want `panic` or `die`)"),
                    )
                }
            };
            match supervisor.inject_crash(id, mode) {
                Ok(()) => Response::json(200, &json::obj(vec![("ok", JsonValue::Bool(true))])),
                Err(e) => supervisor_error(e),
            }
        }

        ("DELETE", ["jobs", id]) => match supervisor.delete(id) {
            Ok(()) => Response::json(200, &json::obj(vec![("deleted", json::str(*id))])),
            Err(e) => supervisor_error(e),
        },

        (_, ["jobs", ..]) | (_, ["healthz"]) => {
            Response::error(405, "bad_request", "method not allowed on this path")
        }
        _ => Response::error(404, "not_found", "no such route"),
    }
}
