//! Snapshot persistence behind the supervisor.
//!
//! A store maps job IDs to snapshot documents (canonical JSON text,
//! see [`crate::job::Snapshot`]). The supervisor treats the store as a
//! dumb blob map; all validation happens at decode time. Two
//! implementations: [`MemoryStore`] for tests and embedded use, and
//! [`DirStore`] for the `fedsched-serve` binary, which survives
//! process kills — the e2e smoke test SIGKILLs the server and restores
//! every job from this directory.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A persistent job-ID → snapshot-document map.
pub trait StateStore: Send + Sync {
    /// Persist (create or replace) the document for `job_id`.
    fn put(&self, job_id: &str, doc: &str) -> io::Result<()>;
    /// Fetch the document for `job_id`, if present.
    fn get(&self, job_id: &str) -> io::Result<Option<String>>;
    /// Remove the document for `job_id`; removing an absent ID is a no-op.
    fn delete(&self, job_id: &str) -> io::Result<()>;
    /// All stored job IDs, sorted, so restore order is deterministic.
    fn list(&self) -> io::Result<Vec<String>>;
}

/// In-memory store; contents die with the process.
#[derive(Default)]
pub struct MemoryStore {
    docs: Mutex<BTreeMap<String, String>>,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StateStore for MemoryStore {
    fn put(&self, job_id: &str, doc: &str) -> io::Result<()> {
        self.docs
            .lock()
            .unwrap()
            .insert(job_id.to_string(), doc.to_string());
        Ok(())
    }

    fn get(&self, job_id: &str) -> io::Result<Option<String>> {
        Ok(self.docs.lock().unwrap().get(job_id).cloned())
    }

    fn delete(&self, job_id: &str) -> io::Result<()> {
        self.docs.lock().unwrap().remove(job_id);
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.docs.lock().unwrap().keys().cloned().collect())
    }
}

/// Directory-backed store: one `<job_id>.json` file per job.
///
/// Writes go through a temp file in the same directory followed by a
/// rename, so a kill mid-write leaves either the old document or the
/// new one, never a torn file.
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(DirStore {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    fn path_for(&self, job_id: &str) -> io::Result<PathBuf> {
        // Job IDs are `j` + 16 hex digits; refuse anything that could
        // escape the store directory.
        if job_id.is_empty() || !job_id.chars().all(|c| c.is_ascii_alphanumeric()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("malformed job id `{job_id}`"),
            ));
        }
        Ok(self.dir.join(format!("{job_id}.json")))
    }
}

impl StateStore for DirStore {
    fn put(&self, job_id: &str, doc: &str) -> io::Result<()> {
        let path = self.path_for(job_id)?;
        let tmp = self.dir.join(format!(".{job_id}.tmp"));
        fs::write(&tmp, doc)?;
        fs::rename(&tmp, &path)
    }

    fn get(&self, job_id: &str) -> io::Result<Option<String>> {
        match fs::read_to_string(self.path_for(job_id)?) {
            Ok(doc) => Ok(Some(doc)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn delete(&self, job_id: &str) -> io::Result<()> {
        match fs::remove_file(self.path_for(job_id)?) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name.strip_suffix(".json") {
                if !id.starts_with('.') {
                    ids.push(id.to_string());
                }
            }
        }
        ids.sort();
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn StateStore) {
        assert!(store.list().unwrap().is_empty());
        store.put("jaaaa", "doc-a").unwrap();
        store.put("jbbbb", "doc-b").unwrap();
        assert_eq!(store.get("jaaaa").unwrap().as_deref(), Some("doc-a"));
        assert_eq!(store.get("jzzzz").unwrap(), None);
        store.put("jaaaa", "doc-a2").unwrap();
        assert_eq!(store.get("jaaaa").unwrap().as_deref(), Some("doc-a2"));
        assert_eq!(store.list().unwrap(), vec!["jaaaa", "jbbbb"]);
        store.delete("jaaaa").unwrap();
        store.delete("jaaaa").unwrap(); // idempotent
        assert_eq!(store.list().unwrap(), vec!["jbbbb"]);
    }

    #[test]
    fn memory_store_contract() {
        exercise(&MemoryStore::new());
    }

    #[test]
    fn dir_store_contract() {
        let dir = std::env::temp_dir().join(format!("fedsched-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = DirStore::open(&dir).unwrap();
        exercise(&store);

        // Contents survive reopening (a fresh process would see this).
        let reopened = DirStore::open(&dir).unwrap();
        assert_eq!(reopened.get("jbbbb").unwrap().as_deref(), Some("doc-b"));

        // Path traversal is refused rather than resolved.
        assert!(store.put("../escape", "x").is_err());
        assert!(store.get("").is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
