//! The actor runtime: one worker thread per job.
//!
//! Each job's simulator lives on exactly one worker thread; the rest of
//! the service talks to it through a typed-command mailbox. That gives
//! three properties the HTTP front end leans on:
//!
//! * **Serialization for free** — concurrent advance requests for one
//!   job queue in the mailbox and execute in order; the simulator never
//!   needs interior locking.
//! * **Panic isolation** — a round executes inside `catch_unwind`. A
//!   panicking round poisons nothing outside its own worker: the worker
//!   discards the torn simulator, rebuilds a fresh one from the spec,
//!   replays the completed rounds (determinism makes the replay
//!   bit-identical, telemetry included), and retries the round once.
//!   A round that panics again after a clean replay is a deterministic
//!   bug in the experiment, and the job parks as `Failed`.
//! * **Crash recovery** — a worker thread that died outright (or a
//!   whole process that was killed and restarted over the same state
//!   store) is respawned through the same rebuild-by-replay path, from
//!   the in-memory progress count or a persisted [`Snapshot`].
//!
//! The supervisor also acts as the experiment cache: job IDs are the
//! request fingerprint, so re-submitting an identical [`JobRequest`]
//! returns the existing job instead of spawning a duplicate.

use std::collections::HashMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use fedsched_fl::spec::RoundDigest;
use fedsched_fl::{BuiltSim, ConfigError};
use fedsched_telemetry::{EventLog, Probe};

use crate::job::{JobRequest, JobStatus, Snapshot};
use crate::store::StateStore;

/// Why a supervisor call failed.
#[derive(Debug)]
pub enum SupervisorError {
    /// No job with the given ID.
    NotFound(String),
    /// The request or spec was rejected; carries the in-process error
    /// verbatim so `cause_code` survives to the wire.
    Config(ConfigError),
    /// The state store failed.
    Io(io::Error),
    /// The job is parked as `Failed` (a round panicked deterministically).
    JobFailed(String),
}

impl std::fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupervisorError::NotFound(id) => write!(f, "no job `{id}`"),
            SupervisorError::Config(e) => write!(f, "{e}"),
            SupervisorError::Io(e) => write!(f, "state store error: {e}"),
            SupervisorError::JobFailed(why) => write!(f, "job failed: {why}"),
        }
    }
}

impl From<ConfigError> for SupervisorError {
    fn from(e: ConfigError) -> Self {
        SupervisorError::Config(e)
    }
}

impl From<io::Error> for SupervisorError {
    fn from(e: io::Error) -> Self {
        SupervisorError::Io(e)
    }
}

/// How the test-only crash hook should take the worker down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Poison the worker so its next round panics (exercises in-worker
    /// catch-and-replay recovery).
    Panic,
    /// Make the worker thread exit immediately, dropping its mailbox
    /// and simulator (exercises supervisor-level respawn).
    Die,
}

/// What one advance call accomplished.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvanceReply {
    /// Rounds actually executed by this call (0 when already done).
    pub executed: usize,
    /// Total rounds completed over the job's lifetime.
    pub completed_rounds: usize,
    /// Job status after the call.
    pub status: JobStatus,
    /// Makespan of the last executed round, if any were executed.
    pub last_makespan_s: Option<f64>,
}

/// A point-in-time public view of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobInfo {
    /// The job's ID (request fingerprint).
    pub job_id: String,
    /// Lifecycle state.
    pub status: JobStatus,
    /// Rounds completed so far.
    pub completed_rounds: usize,
    /// The job's round budget.
    pub rounds_total: usize,
    /// Recoveries performed (panic replays + worker respawns).
    pub restarts: usize,
    /// Telemetry events recorded so far.
    pub telemetry_events: usize,
}

/// Progress state shared between the worker and the front end.
struct Progress {
    completed_rounds: usize,
    digests: Vec<RoundDigest>,
    status: JobStatus,
    restarts: usize,
    /// Human-readable reason when `status == Failed`.
    failure: Option<String>,
}

/// Everything about a job except the simulator itself (which is owned
/// by the worker thread).
struct JobShared {
    job_id: String,
    request: JobRequest,
    /// The job's telemetry stream. The simulator's probe points here;
    /// rebuilds replay into it under the progress lock.
    log: Arc<EventLog>,
    progress: Mutex<Progress>,
}

impl JobShared {
    /// Rebuild the simulator from the spec and replay every completed
    /// round into a clean telemetry log. Holds the progress lock for
    /// the whole replay so readers never observe a half-replayed log.
    fn rebuild(&self) -> Result<BuiltSim, ConfigError> {
        let mut progress = self.progress.lock().unwrap();
        self.log.take();
        let mut sim = self.request.spec.build(Probe::attached(self.log.clone()))?;
        let mut digests = Vec::with_capacity(progress.completed_rounds);
        for _ in 0..progress.completed_rounds {
            digests.push(sim.step(&self.request.schedule));
        }
        progress.digests = digests;
        Ok(sim)
    }

    fn info(&self) -> JobInfo {
        let progress = self.progress.lock().unwrap();
        JobInfo {
            job_id: self.job_id.clone(),
            status: progress.status,
            completed_rounds: progress.completed_rounds,
            rounds_total: self.request.rounds_total,
            restarts: progress.restarts,
            telemetry_events: self.log.len(),
        }
    }

    /// JSONL telemetry from event index `from` onward. Taken under the
    /// progress lock so a concurrent rebuild can't expose a
    /// half-replayed log.
    fn telemetry_from(&self, from: usize) -> String {
        let _progress = self.progress.lock().unwrap();
        self.log.to_jsonl_from(from)
    }
}

/// Commands a worker accepts through its mailbox.
enum Command {
    Advance {
        rounds: usize,
        reply: mpsc::Sender<Result<AdvanceReply, String>>,
    },
    Crash {
        mode: CrashMode,
        reply: mpsc::Sender<()>,
    },
    Stop,
}

struct JobHandle {
    shared: Arc<JobShared>,
    /// Mailbox sender; the mutex doubles as the per-job operation lock
    /// so a dead worker is respawned exactly once.
    tx: Mutex<mpsc::Sender<Command>>,
}

/// The service core: owns every job, its worker, and the state store.
pub struct Supervisor {
    jobs: Mutex<HashMap<String, Arc<JobHandle>>>,
    store: Arc<dyn StateStore>,
}

impl Supervisor {
    /// A supervisor over the given snapshot store. Call
    /// [`Supervisor::restore_all`] afterwards to adopt persisted jobs.
    pub fn new(store: Arc<dyn StateStore>) -> Self {
        Supervisor {
            jobs: Mutex::new(HashMap::new()),
            store,
        }
    }

    /// Submit a job. Returns `(info, cached)`; `cached` is true when an
    /// identical request (same fingerprint) was already running, in
    /// which case the existing job is returned untouched. New jobs are
    /// validated eagerly — a bad spec is reported here, not at first
    /// advance — and persisted to the store at round zero.
    pub fn create_job(&self, request: JobRequest) -> Result<(JobInfo, bool), SupervisorError> {
        let job_id = request.job_id();
        {
            let jobs = self.jobs.lock().unwrap();
            if let Some(handle) = jobs.get(&job_id) {
                return Ok((handle.shared.info(), true));
            }
        }
        // Validate before spawning anything: build once and discard.
        request.spec.build(Probe::disabled())?;
        let snapshot = Snapshot {
            job_id: job_id.clone(),
            completed_rounds: 0,
            request: request.clone(),
        };
        self.store.put(&job_id, &snapshot.canonical_json())?;
        let handle = self.adopt(request, 0);
        Ok((handle.shared.info(), false))
    }

    /// Adopt every decodable snapshot in the store as a live job,
    /// replaying each to its recorded round. Returns the adopted IDs;
    /// undecodable documents are skipped and reported alongside.
    pub fn restore_all(&self) -> io::Result<(Vec<String>, Vec<String>)> {
        let mut adopted = Vec::new();
        let mut skipped = Vec::new();
        for id in self.store.list()? {
            if self.jobs.lock().unwrap().contains_key(&id) {
                continue;
            }
            let Some(doc) = self.store.get(&id)? else {
                continue;
            };
            match Snapshot::parse(&doc) {
                Ok(snap) if snap.job_id == id => {
                    self.adopt(snap.request, snap.completed_rounds);
                    adopted.push(id);
                }
                _ => skipped.push(id),
            }
        }
        Ok((adopted, skipped))
    }

    /// Register a job at `completed_rounds` and spawn its worker (which
    /// replays up to that round before serving commands).
    fn adopt(&self, request: JobRequest, completed_rounds: usize) -> Arc<JobHandle> {
        let job_id = request.job_id();
        let status = if completed_rounds >= request.rounds_total {
            JobStatus::Done
        } else {
            JobStatus::Running
        };
        let shared = Arc::new(JobShared {
            job_id: job_id.clone(),
            request,
            log: Arc::new(EventLog::new()),
            progress: Mutex::new(Progress {
                completed_rounds,
                digests: Vec::new(),
                status,
                restarts: 0,
                failure: None,
            }),
        });
        let tx = spawn_worker(shared.clone());
        let handle = Arc::new(JobHandle {
            shared,
            tx: Mutex::new(tx),
        });
        self.jobs.lock().unwrap().insert(job_id, handle.clone());
        handle
    }

    fn handle(&self, job_id: &str) -> Result<Arc<JobHandle>, SupervisorError> {
        self.jobs
            .lock()
            .unwrap()
            .get(job_id)
            .cloned()
            .ok_or_else(|| SupervisorError::NotFound(job_id.to_string()))
    }

    /// Advance a job by up to `rounds` rounds (clamped to the remaining
    /// budget). If the worker thread has died, it is respawned through
    /// replay and the call retried once — callers never see a dead
    /// worker as an error.
    pub fn advance(&self, job_id: &str, rounds: usize) -> Result<AdvanceReply, SupervisorError> {
        let handle = self.handle(job_id)?;
        let mut tx = handle.tx.lock().unwrap();
        for attempt in 0..2 {
            let (reply_tx, reply_rx) = mpsc::channel();
            let sent = tx
                .send(Command::Advance {
                    rounds,
                    reply: reply_tx,
                })
                .is_ok();
            if sent {
                match reply_rx.recv() {
                    Ok(Ok(reply)) => return Ok(reply),
                    Ok(Err(why)) => return Err(SupervisorError::JobFailed(why)),
                    Err(_) => {} // worker died mid-command; fall through
                }
            }
            if attempt == 0 {
                handle.shared.progress.lock().unwrap().restarts += 1;
                *tx = spawn_worker(handle.shared.clone());
            }
        }
        Err(SupervisorError::JobFailed(
            "worker did not survive a respawn".to_string(),
        ))
    }

    /// Point-in-time view of one job.
    pub fn info(&self, job_id: &str) -> Result<JobInfo, SupervisorError> {
        Ok(self.handle(job_id)?.shared.info())
    }

    /// All jobs, sorted by ID.
    pub fn list(&self) -> Vec<JobInfo> {
        let jobs = self.jobs.lock().unwrap();
        let mut infos: Vec<JobInfo> = jobs.values().map(|h| h.shared.info()).collect();
        infos.sort_by(|a, b| a.job_id.cmp(&b.job_id));
        infos
    }

    /// The job's round digests up to now (replay-stable).
    pub fn digests(&self, job_id: &str) -> Result<Vec<RoundDigest>, SupervisorError> {
        let handle = self.handle(job_id)?;
        let progress = handle.shared.progress.lock().unwrap();
        Ok(progress.digests.clone())
    }

    /// JSONL telemetry from event index `from` onward.
    pub fn telemetry(&self, job_id: &str, from: usize) -> Result<String, SupervisorError> {
        Ok(self.handle(job_id)?.shared.telemetry_from(from))
    }

    /// Persist the job's current progress as a [`Snapshot`] and return it.
    pub fn snapshot(&self, job_id: &str) -> Result<Snapshot, SupervisorError> {
        let handle = self.handle(job_id)?;
        let completed_rounds = handle.shared.progress.lock().unwrap().completed_rounds;
        let snapshot = Snapshot {
            job_id: job_id.to_string(),
            completed_rounds,
            request: handle.shared.request.clone(),
        };
        self.store.put(job_id, &snapshot.canonical_json())?;
        Ok(snapshot)
    }

    /// Stop a job's worker and remove the job and its persisted state.
    pub fn delete(&self, job_id: &str) -> Result<(), SupervisorError> {
        let handle = {
            let mut jobs = self.jobs.lock().unwrap();
            jobs.remove(job_id)
                .ok_or_else(|| SupervisorError::NotFound(job_id.to_string()))?
        };
        let _ = handle.tx.lock().unwrap().send(Command::Stop);
        self.store.delete(job_id)?;
        Ok(())
    }

    /// Test-only crash hook: take the job's worker down in the given
    /// way. The next advance exercises the corresponding recovery path.
    pub fn inject_crash(&self, job_id: &str, mode: CrashMode) -> Result<(), SupervisorError> {
        let handle = self.handle(job_id)?;
        let tx = handle.tx.lock().unwrap();
        let (reply_tx, reply_rx) = mpsc::channel();
        if tx
            .send(Command::Crash {
                mode,
                reply: reply_tx,
            })
            .is_ok()
        {
            let _ = reply_rx.recv();
        }
        Ok(())
    }
}

/// Spawn a worker for `shared`: rebuild-and-replay to the recorded
/// round, then serve mailbox commands until `Stop` or channel close.
fn spawn_worker(shared: Arc<JobShared>) -> mpsc::Sender<Command> {
    let (tx, rx) = mpsc::channel::<Command>();
    thread::spawn(move || {
        let mut sim = match shared.rebuild() {
            Ok(sim) => sim,
            Err(e) => {
                let mut progress = shared.progress.lock().unwrap();
                progress.status = JobStatus::Failed;
                progress.failure = Some(format!("rebuild failed: {e}"));
                // Drain the mailbox reporting failure so callers get an
                // answer instead of a dropped reply channel.
                for cmd in rx {
                    match cmd {
                        Command::Advance { reply, .. } => {
                            let _ = reply.send(Err(format!("rebuild failed: {e}")));
                        }
                        Command::Crash { reply, .. } => {
                            let _ = reply.send(());
                        }
                        Command::Stop => return,
                    }
                }
                return;
            }
        };
        let mut poisoned = false;
        for cmd in rx {
            match cmd {
                Command::Stop => return,
                Command::Crash { mode, reply } => match mode {
                    CrashMode::Panic => {
                        poisoned = true;
                        let _ = reply.send(());
                    }
                    CrashMode::Die => {
                        let _ = reply.send(());
                        return;
                    }
                },
                Command::Advance { rounds, reply } => {
                    let result = advance_rounds(&shared, &mut sim, rounds, &mut poisoned);
                    let _ = reply.send(result);
                }
            }
        }
    });
    tx
}

/// Execute up to `rounds` rounds on the worker thread, recovering from
/// at most one panic per round via rebuild-and-replay.
fn advance_rounds(
    shared: &JobShared,
    sim: &mut BuiltSim,
    rounds: usize,
    poisoned: &mut bool,
) -> Result<AdvanceReply, String> {
    {
        let progress = shared.progress.lock().unwrap();
        if progress.status == JobStatus::Failed {
            return Err(progress
                .failure
                .clone()
                .unwrap_or_else(|| "job is failed".to_string()));
        }
    }
    let mut executed = 0usize;
    let mut last_makespan = None;
    let mut retried_round = None;
    loop {
        let (completed, total) = {
            let progress = shared.progress.lock().unwrap();
            (progress.completed_rounds, shared.request.rounds_total)
        };
        if executed >= rounds || completed >= total {
            break;
        }
        let step = catch_unwind(AssertUnwindSafe(|| {
            if *poisoned {
                *poisoned = false;
                panic!("injected test crash");
            }
            sim.step(&shared.request.schedule)
        }));
        match step {
            Ok(digest) => {
                executed += 1;
                last_makespan = Some(digest.makespan_s);
                let mut progress = shared.progress.lock().unwrap();
                progress.completed_rounds += 1;
                progress.digests.push(digest);
                if progress.completed_rounds >= shared.request.rounds_total {
                    progress.status = JobStatus::Done;
                }
            }
            Err(_) => {
                if retried_round == Some(completed) {
                    let why =
                        format!("round {completed} panicked twice (once after a clean replay)");
                    let mut progress = shared.progress.lock().unwrap();
                    progress.status = JobStatus::Failed;
                    progress.failure = Some(why.clone());
                    return Err(why);
                }
                retried_round = Some(completed);
                match shared.rebuild() {
                    Ok(fresh) => {
                        *sim = fresh;
                        shared.progress.lock().unwrap().restarts += 1;
                    }
                    Err(e) => {
                        let why = format!("rebuild after panic failed: {e}");
                        let mut progress = shared.progress.lock().unwrap();
                        progress.status = JobStatus::Failed;
                        progress.failure = Some(why.clone());
                        return Err(why);
                    }
                }
            }
        }
    }
    let progress = shared.progress.lock().unwrap();
    Ok(AdvanceReply {
        executed,
        completed_rounds: progress.completed_rounds,
        status: progress.status,
        last_makespan_s: last_makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;
    use fedsched_core::Schedule;
    use fedsched_device::TrainingWorkload;
    use fedsched_fl::spec::BuildTarget;
    use fedsched_fl::{DeviceSetSpec, JobSpec};
    use fedsched_net::Link;

    fn request(seed: u64, rounds_total: usize) -> JobRequest {
        let mut spec = JobSpec::new(
            BuildTarget::Engine,
            DeviceSetSpec::Testbed { preset: 2, seed },
            TrainingWorkload::lenet(),
            Link::wifi_campus(),
            2.5e6,
            seed,
        );
        spec.cohort_size = Some(3);
        spec.threads = Some(2);
        JobRequest {
            spec,
            schedule: Schedule::new(vec![6; 6], 100.0),
            rounds_total,
        }
    }

    fn supervisor() -> Supervisor {
        Supervisor::new(Arc::new(MemoryStore::new()))
    }

    /// Drive a request straight through with no crashes and return the
    /// final (digest-debug, telemetry) pair — the recovery tests'
    /// reference output.
    fn uninterrupted(request: &JobRequest) -> (String, String) {
        let sup = supervisor();
        let (info, _) = sup.create_job(request.clone()).unwrap();
        sup.advance(&info.job_id, request.rounds_total).unwrap();
        (
            format!("{:?}", sup.digests(&info.job_id).unwrap()),
            sup.telemetry(&info.job_id, 0).unwrap(),
        )
    }

    #[test]
    fn jobs_run_to_completion_and_cache_by_fingerprint() {
        let sup = supervisor();
        let req = request(11, 3);
        let (info, cached) = sup.create_job(req.clone()).unwrap();
        assert!(!cached);
        assert_eq!(info.status, JobStatus::Running);

        // Identical request: cache hit, same job, nothing spawned.
        let (again, cached) = sup.create_job(req.clone()).unwrap();
        assert!(cached);
        assert_eq!(again.job_id, info.job_id);

        let reply = sup.advance(&info.job_id, 2).unwrap();
        assert_eq!(reply.executed, 2);
        assert_eq!(reply.status, JobStatus::Running);
        let reply = sup.advance(&info.job_id, 99).unwrap();
        assert_eq!(reply.executed, 1, "advance clamps to the round budget");
        assert_eq!(reply.status, JobStatus::Done);
        let reply = sup.advance(&info.job_id, 1).unwrap();
        assert_eq!(reply.executed, 0);

        let info = sup.info(&info.job_id).unwrap();
        assert_eq!(info.completed_rounds, 3);
        assert_eq!(info.restarts, 0);
        assert!(info.telemetry_events > 0);
        assert_eq!(sup.digests(&info.job_id).unwrap().len(), 3);
    }

    #[test]
    fn bad_specs_are_rejected_at_creation_with_their_cause_code() {
        let sup = supervisor();
        let mut req = request(11, 3);
        req.spec.cohort_size = Some(0);
        match sup.create_job(req).unwrap_err() {
            SupervisorError::Config(e) => assert_eq!(e.cause_code(), "zero_cohort_size"),
            other => panic!("expected Config error, got {other:?}"),
        }
        assert!(
            sup.list().is_empty(),
            "rejected jobs must not be registered"
        );
    }

    #[test]
    fn panic_recovery_is_bit_identical_to_an_uninterrupted_run() {
        let req = request(23, 4);
        let reference = uninterrupted(&req);

        let sup = supervisor();
        let (info, _) = sup.create_job(req.clone()).unwrap();
        sup.advance(&info.job_id, 2).unwrap();
        sup.inject_crash(&info.job_id, CrashMode::Panic).unwrap();
        let reply = sup.advance(&info.job_id, 2).unwrap();
        assert_eq!(reply.status, JobStatus::Done);
        let info = sup.info(&info.job_id).unwrap();
        assert_eq!(info.restarts, 1, "the panic must have triggered one replay");

        let recovered = (
            format!("{:?}", sup.digests(&info.job_id).unwrap()),
            sup.telemetry(&info.job_id, 0).unwrap(),
        );
        assert_eq!(recovered, reference);
    }

    #[test]
    fn dead_worker_is_respawned_and_stays_bit_identical() {
        let req = request(31, 4);
        let reference = uninterrupted(&req);

        let sup = supervisor();
        let (info, _) = sup.create_job(req.clone()).unwrap();
        sup.advance(&info.job_id, 3).unwrap();
        sup.inject_crash(&info.job_id, CrashMode::Die).unwrap();
        let reply = sup.advance(&info.job_id, 1).unwrap();
        assert_eq!(reply.status, JobStatus::Done);
        let info = sup.info(&info.job_id).unwrap();
        assert_eq!(info.restarts, 1, "the dead worker must have been respawned");

        let recovered = (
            format!("{:?}", sup.digests(&info.job_id).unwrap()),
            sup.telemetry(&info.job_id, 0).unwrap(),
        );
        assert_eq!(recovered, reference);
    }

    #[test]
    fn snapshot_restore_across_supervisors_is_bit_identical() {
        let req = request(47, 5);
        let reference = uninterrupted(&req);

        // First "process": run 2 rounds, snapshot, drop the supervisor.
        let store: Arc<dyn StateStore> = Arc::new(MemoryStore::new());
        let job_id = {
            let sup = Supervisor::new(store.clone());
            let (info, _) = sup.create_job(req.clone()).unwrap();
            sup.advance(&info.job_id, 2).unwrap();
            let snap = sup.snapshot(&info.job_id).unwrap();
            assert_eq!(snap.completed_rounds, 2);
            info.job_id
        };

        // Second "process": restore from the store and finish the job.
        let sup = Supervisor::new(store);
        let (adopted, skipped) = sup.restore_all().unwrap();
        assert_eq!(adopted, vec![job_id.clone()]);
        assert!(skipped.is_empty());
        let info = sup.info(&job_id).unwrap();
        assert_eq!(info.completed_rounds, 2);
        let reply = sup.advance(&job_id, 99).unwrap();
        assert_eq!(reply.status, JobStatus::Done);

        let recovered = (
            format!("{:?}", sup.digests(&job_id).unwrap()),
            sup.telemetry(&job_id, 0).unwrap(),
        );
        assert_eq!(recovered, reference);
    }

    #[test]
    fn delete_removes_the_job_and_its_state() {
        let sup = supervisor();
        let (info, _) = sup.create_job(request(53, 2)).unwrap();
        sup.delete(&info.job_id).unwrap();
        assert!(matches!(
            sup.info(&info.job_id),
            Err(SupervisorError::NotFound(_))
        ));
        assert!(matches!(
            sup.delete(&info.job_id),
            Err(SupervisorError::NotFound(_))
        ));
        // The persisted snapshot is gone too: nothing restores.
        let (adopted, _) = sup.restore_all().unwrap();
        assert!(adopted.is_empty());
    }

    #[test]
    fn telemetry_tail_streams_only_the_new_suffix() {
        let sup = supervisor();
        let req = request(59, 3);
        let (info, _) = sup.create_job(req).unwrap();
        sup.advance(&info.job_id, 1).unwrap();
        let head = sup.telemetry(&info.job_id, 0).unwrap();
        let seen = head.lines().count();
        sup.advance(&info.job_id, 2).unwrap();
        let tail = sup.telemetry(&info.job_id, seen).unwrap();
        let full = sup.telemetry(&info.job_id, 0).unwrap();
        assert_eq!(format!("{head}{tail}"), full);
        assert!(!tail.is_empty());
    }
}
