//! The HTTP surface, end to end over a real TCP socket (in-process
//! server, raw `TcpStream` client — no HTTP library on either side).
//!
//! Beyond route coverage, the suite pins the API-redesign contract the
//! issue calls out: **error-code parity**. A spec rejected over HTTP
//! must carry the exact `cause_code` string the in-process
//! [`ConfigError`](fedsched_fl::ConfigError) produces — the wire never
//! renames an error.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use fedsched_core::json::JsonValue;
use fedsched_core::Schedule;
use fedsched_device::TrainingWorkload;
use fedsched_fl::spec::BuildTarget;
use fedsched_fl::{DeviceSetSpec, JobSpec};
use fedsched_net::Link;
use fedsched_serve::{JobRequest, MemoryStore, Server, Supervisor};

fn start_server() -> String {
    let supervisor = Arc::new(Supervisor::new(Arc::new(MemoryStore::new())));
    let server = Server::bind("127.0.0.1:0", supervisor).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    server.spawn();
    addr
}

/// One `Connection: close` request; returns (status, body).
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    (status, body.to_string())
}

fn parse(body: &str) -> JsonValue {
    JsonValue::parse(body).unwrap_or_else(|e| panic!("bad JSON body `{body}`: {}", e.message))
}

fn error_cause(body: &str) -> String {
    parse(body)
        .get("error")
        .and_then(|e| e.get("cause"))
        .and_then(|c| c.as_str().ok().map(String::from))
        .unwrap_or_else(|| panic!("no error.cause in `{body}`"))
}

fn request(seed: u64, rounds_total: usize) -> JobRequest {
    let mut spec = JobSpec::new(
        BuildTarget::Engine,
        DeviceSetSpec::Testbed { preset: 2, seed },
        TrainingWorkload::lenet(),
        Link::wifi_campus(),
        2.5e6,
        seed,
    );
    spec.cohort_size = Some(3);
    spec.threads = Some(2);
    JobRequest {
        spec,
        schedule: Schedule::new(vec![6; 6], 100.0),
        rounds_total,
    }
}

#[test]
fn job_lifecycle_over_http() {
    let addr = start_server();
    let req = request(71, 3);

    let (status, body) = http(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");

    // Create.
    let (status, body) = http(&addr, "POST", "/jobs", &req.canonical_json());
    assert_eq!(status, 201, "{body}");
    let doc = parse(&body);
    let job_id = doc
        .get("job")
        .and_then(|j| j.get("job_id"))
        .and_then(|v| v.as_str().ok().map(String::from))
        .unwrap();
    assert_eq!(job_id, req.job_id());
    assert!(!doc.get("cached").unwrap().as_bool().unwrap());

    // Identical resubmit: experiment cache hit, 200 not 201.
    let (status, body) = http(&addr, "POST", "/jobs", &req.canonical_json());
    assert_eq!(status, 200, "{body}");
    assert!(parse(&body).get("cached").unwrap().as_bool().unwrap());

    // Listing and status.
    let (status, body) = http(&addr, "GET", "/jobs", "");
    assert_eq!(status, 200);
    assert_eq!(parse(&body).get("jobs").unwrap().as_arr().unwrap().len(), 1);
    let (status, body) = http(&addr, "GET", &format!("/jobs/{job_id}"), "");
    assert_eq!(status, 200);
    assert_eq!(
        parse(&body).get("status").unwrap().as_str().unwrap(),
        "running"
    );

    // Advance 2 then the rest; empty body means one round.
    let (status, body) = http(
        &addr,
        "POST",
        &format!("/jobs/{job_id}/advance"),
        "{\"rounds\":2}",
    );
    assert_eq!(status, 200, "{body}");
    let reply = parse(&body);
    assert_eq!(reply.get("executed").unwrap().as_usize().unwrap(), 2);
    assert_eq!(reply.get("status").unwrap().as_str().unwrap(), "running");
    let (status, body) = http(&addr, "POST", &format!("/jobs/{job_id}/advance"), "");
    assert_eq!(status, 200);
    let reply = parse(&body);
    assert_eq!(reply.get("executed").unwrap().as_usize().unwrap(), 1);
    assert_eq!(reply.get("status").unwrap().as_str().unwrap(), "done");

    // Telemetry: full stream, and ?from= tails concatenate to it.
    let (status, full) = http(&addr, "GET", &format!("/jobs/{job_id}/telemetry"), "");
    assert_eq!(status, 200);
    assert!(!full.is_empty());
    let head_lines = 3;
    let head: String = full
        .lines()
        .take(head_lines)
        .map(|l| format!("{l}\n"))
        .collect();
    let (status, tail) = http(
        &addr,
        "GET",
        &format!("/jobs/{job_id}/telemetry?from={head_lines}"),
        "",
    );
    assert_eq!(status, 200);
    assert_eq!(format!("{head}{tail}"), full);

    // Snapshot returns the resume document.
    let (status, body) = http(&addr, "POST", &format!("/jobs/{job_id}/snapshot"), "");
    assert_eq!(status, 200, "{body}");
    let snap = parse(&body);
    assert_eq!(snap.get("completed_rounds").unwrap().as_usize().unwrap(), 3);
    assert_eq!(snap.get("job_id").unwrap().as_str().unwrap(), job_id);

    // Delete; the job is gone afterwards.
    let (status, _) = http(&addr, "DELETE", &format!("/jobs/{job_id}"), "");
    assert_eq!(status, 200);
    let (status, body) = http(&addr, "GET", &format!("/jobs/{job_id}"), "");
    assert_eq!(status, 404);
    assert_eq!(error_cause(&body), "not_found");
}

#[test]
fn crash_hook_recovers_bit_identical_over_http() {
    let addr = start_server();
    let req = request(73, 4);
    let (_, body) = http(&addr, "POST", "/jobs", &req.canonical_json());
    let job_id = req.job_id();
    assert!(body.contains(&job_id));

    // Uninterrupted twin on the same server (different seed field is NOT
    // used — different server instead, to keep fingerprints identical).
    let twin_addr = start_server();
    http(&twin_addr, "POST", "/jobs", &req.canonical_json());
    http(
        &twin_addr,
        "POST",
        &format!("/jobs/{job_id}/advance"),
        "{\"rounds\":4}",
    );
    let (_, reference) = http(&twin_addr, "GET", &format!("/jobs/{job_id}/telemetry"), "");

    http(
        &addr,
        "POST",
        &format!("/jobs/{job_id}/advance"),
        "{\"rounds\":2}",
    );
    let (status, _) = http(
        &addr,
        "POST",
        &format!("/jobs/{job_id}/crash"),
        "{\"mode\":\"panic\"}",
    );
    assert_eq!(status, 200);
    let (status, body) = http(
        &addr,
        "POST",
        &format!("/jobs/{job_id}/advance"),
        "{\"rounds\":2}",
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        parse(&body).get("status").unwrap().as_str().unwrap(),
        "done"
    );

    let (_, recovered) = http(&addr, "GET", &format!("/jobs/{job_id}/telemetry"), "");
    assert_eq!(recovered, reference);
    let (_, body) = http(&addr, "GET", &format!("/jobs/{job_id}"), "");
    assert_eq!(parse(&body).get("restarts").unwrap().as_usize().unwrap(), 1);
}

#[test]
fn http_error_causes_match_in_process_cause_codes() {
    let addr = start_server();

    // For each broken request: the HTTP cause must equal the in-process
    // cause_code for the same document, verbatim.
    let mut zero_cohort = request(79, 2);
    zero_cohort.spec.cohort_size = Some(0);
    let mut bad_deadline = request(83, 2);
    bad_deadline.spec.deadline = Some(fedsched_core::DeadlinePolicy::Fixed(-1.0));
    let mut threads_on_sim = request(89, 2);
    threads_on_sim.spec.target = BuildTarget::Sim;
    threads_on_sim.spec.cohort_size = None; // leave only the threads knob

    for req in [zero_cohort, bad_deadline, threads_on_sim] {
        let text = req.canonical_json();
        let in_process = req
            .spec
            .build(fedsched_telemetry::Probe::disabled())
            .err()
            .unwrap()
            .cause_code();
        let (status, body) = http(&addr, "POST", "/jobs", &text);
        assert_eq!(status, 400, "{body}");
        assert_eq!(error_cause(&body), in_process, "for body {text}");
    }

    // Malformed documents never reach the builder; they carry the
    // spec-decode cause.
    let (status, body) = http(&addr, "POST", "/jobs", "{\"version\":1}");
    assert_eq!(status, 400);
    assert_eq!(error_cause(&body), "invalid_spec");
    let (status, body) = http(&addr, "POST", "/jobs", "not json at all");
    assert_eq!(status, 400);
    assert_eq!(error_cause(&body), "invalid_spec");

    // Unknown spec fields fail loudly (strict decoding).
    let good = request(97, 2);
    let typod = good.canonical_json().replace("\"seed\"", "\"sead\"");
    let (status, body) = http(&addr, "POST", "/jobs", &typod);
    assert_eq!(status, 400);
    assert_eq!(error_cause(&body), "invalid_spec");
}

#[test]
fn unknown_routes_and_methods_are_typed_errors() {
    let addr = start_server();
    let (status, body) = http(&addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    assert_eq!(error_cause(&body), "not_found");
    let (status, body) = http(&addr, "PATCH", "/jobs/jx", "");
    assert_eq!(status, 405);
    assert_eq!(error_cause(&body), "bad_request");
    let (status, body) = http(&addr, "GET", "/jobs/junknown", "");
    assert_eq!(status, 404);
    assert_eq!(error_cause(&body), "not_found");
    let (status, body) = http(&addr, "POST", "/jobs/jx/advance", "{\"rounds\":\"xx\"}");
    // Unknown job is checked after body validation fails → bad_request.
    assert_eq!(status, 400);
    assert_eq!(error_cause(&body), "bad_request");
}
