//! Kill-and-resume bit-identity, pinned at engine pool widths 1, 4, 8.
//!
//! The service's crash-recovery story rests on one claim: a job that is
//! snapshotted at round `k`, loses its worker mid-run, and is restored
//! by replay finishes **bit-identical** to a job that was never
//! interrupted — same round digests (full `Debug` reports) and same
//! telemetry byte stream. Thread count is the classic way to break such
//! claims (the parallel engine splices per-cohort buffers), so every
//! scenario here runs at pool widths 1, 4, and 8.

use std::sync::Arc;

use fedsched_core::Schedule;
use fedsched_device::TrainingWorkload;
use fedsched_fl::spec::BuildTarget;
use fedsched_fl::{DeviceSetSpec, JobSpec};
use fedsched_net::Link;
use fedsched_serve::supervisor::CrashMode;
use fedsched_serve::{JobRequest, JobStatus, MemoryStore, StateStore, Supervisor};

const THREAD_WIDTHS: [usize; 3] = [1, 4, 8];
const ROUNDS_TOTAL: usize = 5;

/// An engine job over the 10-device preset 3 fleet: wide enough that 4
/// cohorts exist and thread-count actually changes the execution shape.
fn request(threads: usize) -> JobRequest {
    let mut spec = JobSpec::new(
        BuildTarget::Engine,
        DeviceSetSpec::Testbed {
            preset: 3,
            seed: 4047,
        },
        TrainingWorkload::lenet(),
        Link::wifi_campus(),
        2.5e6,
        4047,
    );
    spec.cohort_size = Some(3);
    spec.threads = Some(threads);
    JobRequest {
        spec,
        schedule: Schedule::new(vec![6; 10], 100.0),
        rounds_total: ROUNDS_TOTAL,
    }
}

/// Final (digests-debug, telemetry-jsonl, status) of a job under `sup`.
fn observe(sup: &Supervisor, job_id: &str) -> (String, String, JobStatus) {
    (
        format!("{:?}", sup.digests(job_id).unwrap()),
        sup.telemetry(job_id, 0).unwrap(),
        sup.info(job_id).unwrap().status,
    )
}

/// Run the request start-to-finish with no interruptions.
fn uninterrupted(req: &JobRequest) -> (String, String, JobStatus) {
    let sup = Supervisor::new(Arc::new(MemoryStore::new()));
    let (info, _) = sup.create_job(req.clone()).unwrap();
    sup.advance(&info.job_id, ROUNDS_TOTAL).unwrap();
    let out = observe(&sup, &info.job_id);
    assert_eq!(out.2, JobStatus::Done);
    assert!(!out.1.is_empty(), "engine jobs must emit telemetry");
    out
}

#[test]
fn panic_mid_job_replays_bit_identical_at_every_width() {
    for threads in THREAD_WIDTHS {
        let req = request(threads);
        let reference = uninterrupted(&req);

        let sup = Supervisor::new(Arc::new(MemoryStore::new()));
        let (info, _) = sup.create_job(req).unwrap();
        sup.advance(&info.job_id, 2).unwrap();
        sup.inject_crash(&info.job_id, CrashMode::Panic).unwrap();
        let reply = sup.advance(&info.job_id, ROUNDS_TOTAL).unwrap();
        assert_eq!(reply.status, JobStatus::Done);
        assert_eq!(
            sup.info(&info.job_id).unwrap().restarts,
            1,
            "threads={threads}: the panic must have forced one replay"
        );
        assert_eq!(
            observe(&sup, &info.job_id),
            reference,
            "threads={threads}: panic recovery diverged"
        );
    }
}

#[test]
fn dead_worker_respawn_is_bit_identical_at_every_width() {
    for threads in THREAD_WIDTHS {
        let req = request(threads);
        let reference = uninterrupted(&req);

        let sup = Supervisor::new(Arc::new(MemoryStore::new()));
        let (info, _) = sup.create_job(req).unwrap();
        sup.advance(&info.job_id, 3).unwrap();
        sup.inject_crash(&info.job_id, CrashMode::Die).unwrap();
        let reply = sup.advance(&info.job_id, ROUNDS_TOTAL).unwrap();
        assert_eq!(reply.status, JobStatus::Done);
        assert_eq!(
            observe(&sup, &info.job_id),
            reference,
            "threads={threads}: worker respawn diverged"
        );
    }
}

#[test]
fn snapshot_then_process_loss_restores_bit_identical_at_every_width() {
    for threads in THREAD_WIDTHS {
        let req = request(threads);
        let reference = uninterrupted(&req);

        // "Process one": run 2 of 5 rounds, snapshot, then drop the whole
        // supervisor (workers and in-memory telemetry die with it).
        let store: Arc<dyn StateStore> = Arc::new(MemoryStore::new());
        let job_id = {
            let sup = Supervisor::new(store.clone());
            let (info, _) = sup.create_job(req).unwrap();
            sup.advance(&info.job_id, 2).unwrap();
            let snap = sup.snapshot(&info.job_id).unwrap();
            assert_eq!(snap.completed_rounds, 2);
            info.job_id
        };

        // "Process two": restore from the store and finish.
        let sup = Supervisor::new(store);
        let (adopted, skipped) = sup.restore_all().unwrap();
        assert_eq!(adopted, vec![job_id.clone()], "threads={threads}");
        assert!(skipped.is_empty());
        let reply = sup.advance(&job_id, ROUNDS_TOTAL).unwrap();
        assert_eq!(reply.status, JobStatus::Done);
        assert_eq!(
            observe(&sup, &job_id),
            reference,
            "threads={threads}: snapshot restore diverged"
        );
    }
}

#[test]
fn resubmitting_after_restore_hits_the_cache_not_a_duplicate() {
    let req = request(4);
    let store: Arc<dyn StateStore> = Arc::new(MemoryStore::new());
    let job_id = {
        let sup = Supervisor::new(store.clone());
        let (info, _) = sup.create_job(req.clone()).unwrap();
        sup.advance(&info.job_id, 2).unwrap();
        sup.snapshot(&info.job_id).unwrap();
        info.job_id
    };
    let sup = Supervisor::new(store);
    sup.restore_all().unwrap();
    let (info, cached) = sup.create_job(req).unwrap();
    assert!(cached, "restored jobs must satisfy the experiment cache");
    assert_eq!(info.job_id, job_id);
    assert_eq!(info.completed_rounds, 2, "progress must be preserved");
}
