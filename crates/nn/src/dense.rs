//! Fully connected layer with SGD-momentum state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layer::Layer;

/// `y = W x + b`, weights row-major `[out_dim, in_dim]`.
#[derive(Debug, Clone)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    w: Vec<f32>,
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    vw: Vec<f32>,
    vb: Vec<f32>,
    input_cache: Vec<f32>,
}

impl Dense {
    /// Xavier-uniform initialized dense layer; deterministic per seed.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dense dims must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / (in_dim + out_dim) as f64).sqrt() as f32;
        let w = (0..in_dim * out_dim)
            .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * bound)
            .collect();
        Dense {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
            vw: vec![0.0; in_dim * out_dim],
            vb: vec![0.0; out_dim],
            input_cache: Vec::new(),
        }
    }
}

impl Layer for Dense {
    fn out_len(&self) -> usize {
        self.out_dim
    }

    fn in_len(&self) -> usize {
        self.in_dim
    }

    fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        debug_assert_eq!(input.len(), batch * self.in_dim);
        self.input_cache.clear();
        self.input_cache.extend_from_slice(input);
        let mut out = vec![0.0f32; batch * self.out_dim];
        for item in 0..batch {
            let x = &input[item * self.in_dim..(item + 1) * self.in_dim];
            let y = &mut out[item * self.out_dim..(item + 1) * self.out_dim];
            for (o, yo) in y.iter_mut().enumerate() {
                let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
                let mut acc = self.b[o];
                for (wv, xv) in row.iter().zip(x) {
                    acc += wv * xv;
                }
                *yo = acc;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32> {
        debug_assert_eq!(grad_out.len(), batch * self.out_dim);
        debug_assert_eq!(self.input_cache.len(), batch * self.in_dim);
        // Convention: the loss layer already folds the 1/batch mean into
        // grad_out, so parameter gradients sum raw per-item contributions.
        let mut grad_in = vec![0.0f32; batch * self.in_dim];
        for item in 0..batch {
            let g = &grad_out[item * self.out_dim..(item + 1) * self.out_dim];
            let x = &self.input_cache[item * self.in_dim..(item + 1) * self.in_dim];
            let gi = &mut grad_in[item * self.in_dim..(item + 1) * self.in_dim];
            for (o, &go) in g.iter().enumerate() {
                if go == 0.0 {
                    continue;
                }
                let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
                let grow = &mut self.gw[o * self.in_dim..(o + 1) * self.in_dim];
                self.gb[o] += go;
                for ((giv, wv), (gwv, xv)) in gi.iter_mut().zip(row).zip(grow.iter_mut().zip(x)) {
                    *giv += wv * go;
                    *gwv += go * xv;
                }
            }
        }
        grad_in
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn read_params(&self, out: &mut [f32]) -> usize {
        out[..self.w.len()].copy_from_slice(&self.w);
        out[self.w.len()..self.w.len() + self.b.len()].copy_from_slice(&self.b);
        self.param_count()
    }

    fn write_params(&mut self, input: &[f32]) -> usize {
        let nw = self.w.len();
        let nb = self.b.len();
        self.w.copy_from_slice(&input[..nw]);
        self.b.copy_from_slice(&input[nw..nw + nb]);
        self.param_count()
    }

    fn apply_grads(&mut self, lr: f32, momentum: f32) {
        for ((w, g), v) in self.w.iter_mut().zip(&mut self.gw).zip(&mut self.vw) {
            *v = momentum * *v + *g;
            *w -= lr * *v;
            *g = 0.0;
        }
        for ((b, g), v) in self.b.iter_mut().zip(&mut self.gb).zip(&mut self.vb) {
            *v = momentum * *v + *g;
            *b -= lr * *v;
            *g = 0.0;
        }
    }

    fn zero_grads(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of weight gradients on a tiny layer.
    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = Dense::new(3, 2, 1);
        let x = [0.5f32, -0.3, 0.8];
        // Loss = sum of outputs, so dL/dy = 1.
        let grad_out = [1.0f32, 1.0];

        layer.forward(&x, 1);
        layer.backward(&grad_out, 1);
        let mut analytic = vec![0.0f32; layer.param_count()];
        analytic[..layer.gw.len()].copy_from_slice(&layer.gw);
        analytic[layer.gw.len()..].copy_from_slice(&layer.gb);

        let mut params = vec![0.0f32; layer.param_count()];
        layer.read_params(&mut params);
        let eps = 1e-3f32;
        for p in 0..params.len() {
            let mut plus = params.clone();
            plus[p] += eps;
            let mut lp = layer.clone();
            lp.write_params(&plus);
            let yp: f32 = lp.forward(&x, 1).iter().sum();

            let mut minus = params.clone();
            minus[p] -= eps;
            let mut lm = layer.clone();
            lm.write_params(&minus);
            let ym: f32 = lm.forward(&x, 1).iter().sum();

            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - analytic[p]).abs() < 1e-2,
                "param {p}: fd {fd} vs analytic {}",
                analytic[p]
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut layer = Dense::new(3, 2, 2);
        let x = [0.1f32, 0.2, -0.5];
        let grad_out = [1.0f32, -1.0];
        layer.forward(&x, 1);
        let gin = layer.backward(&grad_out, 1);

        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let f = |xx: &[f32]| -> f32 {
                let mut l = layer.clone();
                let y = l.forward(xx, 1);
                y[0] - y[1]
            };
            let fd = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!(
                (fd - gin[i]).abs() < 1e-2,
                "input {i}: fd {fd} vs {}",
                gin[i]
            );
        }
    }

    #[test]
    fn sgd_step_reduces_simple_loss() {
        // Minimize ||y||^2 for fixed input: gradient descent on W, b.
        let mut layer = Dense::new(2, 2, 3);
        let x = [1.0f32, -1.0];
        let mut prev = f32::INFINITY;
        for _ in 0..50 {
            let y = layer.forward(&x, 1);
            let loss: f32 = y.iter().map(|v| v * v).sum();
            assert!(
                loss <= prev + 1e-4,
                "loss must not increase: {loss} > {prev}"
            );
            prev = loss;
            let grad: Vec<f32> = y.iter().map(|v| 2.0 * v).collect();
            layer.backward(&grad, 1);
            layer.apply_grads(0.1, 0.0);
        }
        assert!(prev < 1e-3, "final loss {prev}");
    }

    #[test]
    fn params_roundtrip() {
        let mut a = Dense::new(4, 3, 7);
        let mut buf = vec![0.0f32; a.param_count()];
        a.read_params(&mut buf);
        let mut b = Dense::new(4, 3, 99);
        b.write_params(&buf);
        let x = [0.3f32, 1.0, -0.2, 0.7];
        assert_eq!(a.forward(&x, 1), b.forward(&x, 1));
    }

    #[test]
    fn batch_forward_equals_stacked_singles() {
        let mut layer = Dense::new(3, 2, 5);
        let x = [0.1f32, 0.2, 0.3, -0.1, -0.2, -0.3];
        let batch = layer.forward(&x, 2);
        let first = layer.forward(&x[..3], 1);
        let second = layer.forward(&x[3..], 1);
        assert_eq!(&batch[..2], first.as_slice());
        assert_eq!(&batch[2..], second.as_slice());
    }

    #[test]
    fn momentum_accelerates_descent() {
        // Iterations until the loss falls below a threshold: moderate
        // momentum should need fewer than plain SGD on this quadratic.
        let iters_to_converge = |momentum: f32| -> usize {
            let mut layer = Dense::new(2, 1, 11);
            let x = [1.0f32, 1.0];
            for it in 0..500 {
                let y = layer.forward(&x, 1);
                if y[0] * y[0] < 1e-6 {
                    return it;
                }
                layer.backward(&[2.0 * y[0]], 1);
                layer.apply_grads(0.02, momentum);
            }
            500
        };
        assert!(iters_to_converge(0.5) < iters_to_converge(0.0));
    }
}
