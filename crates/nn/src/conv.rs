//! 2-D convolution (valid padding, stride 1) and 2x2 max pooling.

use fedsched_parallel::{parallel_for_slices, parallel_map};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layer::Layer;

/// 2-D convolution layer. Input `[batch, in_c, h, w]`, kernels
/// `[out_c, in_c, k, k]`, output `[batch, out_c, h-k+1, w-k+1]`.
///
/// Batch items are processed in parallel on scoped threads; gradients are
/// reduced in batch order so results are identical for any thread count.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    k: usize,
    threads: usize,
    kernel: Vec<f32>,
    bias: Vec<f32>,
    gk: Vec<f32>,
    gb: Vec<f32>,
    vk: Vec<f32>,
    vb: Vec<f32>,
    input_cache: Vec<f32>,
}

impl Conv2d {
    /// Xavier-initialized convolution; deterministic per seed.
    ///
    /// # Panics
    /// Panics if the kernel does not fit the input (`k > h` or `k > w`).
    pub fn new(
        in_c: usize,
        h: usize,
        w: usize,
        out_c: usize,
        k: usize,
        seed: u64,
        threads: usize,
    ) -> Self {
        assert!(
            k >= 1 && k <= h && k <= w,
            "kernel {k} does not fit input {h}x{w}"
        );
        assert!(in_c > 0 && out_c > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = in_c * k * k;
        let fan_out = out_c * k * k;
        let bound = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
        let kernel = (0..out_c * in_c * k * k)
            .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * bound)
            .collect();
        Conv2d {
            in_c,
            h,
            w,
            out_c,
            k,
            threads: threads.max(1),
            kernel,
            bias: vec![0.0; out_c],
            gk: vec![0.0; out_c * in_c * k * k],
            gb: vec![0.0; out_c],
            vk: vec![0.0; out_c * in_c * k * k],
            vb: vec![0.0; out_c],
            input_cache: Vec::new(),
        }
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        self.h - self.k + 1
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        self.w - self.k + 1
    }
}

impl Layer for Conv2d {
    fn out_len(&self) -> usize {
        self.out_c * self.out_h() * self.out_w()
    }

    fn in_len(&self) -> usize {
        self.in_c * self.h * self.w
    }

    fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        debug_assert_eq!(input.len(), batch * self.in_len());
        self.input_cache.clear();
        self.input_cache.extend_from_slice(input);

        let (oh, ow) = (self.out_h(), self.out_w());
        let (in_len, k) = (self.in_len(), self.k);
        let mut out = vec![0.0f32; batch * self.out_len()];
        let kernel = &self.kernel;
        let bias = &self.bias;
        let (in_c, h, w) = (self.in_c, self.h, self.w);
        parallel_for_slices(&mut out, batch, self.threads, |item, oslice| {
            let x = &input[item * in_len..(item + 1) * in_len];
            for oc in 0..self.out_c {
                let base_k = oc * in_c * k * k;
                let ochan = &mut oslice[oc * oh * ow..(oc + 1) * oh * ow];
                ochan.iter_mut().for_each(|v| *v = bias[oc]);
                for ic in 0..in_c {
                    let xchan = &x[ic * h * w..(ic + 1) * h * w];
                    let kk = &kernel[base_k + ic * k * k..base_k + (ic + 1) * k * k];
                    for dy in 0..k {
                        for dx in 0..k {
                            let kv = kk[dy * k + dx];
                            if kv == 0.0 {
                                continue;
                            }
                            for oy in 0..oh {
                                let xrow = &xchan[(oy + dy) * w + dx..(oy + dy) * w + dx + ow];
                                let orow = &mut ochan[oy * ow..(oy + 1) * ow];
                                for (o, &xv) in orow.iter_mut().zip(xrow) {
                                    *o += kv * xv;
                                }
                            }
                        }
                    }
                }
            }
        });
        out
    }

    fn backward(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32> {
        debug_assert_eq!(grad_out.len(), batch * self.out_len());
        let (oh, ow) = (self.out_h(), self.out_w());
        let (in_len, out_len, k) = (self.in_len(), self.out_len(), self.k);
        let (in_c, out_c, h, w) = (self.in_c, self.out_c, self.h, self.w);
        let kernel = &self.kernel;
        let input_cache = &self.input_cache;

        // Input gradients: each batch item writes its own slice.
        let mut grad_in = vec![0.0f32; batch * in_len];
        parallel_for_slices(&mut grad_in, batch, self.threads, |item, gslice| {
            let g = &grad_out[item * out_len..(item + 1) * out_len];
            for oc in 0..out_c {
                let gchan = &g[oc * oh * ow..(oc + 1) * oh * ow];
                let base_k = oc * in_c * k * k;
                for ic in 0..in_c {
                    let gx = &mut gslice[ic * h * w..(ic + 1) * h * w];
                    let kk = &kernel[base_k + ic * k * k..base_k + (ic + 1) * k * k];
                    for dy in 0..k {
                        for dx in 0..k {
                            let kv = kk[dy * k + dx];
                            if kv == 0.0 {
                                continue;
                            }
                            for oy in 0..oh {
                                let grow = &gchan[oy * ow..(oy + 1) * ow];
                                let xrow = &mut gx[(oy + dy) * w + dx..(oy + dy) * w + dx + ow];
                                for (xg, &gv) in xrow.iter_mut().zip(grow) {
                                    *xg += kv * gv;
                                }
                            }
                        }
                    }
                }
            }
        });

        // Parameter gradients: per-item partials reduced in batch order
        // (deterministic across thread counts).
        let partials = parallel_map(batch, self.threads, |item| {
            let g = &grad_out[item * out_len..(item + 1) * out_len];
            let x = &input_cache[item * in_len..(item + 1) * in_len];
            let mut pk = vec![0.0f32; out_c * in_c * k * k];
            let mut pb = vec![0.0f32; out_c];
            for oc in 0..out_c {
                let gchan = &g[oc * oh * ow..(oc + 1) * oh * ow];
                pb[oc] += gchan.iter().sum::<f32>();
                let base_k = oc * in_c * k * k;
                for ic in 0..in_c {
                    let xchan = &x[ic * h * w..(ic + 1) * h * w];
                    let pkk = &mut pk[base_k + ic * k * k..base_k + (ic + 1) * k * k];
                    for dy in 0..k {
                        for dx in 0..k {
                            let mut acc = 0.0f32;
                            for oy in 0..oh {
                                let grow = &gchan[oy * ow..(oy + 1) * ow];
                                let xrow = &xchan[(oy + dy) * w + dx..(oy + dy) * w + dx + ow];
                                for (&gv, &xv) in grow.iter().zip(xrow) {
                                    acc += gv * xv;
                                }
                            }
                            pkk[dy * k + dx] += acc;
                        }
                    }
                }
            }
            (pk, pb)
        });
        for (pk, pb) in partials {
            for (g, p) in self.gk.iter_mut().zip(&pk) {
                *g += p;
            }
            for (g, p) in self.gb.iter_mut().zip(&pb) {
                *g += p;
            }
        }
        grad_in
    }

    fn param_count(&self) -> usize {
        self.kernel.len() + self.bias.len()
    }

    fn read_params(&self, out: &mut [f32]) -> usize {
        out[..self.kernel.len()].copy_from_slice(&self.kernel);
        out[self.kernel.len()..self.kernel.len() + self.bias.len()].copy_from_slice(&self.bias);
        self.param_count()
    }

    fn write_params(&mut self, input: &[f32]) -> usize {
        let nk = self.kernel.len();
        let nb = self.bias.len();
        self.kernel.copy_from_slice(&input[..nk]);
        self.bias.copy_from_slice(&input[nk..nk + nb]);
        self.param_count()
    }

    fn apply_grads(&mut self, lr: f32, momentum: f32) {
        for ((p, g), v) in self.kernel.iter_mut().zip(&mut self.gk).zip(&mut self.vk) {
            *v = momentum * *v + *g;
            *p -= lr * *v;
            *g = 0.0;
        }
        for ((p, g), v) in self.bias.iter_mut().zip(&mut self.gb).zip(&mut self.vb) {
            *v = momentum * *v + *g;
            *p -= lr * *v;
            *g = 0.0;
        }
    }

    fn zero_grads(&mut self) {
        self.gk.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// 2x2 max pooling with stride 2. Odd trailing rows/columns are dropped
/// (floor semantics, matching common frameworks).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    c: usize,
    h: usize,
    w: usize,
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Pool over `[c, h, w]` inputs.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        assert!(h >= 2 && w >= 2, "pooling needs at least 2x2 input");
        MaxPool2d {
            c,
            h,
            w,
            argmax: Vec::new(),
        }
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        self.h / 2
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        self.w / 2
    }
}

impl Layer for MaxPool2d {
    fn out_len(&self) -> usize {
        self.c * self.out_h() * self.out_w()
    }

    fn in_len(&self) -> usize {
        self.c * self.h * self.w
    }

    fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        debug_assert_eq!(input.len(), batch * self.in_len());
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut out = vec![0.0f32; batch * self.out_len()];
        self.argmax = vec![0usize; batch * self.out_len()];
        for item in 0..batch {
            let x = &input[item * self.in_len()..(item + 1) * self.in_len()];
            for c in 0..self.c {
                let xc = &x[c * self.h * self.w..(c + 1) * self.h * self.w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = (oy * 2 + dy) * self.w + ox * 2 + dx;
                                if xc[idx] > best {
                                    best = xc[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = item * self.out_len() + c * oh * ow + oy * ow + ox;
                        out[o] = best;
                        self.argmax[o] = item * self.in_len() + c * self.h * self.w + best_idx;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32> {
        debug_assert_eq!(grad_out.len(), batch * self.out_len());
        let mut grad_in = vec![0.0f32; batch * self.in_len()];
        for (o, &g) in grad_out.iter().enumerate() {
            grad_in[self.argmax[o]] += g;
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_identity_kernel_passes_through() {
        // 1x1 kernel with weight 1: output equals input.
        let mut conv = Conv2d::new(1, 3, 3, 1, 1, 0, 1);
        conv.write_params(&[1.0, 0.0]); // kernel 1, bias 0
        let x: Vec<f32> = (0..9).map(|i| i as f32).collect();
        assert_eq!(conv.forward(&x, 1), x);
    }

    #[test]
    fn conv_known_3x3_result() {
        // 2x2 averaging kernel on a 3x3 image -> 2x2 output.
        let mut conv = Conv2d::new(1, 3, 3, 1, 2, 0, 1);
        conv.write_params(&[0.25, 0.25, 0.25, 0.25, 0.0]);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let y = conv.forward(&x, 1);
        assert_eq!(y, vec![3.0, 4.0, 6.0, 7.0]);
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut conv = Conv2d::new(2, 4, 4, 3, 3, 7, 1);
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.37).sin()).collect();
        conv.forward(&x, 1);
        let grad_out = vec![1.0f32; conv.out_len()];
        let gin = conv.backward(&grad_out, 1);
        let analytic_k = conv.gk.clone();

        let mut params = vec![0.0f32; conv.param_count()];
        conv.read_params(&mut params);
        let eps = 1e-2f32;
        // Check a spread of kernel parameters.
        for p in (0..conv.kernel.len()).step_by(7) {
            let eval = |delta: f32| -> f32 {
                let mut c = conv.clone();
                let mut pp = params.clone();
                pp[p] += delta;
                c.write_params(&pp);
                c.forward(&x, 1).iter().sum()
            };
            let fd = (eval(eps) - eval(-eps)) / (2.0 * eps);
            assert!(
                (fd - analytic_k[p]).abs() < 0.05,
                "kernel {p}: fd {fd} vs {}",
                analytic_k[p]
            );
        }
        // And a few input gradients.
        for i in (0..x.len()).step_by(5) {
            let eval = |delta: f32| -> f32 {
                let mut c = conv.clone();
                let mut xx = x.clone();
                xx[i] += delta;
                c.forward(&xx, 1).iter().sum()
            };
            let fd = (eval(eps) - eval(-eps)) / (2.0 * eps);
            assert!(
                (fd - gin[i]).abs() < 0.05,
                "input {i}: fd {fd} vs {}",
                gin[i]
            );
        }
    }

    #[test]
    fn conv_parallel_matches_sequential() {
        let x: Vec<f32> = (0..2 * 2 * 6 * 6)
            .map(|i| (i as f32 * 0.11).cos())
            .collect();
        let mut seq = Conv2d::new(2, 6, 6, 4, 3, 3, 1);
        let mut par = Conv2d::new(2, 6, 6, 4, 3, 3, 4);
        let ys = seq.forward(&x, 2);
        let yp = par.forward(&x, 2);
        assert_eq!(ys, yp);
        let g: Vec<f32> = ys.iter().map(|v| v * 0.5).collect();
        let gs = seq.backward(&g, 2);
        let gp = par.backward(&g, 2);
        assert_eq!(gs, gp);
        assert_eq!(seq.gk, par.gk);
    }

    #[test]
    fn pool_takes_block_maxima_and_routes_gradient() {
        let mut pool = MaxPool2d::new(1, 4, 4);
        #[rustfmt::skip]
        let x = vec![
            1.0, 2.0, 0.0, 0.0,
            3.0, 4.0, 0.0, 5.0,
            0.0, 0.0, 9.0, 0.0,
            0.0, 7.0, 0.0, 8.0,
        ];
        let y = pool.forward(&x, 1);
        assert_eq!(y, vec![4.0, 5.0, 7.0, 9.0]);
        let gin = pool.backward(&[1.0, 1.0, 1.0, 1.0], 1);
        let mut expect = vec![0.0f32; 16];
        expect[5] = 1.0; // 4.0
        expect[7] = 1.0; // 5.0
        expect[13] = 1.0; // 7.0
        expect[10] = 1.0; // 9.0
        assert_eq!(gin, expect);
    }

    #[test]
    fn pool_drops_odd_edges() {
        let mut pool = MaxPool2d::new(1, 5, 5);
        assert_eq!(pool.out_h(), 2);
        let x: Vec<f32> = (0..25).map(|i| i as f32).collect();
        let y = pool.forward(&x, 1);
        assert_eq!(y.len(), 4);
        assert_eq!(y, vec![6.0, 8.0, 16.0, 18.0]);
    }

    #[test]
    fn conv_params_roundtrip() {
        let conv = Conv2d::new(2, 5, 5, 3, 3, 1, 1);
        let mut buf = vec![0.0f32; conv.param_count()];
        conv.read_params(&mut buf);
        let mut other = Conv2d::new(2, 5, 5, 3, 3, 42, 1);
        other.write_params(&buf);
        let mut a = conv.clone();
        let mut b = other;
        let x: Vec<f32> = (0..50).map(|i| i as f32 * 0.1).collect();
        assert_eq!(a.forward(&x, 1), b.forward(&x, 1));
    }
}
