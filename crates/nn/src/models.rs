//! Model builders: LeNet, the paper's VGG6, and a cheap MLP.
//!
//! Simulation-scale note: the paper's wall-clock numbers come from DL4J on
//! phones; here the *device time* of the full-size models is produced by
//! `fedsched-device`, so these trainable replicas use reduced channel counts
//! to keep host-side experiment time reasonable while preserving the
//! architectures' structure (conv -> pool stacks, dense head).

use fedsched_parallel::recommended_threads;

use crate::conv::{Conv2d, MaxPool2d};
use crate::dense::Dense;
use crate::layer::{Flatten, Layer, Relu};
use crate::network::Network;

/// Which trainable model to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// LeNet-style conv net (two conv+pool stages).
    LeNet,
    /// The paper's tailored VGG6 (stacked 3x3 convs, one dense layer).
    Vgg6,
    /// A one-hidden-layer MLP — used at smoke scale where conv cost would
    /// dominate experiment runtime.
    Mlp,
}

impl ModelKind {
    /// Build the model for `(channels, height, width)` inputs, using the
    /// machine-recommended intra-model thread count.
    pub fn build(&self, dims: (usize, usize, usize), seed: u64) -> Network {
        self.build_with_threads(dims, seed, recommended_threads())
    }

    /// Build with an explicit intra-model thread count. The FL engine runs
    /// *clients* in parallel and passes 1 here to avoid oversubscription.
    pub fn build_with_threads(
        &self,
        dims: (usize, usize, usize),
        seed: u64,
        threads: usize,
    ) -> Network {
        match self {
            ModelKind::LeNet => lenet_with_threads(dims, seed, threads),
            ModelKind::Vgg6 => vgg6_with_threads(dims, seed, threads),
            ModelKind::Mlp => mlp(dims, seed),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::LeNet => "LeNet",
            ModelKind::Vgg6 => "VGG6",
            ModelKind::Mlp => "MLP",
        }
    }
}

/// LeNet-style network: conv5x5 -> pool -> conv5x5 -> pool -> dense head.
pub fn lenet(dims: (usize, usize, usize), seed: u64) -> Network {
    lenet_with_threads(dims, seed, recommended_threads())
}

/// [`lenet`] with an explicit intra-model thread count.
pub fn lenet_with_threads(dims: (usize, usize, usize), seed: u64, threads: usize) -> Network {
    let (c, h, w) = dims;
    let c1 = Conv2d::new(c, h, w, 6, 5, seed, threads);
    let (h1, w1) = (c1.out_h(), c1.out_w());
    let p1 = MaxPool2d::new(6, h1, w1);
    let (h1p, w1p) = (p1.out_h(), p1.out_w());
    let c2 = Conv2d::new(6, h1p, w1p, 12, 5, seed + 1, threads);
    let (h2, w2) = (c2.out_h(), c2.out_w());
    let p2 = MaxPool2d::new(12, h2, w2);
    let flat = 12 * p2.out_h() * p2.out_w();
    Network::new(
        vec![
            Box::new(c1),
            Box::new(Relu::new(6 * h1 * w1)),
            Box::new(p1),
            Box::new(c2),
            Box::new(Relu::new(12 * h2 * w2)),
            Box::new(p2),
            Box::new(Flatten::new(flat)),
            Box::new(Dense::new(flat, 64, seed + 2)),
            Box::new(Relu::new(64)),
            Box::new(Dense::new(64, 10, seed + 3)),
        ],
        10,
        0.05,
        0.9,
    )
}

/// The paper's VGG6 shape: five 3x3 conv layers (pooling after layers 2, 4
/// and 5) and one dense layer. Channel counts reduced for simulation speed.
pub fn vgg6(dims: (usize, usize, usize), seed: u64) -> Network {
    vgg6_with_threads(dims, seed, recommended_threads())
}

/// [`vgg6`] with an explicit intra-model thread count.
pub fn vgg6_with_threads(dims: (usize, usize, usize), seed: u64, threads: usize) -> Network {
    let (c, h, w) = dims;
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();

    let mut cur_c = c;
    let mut cur_h = h;
    let mut cur_w = w;
    let plan: [(usize, bool); 5] = [(8, false), (8, true), (16, false), (16, true), (24, true)];
    for (i, &(out_c, pool)) in plan.iter().enumerate() {
        let conv = Conv2d::new(cur_c, cur_h, cur_w, out_c, 3, seed + i as u64, threads);
        let (oh, ow) = (conv.out_h(), conv.out_w());
        layers.push(Box::new(conv));
        layers.push(Box::new(Relu::new(out_c * oh * ow)));
        cur_c = out_c;
        cur_h = oh;
        cur_w = ow;
        if pool {
            let p = MaxPool2d::new(cur_c, cur_h, cur_w);
            cur_h = p.out_h();
            cur_w = p.out_w();
            layers.push(Box::new(p));
        }
    }
    let flat = cur_c * cur_h * cur_w;
    layers.push(Box::new(Flatten::new(flat)));
    layers.push(Box::new(Dense::new(flat, 10, seed + 10)));
    Network::new(layers, 10, 0.03, 0.9)
}

/// One-hidden-layer MLP: `input -> 64 -> 10` (sized for smoke-scale runs
/// on modest CI hardware).
pub fn mlp(dims: (usize, usize, usize), seed: u64) -> Network {
    let (c, h, w) = dims;
    let input = c * h * w;
    Network::new(
        vec![
            Box::new(Dense::new(input, 64, seed)),
            Box::new(Relu::new(64)),
            Box::new(Dense::new(64, 10, seed + 1)),
        ],
        10,
        0.05,
        0.9,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_shapes_work_for_both_datasets() {
        for dims in [(1usize, 28usize, 28usize), (3, 32, 32)] {
            let mut net = lenet(dims, 1);
            assert_eq!(net.input_len(), dims.0 * dims.1 * dims.2);
            let x = vec![0.1f32; net.input_len() * 2];
            let logits = net.forward(&x, 2);
            assert_eq!(logits.len(), 20);
        }
    }

    #[test]
    fn vgg6_has_five_convs_and_one_dense() {
        // Indirect check through parameter structure: VGG6 on CIFAR dims
        // should run forward/backward and have more params than LeNet's
        // conv stages would alone.
        let mut net = vgg6((3, 32, 32), 2);
        let x = vec![0.05f32; net.input_len()];
        let y = net.forward(&x, 1);
        assert_eq!(y.len(), 10);
        assert!(net.param_count() > 5000);
    }

    #[test]
    fn mlp_trains_fast_on_toy_data() {
        let mut net = mlp((1, 4, 4), 3);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let class = i % 10;
            let mut f = vec![0.0f32; 16];
            f[class] = 2.0;
            x.extend_from_slice(&f);
            y.push(class);
        }
        for _ in 0..60 {
            net.train_batch(&x, &y);
        }
        assert!(net.accuracy(&x, &y) > 0.9);
    }

    #[test]
    fn model_kind_dispatch() {
        for kind in [ModelKind::LeNet, ModelKind::Vgg6, ModelKind::Mlp] {
            let net = kind.build((1, 28, 28), 7);
            assert_eq!(net.n_classes(), 10);
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn lenet_learns_synthetic_classes() {
        // End-to-end sanity: a few epochs on strongly-separated synthetic
        // patterns should beat chance easily.
        let mut net = lenet((1, 28, 28), 11);
        let n = 60;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let class = i % 10;
            let mut img = vec![0.0f32; 784];
            // A bright horizontal band whose row encodes the class.
            for col in 0..28 {
                img[(class * 2 + 4) * 28 + col] = 1.5;
            }
            // Mild deterministic noise.
            img[(i * 13) % 784] += 0.3;
            x.extend_from_slice(&img);
            y.push(class);
        }
        for _ in 0..30 {
            net.train_batch(&x, &y);
        }
        assert!(
            net.accuracy(&x, &y) > 0.8,
            "accuracy {}",
            net.accuracy(&x, &y)
        );
    }
}
