//! A from-scratch neural-network training library for the FL simulation.
//!
//! The paper trains LeNet and a tailored VGG6 with DL4J on the phones. The
//! Rust ML ecosystem has no mature training story, so this crate implements
//! exactly what the experiments need, and nothing more:
//!
//! * dense, 2-D convolution (valid padding, stride 1), 2x2 max-pooling,
//!   ReLU and flatten layers with full backpropagation ([`layer`],
//!   [`dense`], [`conv`]);
//! * softmax cross-entropy loss ([`loss`]);
//! * a sequential [`network::Network`] with SGD(+momentum), flat parameter
//!   get/set for FedAvg aggregation, and deterministic Xavier init;
//! * model builders ([`models`]): `lenet`, `vgg6` (channel-reduced for
//!   simulation speed; the *device-time* cost of the full-size models is
//!   handled by `fedsched-device`, not by running them here) and a cheap
//!   `mlp` for smoke-scale experiments.
//!
//! Batch-parallel kernels use `fedsched-parallel`'s scoped slice splitting:
//! each batch item owns a disjoint output slice, so there is no unsafe code
//! and results are bit-identical across thread counts (gradients are summed
//! in batch order).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod dense;
pub mod layer;
pub mod loss;
pub mod models;
pub mod network;

pub use conv::{Conv2d, MaxPool2d};
pub use dense::Dense;
pub use layer::{Flatten, Layer, Relu};
pub use loss::softmax_cross_entropy;
pub use models::{lenet, lenet_with_threads, mlp, vgg6, vgg6_with_threads, ModelKind};
pub use network::Network;
