//! A sequential network with SGD and flat-parameter access for FedAvg.

use crate::layer::Layer;
use crate::loss::{predictions, softmax_cross_entropy};

/// A sequential stack of layers trained with softmax cross-entropy.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    n_classes: usize,
    lr: f32,
    momentum: f32,
}

impl Network {
    /// Build from layers; validates that consecutive shapes agree and the
    /// final layer emits `n_classes` logits.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn new(layers: Vec<Box<dyn Layer>>, n_classes: usize, lr: f32, momentum: f32) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_len(),
                pair[1].in_len(),
                "layer shapes disagree: {} -> {}",
                pair[0].out_len(),
                pair[1].in_len()
            );
        }
        assert_eq!(
            layers.last().expect("non-empty").out_len(),
            n_classes,
            "final layer must emit n_classes logits"
        );
        Network {
            layers,
            n_classes,
            lr,
            momentum,
        }
    }

    /// Input length per sample.
    pub fn input_len(&self) -> usize {
        self.layers[0].in_len()
    }

    /// Number of output classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Override the learning rate.
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Forward pass producing logits (`[batch, n_classes]`).
    pub fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(
            input.len(),
            batch * self.input_len(),
            "input shape mismatch"
        );
        let mut x = input.to_vec();
        for layer in &mut self.layers {
            x = layer.forward(&x, batch);
        }
        x
    }

    /// One SGD step over a mini-batch; returns the mean loss.
    pub fn train_batch(&mut self, input: &[f32], labels: &[usize]) -> f32 {
        let batch = labels.len();
        let logits = self.forward(input, batch);
        let (loss, mut grad) = softmax_cross_entropy(&logits, labels, self.n_classes);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad, batch);
        }
        for layer in &mut self.layers {
            layer.apply_grads(self.lr, self.momentum);
        }
        loss
    }

    /// Accumulate gradients over a mini-batch *without* applying them
    /// (used for gradient-divergence analysis); returns the mean loss.
    pub fn accumulate_batch(&mut self, input: &[f32], labels: &[usize]) -> f32 {
        let batch = labels.len();
        let logits = self.forward(input, batch);
        let (loss, mut grad) = softmax_cross_entropy(&logits, labels, self.n_classes);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad, batch);
        }
        loss
    }

    /// Apply whatever gradients are accumulated, then clear them.
    pub fn step(&mut self) {
        for layer in &mut self.layers {
            layer.apply_grads(self.lr, self.momentum);
        }
    }

    /// Discard accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Class predictions for a batch.
    pub fn predict(&mut self, input: &[f32], batch: usize) -> Vec<usize> {
        let logits = self.forward(input, batch);
        predictions(&logits, self.n_classes)
    }

    /// Accuracy over a labelled batch.
    pub fn accuracy(&mut self, input: &[f32], labels: &[usize]) -> f64 {
        if labels.is_empty() {
            return 0.0;
        }
        let preds = self.predict(input, labels.len());
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        correct as f64 / labels.len() as f64
    }

    /// Snapshot all parameters into one flat vector (FedAvg upload).
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.param_count()];
        let mut cursor = 0;
        for layer in &self.layers {
            cursor += layer.read_params(&mut out[cursor..cursor + layer.param_count()]);
        }
        debug_assert_eq!(cursor, out.len());
        out
    }

    /// Load all parameters from a flat vector (FedAvg download).
    ///
    /// # Panics
    /// Panics if the length differs from [`Network::param_count`].
    pub fn set_flat_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.param_count(),
            "flat parameter length mismatch"
        );
        let mut cursor = 0;
        for layer in &mut self.layers {
            cursor += layer.write_params(&params[cursor..cursor + layer.param_count()]);
        }
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("layers", &self.layers.len())
            .field("params", &self.param_count())
            .field("n_classes", &self.n_classes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::layer::Relu;

    fn tiny_net(seed: u64) -> Network {
        Network::new(
            vec![
                Box::new(Dense::new(4, 8, seed)),
                Box::new(Relu::new(8)),
                Box::new(Dense::new(8, 3, seed + 1)),
            ],
            3,
            0.1,
            0.0,
        )
    }

    /// A linearly separable 3-class toy problem.
    fn toy_data(n: usize) -> (Vec<f32>, Vec<usize>) {
        let mut x = Vec::with_capacity(n * 4);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 3;
            let noise = ((i * 37) % 11) as f32 / 50.0;
            let mut f = [noise; 4];
            f[class] += 1.5;
            x.extend_from_slice(&f);
            y.push(class);
        }
        (x, y)
    }

    #[test]
    fn training_converges_on_separable_data() {
        let mut net = tiny_net(1);
        let (x, y) = toy_data(60);
        let mut final_loss = f32::INFINITY;
        for _ in 0..100 {
            final_loss = net.train_batch(&x, &y);
        }
        assert!(final_loss < 0.1, "loss {final_loss}");
        assert!(net.accuracy(&x, &y) > 0.95);
    }

    #[test]
    fn flat_params_roundtrip_preserves_behaviour() {
        let mut a = tiny_net(5);
        let (x, y) = toy_data(30);
        for _ in 0..10 {
            a.train_batch(&x, &y);
        }
        let snapshot = a.flat_params();
        let mut b = tiny_net(999);
        b.set_flat_params(&snapshot);
        assert_eq!(a.forward(&x, 30), b.forward(&x, 30));
    }

    #[test]
    fn param_count_is_consistent() {
        let net = tiny_net(2);
        assert_eq!(net.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(net.flat_params().len(), net.param_count());
    }

    #[test]
    fn accumulate_then_step_equals_train_batch() {
        let (x, y) = toy_data(12);
        let mut a = tiny_net(7);
        let mut b = tiny_net(7);
        a.train_batch(&x, &y);
        b.accumulate_batch(&x, &y);
        b.step();
        assert_eq!(a.flat_params(), b.flat_params());
    }

    #[test]
    fn zero_grads_discards_pending_update() {
        let (x, y) = toy_data(12);
        let mut a = tiny_net(7);
        let before = a.flat_params();
        a.accumulate_batch(&x, &y);
        a.zero_grads();
        a.step();
        assert_eq!(a.flat_params(), before);
    }

    #[test]
    #[should_panic(expected = "shapes disagree")]
    fn shape_mismatch_rejected() {
        let _ = Network::new(
            vec![Box::new(Dense::new(4, 8, 0)), Box::new(Dense::new(9, 3, 1))],
            3,
            0.1,
            0.0,
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_flat_param_length_panics() {
        let mut net = tiny_net(3);
        net.set_flat_params(&[0.0; 3]);
    }
}
