//! The layer trait and the stateless layers (ReLU, Flatten).

/// A differentiable layer in a sequential network.
///
/// Buffers are batch-major: a tensor of `batch` items each of `k` values is
/// a `Vec<f32>` of length `batch * k`. Layers own whatever caches backward
/// needs (inputs, masks); `forward` must be called before `backward` with
/// the same batch.
pub trait Layer: Send {
    /// Output length per batch item given the input length per item.
    fn out_len(&self) -> usize;

    /// Input length per batch item.
    fn in_len(&self) -> usize;

    /// Forward pass over a batch. `input.len() == batch * in_len()`.
    fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32>;

    /// Backward pass: consumes `d(loss)/d(output)`, accumulates parameter
    /// gradients internally, returns `d(loss)/d(input)`.
    fn backward(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32>;

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Copy parameters into `out` (length `param_count()`), returning how
    /// many were written.
    fn read_params(&self, _out: &mut [f32]) -> usize {
        0
    }

    /// Load parameters from `input`, returning how many were consumed.
    fn write_params(&mut self, _input: &[f32]) -> usize {
        0
    }

    /// SGD update: `param -= lr * grad` (with optional momentum handled by
    /// the layer), then clears the accumulated gradients.
    fn apply_grads(&mut self, _lr: f32, _momentum: f32) {}

    /// Reset accumulated gradients without applying them.
    fn zero_grads(&mut self) {}
}

/// Element-wise ReLU.
#[derive(Debug, Clone)]
pub struct Relu {
    len: usize,
    mask: Vec<bool>,
}

impl Relu {
    /// ReLU over `len` values per batch item.
    pub fn new(len: usize) -> Self {
        Relu {
            len,
            mask: Vec::new(),
        }
    }
}

impl Layer for Relu {
    fn out_len(&self) -> usize {
        self.len
    }

    fn in_len(&self) -> usize {
        self.len
    }

    fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        debug_assert_eq!(input.len(), batch * self.len);
        self.mask.clear();
        self.mask.reserve(input.len());
        let mut out = Vec::with_capacity(input.len());
        for &x in input {
            let pass = x > 0.0;
            self.mask.push(pass);
            out.push(if pass { x } else { 0.0 });
        }
        out
    }

    fn backward(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32> {
        debug_assert_eq!(grad_out.len(), batch * self.len);
        debug_assert_eq!(grad_out.len(), self.mask.len());
        grad_out
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect()
    }
}

/// Shape adapter: forwards data unchanged (buffers are already flat); exists
/// so model definitions read like their framework counterparts.
#[derive(Debug, Clone)]
pub struct Flatten {
    len: usize,
}

impl Flatten {
    /// Flatten `len` values per item.
    pub fn new(len: usize) -> Self {
        Flatten { len }
    }
}

impl Layer for Flatten {
    fn out_len(&self) -> usize {
        self.len
    }

    fn in_len(&self) -> usize {
        self.len
    }

    fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        debug_assert_eq!(input.len(), batch * self.len);
        input.to_vec()
    }

    fn backward(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32> {
        debug_assert_eq!(grad_out.len(), batch * self.len);
        grad_out.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives_and_routes_gradients() {
        let mut r = Relu::new(4);
        let out = r.forward(&[1.0, -2.0, 0.5, 0.0], 1);
        assert_eq!(out, vec![1.0, 0.0, 0.5, 0.0]);
        let gin = r.backward(&[10.0, 10.0, 10.0, 10.0], 1);
        assert_eq!(gin, vec![10.0, 0.0, 10.0, 0.0]);
    }

    #[test]
    fn relu_handles_batches() {
        let mut r = Relu::new(2);
        let out = r.forward(&[-1.0, 1.0, 2.0, -2.0], 2);
        assert_eq!(out, vec![0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn flatten_is_identity() {
        let mut f = Flatten::new(3);
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(f.forward(&x, 1), x);
        assert_eq!(f.backward(&x, 1), x);
        assert_eq!(f.param_count(), 0);
    }
}
