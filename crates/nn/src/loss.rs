//! Softmax cross-entropy loss.

/// Numerically stable softmax cross-entropy over a batch of logits.
///
/// `logits` is `[batch, n_classes]`, `labels[i]` the true class of item `i`.
/// Returns `(mean_loss, d(mean_loss)/d(logits))` — the gradient already
/// carries the `1/batch` factor, matching the layer convention.
///
/// # Panics
/// Panics on length mismatches or an out-of-range label.
pub fn softmax_cross_entropy(
    logits: &[f32],
    labels: &[usize],
    n_classes: usize,
) -> (f32, Vec<f32>) {
    let batch = labels.len();
    assert_eq!(logits.len(), batch * n_classes, "logits shape mismatch");
    let mut grad = vec![0.0f32; logits.len()];
    let mut loss = 0.0f64;
    let inv_batch = 1.0 / batch as f32;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < n_classes, "label {label} out of range");
        let row = &logits[i * n_classes..(i + 1) * n_classes];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - max).exp();
        }
        let log_denom = denom.ln();
        loss += f64::from(log_denom - (row[label] - max));
        let g = &mut grad[i * n_classes..(i + 1) * n_classes];
        for (c, gv) in g.iter_mut().enumerate() {
            let p = (row[c] - max).exp() / denom;
            *gv = (p - if c == label { 1.0 } else { 0.0 }) * inv_batch;
        }
    }
    ((loss / batch as f64) as f32, grad)
}

/// Arg-max predictions from a batch of logits.
pub fn predictions(logits: &[f32], n_classes: usize) -> Vec<usize> {
    assert_eq!(logits.len() % n_classes, 0);
    logits
        .chunks(n_classes)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .expect("non-empty row")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k_loss() {
        let (loss, _) = softmax_cross_entropy(&[0.0; 10], &[3], 10);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = vec![0.0f32; 10];
        logits[4] = 20.0;
        let (loss, _) = softmax_cross_entropy(&logits, &[4], 10);
        assert!(loss < 1e-3);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = vec![1.0, -2.0, 0.5, 3.0, 0.0, 1.0];
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0], 3);
        for row in grad.chunks(3) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = vec![0.3f32, -0.7, 1.2, 0.1];
        let labels = [2usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels, 4);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut lp = logits.clone();
            lp[i] += eps;
            let mut lm = logits.clone();
            lm[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels, 4);
            let (fm, _) = softmax_cross_entropy(&lm, &labels, 4);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 1e-3,
                "logit {i}: fd {fd} vs {}",
                grad[i]
            );
        }
    }

    #[test]
    fn batch_mean_scaling() {
        // Two identical items: same loss as one, gradients halved per item.
        let one = softmax_cross_entropy(&[1.0, 0.0], &[0], 2);
        let two = softmax_cross_entropy(&[1.0, 0.0, 1.0, 0.0], &[0, 0], 2);
        assert!((one.0 - two.0).abs() < 1e-6);
        assert!((two.1[0] - one.1[0] / 2.0).abs() < 1e-6);
    }

    #[test]
    fn large_logits_stay_finite() {
        let (loss, grad) = softmax_cross_entropy(&[1e4, -1e4], &[0], 2);
        assert!(loss.is_finite());
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn predictions_pick_argmax() {
        let p = predictions(&[0.1, 0.9, 0.5, 2.0, -1.0, 0.0], 3);
        assert_eq!(p, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let _ = softmax_cross_entropy(&[0.0, 0.0], &[5], 2);
    }
}
