//! Property suite for the [`JobSpec`] wire schema: every builder knob
//! combination expressible in-tree must survive `spec -> JSON -> spec`
//! and `spec -> SimBuilder::from_spec -> SimBuilder::to_spec` unchanged,
//! with a stable fingerprint.
//!
//! The generator draws a random knob subset from a bitmask plus random
//! parameter values, then *repairs* the combination just enough to pass
//! builder validation for some target (e.g. churn requires a fault
//! source). Serialization round-trips must hold for invalid combinations
//! too — the wire layer transports configs, the builder judges them — so
//! the suite checks round-tripping on the raw draw and builder agreement
//! on the repaired one.

use fedsched_bandit::{MaybeSeeded, PolicyKind, SelectionConfig};
use fedsched_core::DeadlinePolicy;
use fedsched_core::Schedule;
use fedsched_device::TrainingWorkload;
use fedsched_faults::{DriftConfig, FaultConfig};
use fedsched_fl::spec::{schedule_from_json, schedule_to_json};
use fedsched_fl::{
    AdmissionPolicy, AdversaryConfig, AggregatorKind, AttackKind, BuildTarget, ChurnConfig,
    DeviceSetSpec, EngineKind, JobSpec, SimBuilder,
};
use fedsched_net::{Link, RetryPolicy};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// Draw one JobSpec from `(mask, rng)`: each mask bit enables a knob
/// family, parameter values come from the rng.
fn draw_spec(mask: u32, rng: &mut TestRng) -> JobSpec {
    let target = BuildTarget::all()[(rng.below(6)) as usize];
    let devices = if mask & 1 != 0 {
        DeviceSetSpec::Replicated {
            preset: 1 + rng.below(3) as usize,
            copies: 1 + rng.below(4) as usize,
            seed: rng.next_u64(),
        }
    } else {
        DeviceSetSpec::Testbed {
            preset: 1 + rng.below(3) as usize,
            seed: rng.next_u64(),
        }
    };
    let workload = if mask & 2 != 0 {
        TrainingWorkload::vgg6()
    } else {
        TrainingWorkload::lenet()
    };
    let link = if mask & 4 != 0 {
        Link::lte_tmobile()
    } else {
        Link::wifi_campus()
    };
    let mut spec = JobSpec::new(
        target,
        devices,
        workload,
        link,
        1e6 + 4e6 * rng.unit_f64(),
        rng.next_u64(),
    );
    if mask & 8 != 0 {
        spec.deadline = Some(match rng.below(3) {
            0 => DeadlinePolicy::Fixed(10.0 + 90.0 * rng.unit_f64()),
            1 => DeadlinePolicy::MeanFactor(1.0 + rng.unit_f64()),
            _ => DeadlinePolicy::Quantile(0.5 + 0.5 * rng.unit_f64()),
        });
    }
    if mask & 16 != 0 {
        spec.retry = Some(if rng.below(2) == 0 {
            RetryPolicy::single_attempt() // timeout_s: inf — wire stress
        } else {
            RetryPolicy::default_chaos()
        });
    }
    if mask & 32 != 0 {
        spec.no_rescue = true;
    }
    if mask & 64 != 0 {
        spec.rescue_soc_floor = rng.unit_f64() * 0.5;
    }
    if mask & 128 != 0 {
        let mut config = FaultConfig::none()
            .with_crash_prob(rng.unit_f64() * 0.4)
            .with_loss_prob(rng.unit_f64() * 0.3);
        if rng.below(2) == 0 {
            config = config.with_contention(rng.unit_f64() * 0.5, 1.0 + rng.unit_f64());
        }
        if rng.below(2) == 0 {
            config = config.with_drift(DriftConfig::new(
                rng.unit_f64() * 0.5,
                1.5 + 5.0 * rng.unit_f64(),
            ));
        }
        spec.faults = Some((config, 1 + rng.below(8) as usize));
    }
    if mask & 256 != 0 {
        spec.cohort_size = Some(1 + rng.below(8) as usize);
        spec.threads = Some(1 + rng.below(4) as usize);
    }
    if mask & 512 != 0 {
        spec.buffered_async = Some((1 + rng.below(3) as usize, 0.1 + rng.unit_f64()));
    }
    if mask & 1024 != 0 {
        spec.aggregator = Some(match rng.below(5) {
            0 => AggregatorKind::TrimmedMean { trim: 1 },
            1 => AggregatorKind::Median,
            2 => AggregatorKind::NormClip {
                tau: rng.unit_f64() * 4.0,
            },
            3 => AggregatorKind::Krum { f: 1 },
            _ => AggregatorKind::MultiKrum { f: 1, k: 2 },
        });
    }
    if mask & 2048 != 0 {
        let attack = match rng.below(4) {
            0 => AttackKind::SignFlip,
            1 => AttackKind::Boost {
                factor: 2.0 + 8.0 * rng.unit_f64(),
            },
            2 => AttackKind::GaussianNoise {
                sigma: rng.unit_f64(),
            },
            _ => AttackKind::LabelFlip,
        };
        spec.adversary = Some((
            AdversaryConfig::none().with_attackers(0.1 + 0.3 * rng.unit_f64(), attack),
            1 + rng.below(8) as usize,
        ));
    }
    if mask & 4096 != 0 {
        spec.engine_kind = Some(if rng.below(2) == 0 {
            EngineKind::Lockstep
        } else {
            EngineKind::EventDriven
        });
    }
    if mask & 8192 != 0 {
        spec.churn = Some(ChurnConfig::symmetric(0.01 + 0.1 * rng.unit_f64(), 60.0));
        spec.admission = Some(match rng.below(3) {
            0 => AdmissionPolicy::Reject,
            1 => AdmissionPolicy::NextRound,
            _ => AdmissionPolicy::MidRoundFill,
        });
    }
    if mask & 16384 != 0 {
        spec.edges = Some(1);
        if rng.below(2) == 0 {
            spec.edge_link = Some(Link::edge_backhaul());
        }
        spec.edge_aggregator = Some(AggregatorKind::Median);
        spec.server_aggregator = Some(AggregatorKind::TrimmedMean { trim: 1 });
    }
    if mask & 32768 != 0 {
        let policy = match rng.below(3) {
            0 => PolicyKind::EpsilonGreedy {
                epsilon: rng.unit_f64(),
            },
            1 => PolicyKind::Ucb1 {
                c: 0.1 + 2.0 * rng.unit_f64(),
            },
            _ => PolicyKind::ThompsonSampling,
        };
        let mut config = SelectionConfig::new(policy, 1 + rng.below(6) as usize);
        if rng.below(2) == 0 {
            config.seed = MaybeSeeded::pinned(rng.next_u64());
        }
        spec.selection = Some(config);
    }
    spec
}

/// Repair a drawn spec into one the builder accepts for its target, so
/// the builder-round-trip leg can run on buildable configs.
fn repair(mut spec: JobSpec) -> JobSpec {
    // Chaos knobs only exist off the quiet sim; topology knobs only on
    // hier; async only on the coordinator; churn needs an event core and
    // a fault source.
    match spec.target {
        BuildTarget::Sim => {
            return JobSpec::new(
                BuildTarget::Sim,
                spec.devices,
                spec.workload,
                spec.link,
                spec.model_bytes,
                spec.seed,
            );
        }
        BuildTarget::Resilient | BuildTarget::EventSim => {
            spec.cohort_size = None;
            spec.threads = None;
            spec.buffered_async = None;
            spec.engine_kind = None;
        }
        BuildTarget::Engine | BuildTarget::Hier => {
            spec.buffered_async = None;
        }
        BuildTarget::Coordinator => {
            if spec.buffered_async.is_some() {
                spec.deadline = None;
            }
        }
    }
    if spec.target != BuildTarget::Hier {
        spec.edges = None;
        spec.edge_link = None;
        spec.edge_aggregator = None;
        spec.server_aggregator = None;
    }
    let event_core = match spec.target {
        BuildTarget::EventSim => true,
        BuildTarget::Engine | BuildTarget::Coordinator | BuildTarget::Hier => {
            spec.engine_kind == Some(EngineKind::EventDriven)
        }
        _ => false,
    };
    if !event_core {
        spec.churn = None;
        spec.admission = None;
    }
    if spec.churn.is_some() && spec.faults.is_none() {
        spec.faults = Some((FaultConfig::none(), 4));
    }
    if spec.admission.is_some() && spec.churn.is_none() {
        spec.admission = None;
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_drawn_spec_round_trips_through_json(mask in 0u32..65536, salt in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(salt);
        let spec = draw_spec(mask, &mut rng);
        let text = spec.canonical_json();
        let back = JobSpec::parse(&text).expect("canonical JSON must decode");
        prop_assert_eq!(&back, &spec);
        // Canonical encoding is a fixed point and fingerprints agree.
        prop_assert_eq!(back.canonical_json(), text);
        prop_assert_eq!(back.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn buildable_specs_round_trip_through_the_builder(mask in 0u32..65536, salt in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(salt);
        let spec = repair(draw_spec(mask, &mut rng));
        let builder = match SimBuilder::from_spec(&spec) {
            Ok(b) => b,
            // Some repaired draws are still invalid for their target
            // (e.g. more edges than cohorts); those are the error-path
            // suite's business, not round-trip's.
            Err(_) => return Ok(()),
        };
        let back = builder.to_spec(spec.target).expect("from_spec output must serialize");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.fingerprint(), spec.fingerprint());
    }
}

#[test]
fn schedules_round_trip() {
    for shards in [vec![10, 10, 10], vec![0, 5, 0, 40], vec![1]] {
        let s = Schedule::new(shards, 100.0);
        assert_eq!(schedule_from_json(&schedule_to_json(&s)).unwrap(), s);
    }
}
