//! Event-driven round execution: the same rounds as
//! [`ResilientRoundSim`], replayed from a discrete-event queue instead of
//! a lockstep sweep.
//!
//! The lockstep paths touch every device every round — `RoundSim` hoists
//! the idle check but still scans `O(devices)` per round, which at the
//! roadmap's population targets means almost all cycles go to devices with
//! nothing scheduled. [`EventRoundSim`] keeps a
//! [`Parking`](fedsched_core::Parking) bitmap over the cohort: devices
//! with no scheduled shards are *parked* and are never iterated, never
//! predicted against, and never scheduled into the queue. The per-round
//! hot loop is `O(active + events)` instead of `O(devices)` — the
//! `exp_scale` benchmark's event arm demonstrates the win.
//!
//! # Determinism contract
//!
//! Byte-identical reports and telemetry with the lockstep path, for every
//! configuration, enforced by `tests/event_identity.rs` and the golden
//! traces. The load-bearing rules:
//!
//! * All round phases delegate to the *same* `pub(crate)` primitives as
//!   `ResilientRoundSim::run` (`phase1_device`, `RoundTally::absorb`,
//!   `rescue_phase`, `robust_overlay`, `close_round`), in the same order,
//!   so RNG consumption and telemetry are shared by construction.
//! * Completion events are pushed into the [`EventQueue`] in device index
//!   order, *after* the full phase-1 loop — a crashed user's server-side
//!   wait (`crash_det`) is only known once everyone has been swept, and
//!   pushing afterwards makes sequence order equal index order. The
//!   straggler is then selected from ascending `(time, seq)` pops with a
//!   strictly-greater comparison, which picks the lowest-index device
//!   among equal-time finishers — exactly the lockstep index scan.
//! * Rescue begins only after the phase-1 queue drains ([`RoundEvent::RescueBegin`]
//!   fires at the failure-detection time): a mid-drain rescue could race a
//!   later finisher for the straggler slot and flip a tie.
//! * Adaptive deadlines resolve over the *active set only*; idle devices
//!   predict `0.0` and [`fedsched_core::DeadlinePolicy::resolve`] ignores
//!   non-positive entries, so the resolved cutoff is unchanged.

use fedsched_core::{EventQueue, Parking, Schedule};
use fedsched_device::Device;
use fedsched_faults::FaultInjector;
use fedsched_telemetry::Event;

use crate::clock;
use crate::resilient::{
    assemble_report, ChaosReport, Phase1, ResilientRoundSim, RoundTally, StragglerTrack,
};

/// Timed events within one simulated round.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RoundEvent {
    /// A device's phase-1 outcome reaches the server (its finish, cutoff,
    /// failure-detection or timeout instant). `comm_s` is the straggler
    /// communication share should this event win the makespan.
    DeviceDone { user: usize, comm_s: f64 },
    /// A device leaves mid-round via the continuous churn process; its
    /// partial credit reaches the server at the departure timestamp and
    /// its remaining shards are already in the rescue pool.
    DeviceDepart { user: usize, comm_s: f64 },
    /// An absent device comes online mid-round. What happens next is the
    /// admission policy's call: `Reject` parks it forever, the other
    /// policies make it eligible again (and `MidRoundFill` may hand it
    /// orphaned work this very round).
    DeviceArrive { user: usize },
    /// The round deadline elapses (bookkeeping marker; cuts themselves
    /// are resolved by the shared clock helpers).
    DeadlineFire,
    /// All phase-1 failures are detected; shard reassignment may start.
    RescueBegin,
    /// The round's synchronous barrier: everything the server waits on
    /// has fired.
    RoundClose,
}

/// What the server does with a device that arrives mid-round via the
/// churn process (builder knob: [`SimBuilder::admission`](crate::SimBuilder::admission)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Ignore arrivals: the device stays parked forever. The arrival is
    /// still visible in telemetry (`device_arrive`). Default.
    #[default]
    Reject,
    /// The device becomes eligible again from the *next* round: the
    /// server clears its gone-for-good flag so a rescheduler may assign
    /// it work, but it receives nothing mid-round.
    NextRound,
    /// `NextRound`, plus the earliest arrival of the round (lowest device
    /// index on ties) is handed the shards that rescue left orphaned,
    /// starting at [`clock::admission_start`] and honoring the rescue SoC
    /// floor.
    MidRoundFill,
}

/// [`ResilientRoundSim`] semantics on a discrete-event core.
///
/// Construct through
/// [`SimBuilder::build_event_sim`](crate::SimBuilder::build_event_sim),
/// or host it per cohort inside
/// [`ParallelRoundEngine`](crate::ParallelRoundEngine) via
/// [`SimBuilder::engine_kind`](crate::SimBuilder::engine_kind) /
/// [`EngineKind::EventDriven`](crate::EngineKind::EventDriven).
pub struct EventRoundSim {
    inner: ResilientRoundSim,
    queue: EventQueue<RoundEvent>,
    parking: Parking,
    /// Unparked device indices, ascending — the only per-round iterable.
    active: Vec<usize>,
    /// Users with any scheduled shard (`k > 0`), for round framing. May
    /// exceed `active.len()` when fractional shard sizes round a user's
    /// sample count to zero.
    participants: usize,
    /// Devices that left via the churn process and have not re-arrived.
    /// Distinct from the inner sim's gone flag: legacy per-round fates
    /// stay on the plan-driven path for lockstep byte-identity, while
    /// process-gone devices short-circuit to offline without touching the
    /// plan or the RNG.
    gone: Vec<bool>,
    /// What to do with mid-round arrivals.
    admission: AdmissionPolicy,
}

impl EventRoundSim {
    /// Wrap a fully configured resilient simulator. All knobs (retry,
    /// deadline policy, rescue, rescheduler, adversary, ...) are the
    /// inner simulator's.
    pub(crate) fn new(inner: ResilientRoundSim) -> Self {
        let n = inner.n_devices();
        EventRoundSim {
            inner,
            queue: EventQueue::new(),
            parking: Parking::new(n),
            active: (0..n).collect(),
            participants: 0,
            gone: vec![false; n],
            admission: AdmissionPolicy::default(),
        }
    }

    /// Set the mid-round arrival admission policy (builder hook).
    pub fn set_admission(&mut self, policy: AdmissionPolicy) {
        self.admission = policy;
    }

    /// Re-derive the parked set and active list from `schedule`. Runs
    /// once per `run` call and once per between-round reschedule — never
    /// in the per-round hot loop.
    fn rebind(&mut self, schedule: &Schedule) {
        self.participants = schedule.shards.iter().filter(|&&k| k > 0).count();
        for (j, &k) in schedule.shards.iter().enumerate() {
            let samples = (k as f64 * schedule.shard_size) as usize;
            if samples > 0 {
                self.parking.unpark(j);
            } else {
                self.parking.park(j);
            }
        }
        self.active = self.parking.active_indices();
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.inner.n_devices()
    }

    /// Borrow the devices (e.g. to inspect battery drain afterwards).
    pub fn devices(&self) -> &[Device] {
        self.inner.devices()
    }

    /// The fault injector driving this run.
    pub fn injector(&self) -> &FaultInjector {
        self.inner.injector()
    }

    /// Reset every device's thermal state (between experiment arms).
    pub fn cool_down(&mut self) {
        self.inner.cool_down();
    }

    /// Overwrite the deadline for the next rounds with an
    /// already-resolved cutoff (or clear it) — the
    /// [`Coordinator`](crate::Coordinator) hook, same contract as
    /// [`ResilientRoundSim::set_deadline`].
    pub fn set_deadline(&mut self, deadline_s: Option<f64>) {
        self.inner.set_deadline(deadline_s);
    }

    /// Devices currently parked (idle under the last bound schedule).
    pub fn parked_devices(&self) -> usize {
        self.parking.parked_count()
    }

    /// Lifetime count of events pushed through the queue — the `O(events)`
    /// side of the complexity claim, exposed for tests and benchmarks.
    pub fn events_scheduled(&self) -> u64 {
        self.queue.scheduled_total()
    }

    /// Simulate `rounds` synchronous rounds under faults, starting from
    /// `schedule`. Same semantics, reports and telemetry as
    /// [`ResilientRoundSim::run`], bit for bit.
    ///
    /// # Panics
    /// Panics if the schedule's user count differs from the cohort size.
    pub fn run(&mut self, schedule: &Schedule, rounds: usize) -> ChaosReport {
        assert_eq!(
            schedule.shards.len(),
            self.inner.n_devices(),
            "schedule/cohort size mismatch"
        );
        let n = self.inner.n_devices();
        let orig_total = schedule.total_shards();
        let mut current = schedule.clone();
        self.rebind(&current);
        let mut scheduled_total = orig_total;
        let probe = self.inner.probe_handle();
        let mut per_round = Vec::with_capacity(rounds);
        let mut user_totals = vec![0.0f64; n];
        let mut straggler_comm = 0.0f64;
        let mut outcomes = Vec::with_capacity(rounds);

        for _ in 0..rounds {
            let round = self.inner.current_round();
            // Bandit selection re-splits the load before anything else
            // looks at the schedule (same slot as the lockstep path); a
            // replaced schedule re-derives the parked set so unpicked
            // devices drop straight out of the hot loop.
            if self.inner.selection_begin(&mut current, orig_total) {
                self.rebind(&current);
            }
            // Deadline first (prediction draws nothing from the RNG), then
            // round framing — the same order as the lockstep path.
            let deadline_s = self.inner.round_deadline_active(&current, &self.active);
            let participants = self.participants;
            probe.emit(|| Event::RoundStart {
                round,
                n_users: participants,
            });
            let lossy = self.inner.emit_round_faults(round);

            // Continuous churn (inert unless the fault plan carries a
            // churn timeline: no scan, no events, no RNG). Arrival cells
            // are read for devices absent *at round start* — parked, or
            // gone from an earlier round — before the sweep can mark
            // anyone else gone.
            let churn = self.inner.injector().plan().churn_active();
            let arrival_cells: Vec<(usize, f64)> = if churn {
                (0..n)
                    .filter(|&j| {
                        let samples = (current.shards[j] as f64 * current.shard_size) as usize;
                        samples == 0 || self.gone[j]
                    })
                    .filter_map(|j| self.inner.injector().arrival_at(round, j).map(|t| (j, t)))
                    .collect()
            } else {
                Vec::new()
            };

            // Phase 1 over the active set only. Parked devices are never
            // touched: no fate check, no RNG draw, no event. Process-gone
            // devices short-circuit to offline (shards straight to the
            // rescue pool) without consuming plan fates or RNG.
            let mut entries: Vec<(usize, Phase1)> = Vec::with_capacity(self.active.len());
            let mut observed: Vec<(usize, f64, f64)> = Vec::new();
            let mut responder_max = 0.0f64;
            let mut fail_max = 0.0f64;
            for idx in 0..self.active.len() {
                let j = self.active[idx];
                let entry = if self.gone[j] {
                    let k = current.shards[j];
                    probe.emit(|| Event::UserTimeout {
                        round,
                        user: j,
                        cause: "offline".to_string(),
                        shards_at_risk: k,
                    });
                    Phase1::Offline { shards: k }
                } else {
                    let depart_at = if churn {
                        self.inner.injector().departure_at(round, j)
                    } else {
                        None
                    };
                    self.inner.phase1_device(
                        round,
                        j,
                        &current,
                        &lossy,
                        deadline_s,
                        depart_at,
                        &mut observed,
                    )
                };
                if let Phase1::Departed { .. } = entry {
                    self.gone[j] = true;
                }
                let (r, f) = entry.detection_bounds(deadline_s);
                responder_max = responder_max.max(r);
                fail_max = fail_max.max(f);
                entries.push((j, entry));
            }
            let crash_det = clock::crash_detection(deadline_s, responder_max, fail_max);

            // Schedule completion events in device index order (sequence
            // number == index rank), after the full sweep so `crash_det`
            // is final. Order-independent tallies fold here too.
            let mut tally = RoundTally::new();
            debug_assert!(
                self.queue.is_empty(),
                "round must start with a drained queue"
            );
            for (j, e) in &entries {
                let (total, busy, comm_v) = tally.absorb(*j, e, deadline_s, crash_det);
                user_totals[*j] += busy;
                let ev = match e {
                    Phase1::Departed { .. } => RoundEvent::DeviceDepart {
                        user: *j,
                        comm_s: comm_v,
                    },
                    _ => RoundEvent::DeviceDone {
                        user: *j,
                        comm_s: comm_v,
                    },
                };
                self.queue.schedule(total, ev);
            }
            if let Some(d) = deadline_s {
                self.queue.schedule(d, RoundEvent::DeadlineFire);
            }
            // Arrivals enter the same (time, seq) stream, scheduled in
            // device index order after the completions so equal-time ties
            // still resolve to the lowest index.
            for &(j, t) in &arrival_cells {
                self.queue.schedule(t, RoundEvent::DeviceArrive { user: j });
            }

            // Drain: the straggler emerges from ascending (time, seq) pops
            // under a strictly-greater update — equal-time ties resolve to
            // the earliest sequence number, i.e. the lowest device index.
            // Arrivals fold into the pending list in the same pop order,
            // so its head is the admission winner (earliest, lowest index).
            let mut track = StragglerTrack::new();
            let mut arrivals_pending: Vec<(f64, usize)> = Vec::new();
            while let Some((t, _seq, ev)) = self.queue.pop() {
                match ev {
                    RoundEvent::DeviceDone { user, comm_s }
                    | RoundEvent::DeviceDepart { user, comm_s } => track.observe(user, t, comm_s),
                    RoundEvent::DeviceArrive { user } => {
                        probe.emit(|| Event::DeviceArrive {
                            round,
                            t_s: t,
                            user,
                        });
                        if self.admission != AdmissionPolicy::Reject {
                            self.gone[user] = false;
                            self.inner.set_known_gone(user, false);
                            arrivals_pending.push((t, user));
                        }
                    }
                    RoundEvent::DeadlineFire => {}
                    RoundEvent::RescueBegin | RoundEvent::RoundClose => {
                        unreachable!("phase-2 events are never queued during phase 1")
                    }
                }
            }

            // Phase 2: rescue fires strictly after the phase-1 drain, at
            // the failure-detection instant.
            let mut rescued = 0usize;
            if self.inner.rescue_enabled() && tally.pool_total() > 0 {
                self.queue
                    .schedule(tally.detection, RoundEvent::RescueBegin);
                let fired = self.queue.pop();
                debug_assert!(matches!(fired, Some((_, _, RoundEvent::RescueBegin))));
                rescued = self.inner.rescue_phase(
                    round,
                    &lossy,
                    current.shard_size,
                    &entries,
                    &tally,
                    &mut track,
                    &mut user_totals,
                    &mut observed,
                );
            }
            // Mid-round admission: whatever rescue left orphaned goes to
            // the round's earliest arrival (head of the pop-ordered
            // pending list), starting no earlier than failure detection.
            let mut admitted = 0usize;
            let mut admit_done = 0usize;
            if self.admission == AdmissionPolicy::MidRoundFill {
                let leftover = tally.pool_total() - rescued;
                if leftover > 0 {
                    if let Some(&(t_arr, joiner)) = arrivals_pending.first() {
                        let start = clock::admission_start(t_arr, tally.detection);
                        if let Some(done) = self.inner.admission_phase(
                            round,
                            &lossy,
                            current.shard_size,
                            joiner,
                            start,
                            leftover,
                            &mut track,
                            &mut user_totals,
                            &mut observed,
                        ) {
                            admitted = leftover;
                            admit_done = done;
                        }
                    }
                }
            }

            let rejected_updates = self.inner.robust_overlay(round, &entries);

            // The synchronous barrier: close at the final makespan.
            self.queue.schedule(track.worst, RoundEvent::RoundClose);
            let closed = self.queue.pop();
            debug_assert!(matches!(closed, Some((_, _, RoundEvent::RoundClose))));
            // Selection rewards settle after the round closes; the clone
            // exists only while a policy is attached.
            let observed_for_reward = if self.inner.selection_active() {
                observed.clone()
            } else {
                Vec::new()
            };
            let outcome = self.inner.close_round(
                round,
                scheduled_total,
                &tally,
                &track,
                rescued,
                admitted,
                admit_done,
                rejected_updates,
                observed,
            );
            per_round.push(track.worst);
            straggler_comm += if track.worst > 0.0 {
                track.worst_comm / track.worst
            } else {
                0.0
            };
            outcomes.push(outcome);

            self.inner.selection_settle(round, &observed_for_reward);
            if self.inner.maybe_reschedule(&mut current, orig_total) {
                self.rebind(&current);
                scheduled_total = current.total_shards();
            }
        }

        assemble_report(per_round, outcomes, &user_totals, straggler_comm, rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilient::ResilientRoundSim;
    use fedsched_core::DeadlinePolicy;
    use fedsched_device::{Testbed, TrainingWorkload};
    use fedsched_faults::{FaultConfig, FaultInjector};
    use fedsched_net::{Link, RetryPolicy};
    use fedsched_telemetry::{EventLog, Probe};
    use std::sync::Arc;

    fn devices(seed: u64) -> Vec<fedsched_device::Device> {
        Testbed::testbed_1(seed).devices().to_vec()
    }

    fn link() -> Link {
        Link::new(100.0, 100.0, 0.0, 0.05)
    }

    fn chaos_pair(deadline: Option<f64>) -> (ResilientRoundSim, EventRoundSim) {
        let config = FaultConfig::none()
            .with_crash_prob(0.3)
            .with_loss_prob(0.15)
            .with_churn_prob(0.05);
        let build = || {
            let inj = FaultInjector::from_config(config.clone(), 3, 8, 19);
            let mut sim = ResilientRoundSim::from_parts(
                devices(19),
                TrainingWorkload::lenet(),
                link(),
                2.5e6,
                19,
                inj,
            )
            .with_retry(RetryPolicy::default_chaos());
            if let Some(d) = deadline {
                sim = sim.with_deadline_policy(DeadlinePolicy::Fixed(d));
            }
            sim
        };
        (build(), EventRoundSim::new(build()))
    }

    #[test]
    fn chaos_run_matches_lockstep_bit_for_bit() {
        let (mut lockstep, mut event) = chaos_pair(Some(50.0));
        let schedule = Schedule::new(vec![10, 10, 10], 100.0);
        let a = lockstep.run(&schedule, 8);
        let b = event.run(&schedule, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn traces_match_lockstep_byte_for_byte() {
        let log_a = Arc::new(EventLog::new());
        let log_b = Arc::new(EventLog::new());
        let (lockstep, _) = chaos_pair(Some(50.0));
        let mut lockstep = lockstep.with_probe(Probe::attached(log_a.clone()));
        let (inner, _) = chaos_pair(Some(50.0));
        let mut event = EventRoundSim::new(inner.with_probe(Probe::attached(log_b.clone())));
        let schedule = Schedule::new(vec![10, 10, 10], 100.0);
        let a = lockstep.run(&schedule, 8);
        let b = event.run(&schedule, 8);
        assert_eq!(a, b);
        assert_eq!(log_a.to_jsonl(), log_b.to_jsonl());
    }

    #[test]
    fn idle_devices_stay_parked_and_unqueued() {
        let mut sim = EventRoundSim::new(ResilientRoundSim::from_parts(
            devices(5),
            TrainingWorkload::lenet(),
            link(),
            2.5e6,
            5,
            FaultInjector::quiet(3),
        ));
        let report = sim.run(&Schedule::new(vec![20, 0, 0], 100.0), 4);
        assert_eq!(sim.parked_devices(), 2);
        // Per round: one device event + one round-close marker.
        assert_eq!(sim.events_scheduled(), 4 * 2);
        assert_eq!(report.timing.per_user_mean[1], 0.0);
        assert_eq!(report.timing.per_user_mean[2], 0.0);
    }

    fn churn_builder(
        seed: u64,
        churn: Option<fedsched_faults::ChurnConfig>,
        admission: Option<AdmissionPolicy>,
        probe: Probe,
    ) -> EventRoundSim {
        use crate::builder::{RoundConfig, SimBuilder};
        let config = RoundConfig::new(TrainingWorkload::lenet(), link(), 2.5e6, seed);
        let mut b = SimBuilder::new(devices(seed), config)
            .probe(probe)
            .faults(FaultConfig::none().with_crash_prob(0.1), 12)
            .retry(RetryPolicy::default_chaos());
        if let Some(c) = churn {
            b = b.churn(c);
        }
        if let Some(a) = admission {
            b = b.admission(a);
        }
        b.build_event_sim().unwrap()
    }

    fn conservation_holds(report: &ChaosReport) {
        for r in &report.rounds {
            assert_eq!(
                r.completed + r.admit_done + r.lost_shards + r.rescued + r.carried,
                r.scheduled + r.admitted,
                "round {} breaks shard conservation: {:?}",
                r.round,
                r
            );
            assert!(
                r.coverage <= 1.0,
                "round {} coverage {}",
                r.round,
                r.coverage
            );
            assert_eq!(r.carried, r.admitted - r.admit_done);
        }
    }

    #[test]
    fn zero_rate_churn_is_bit_identical_and_inert() {
        use fedsched_faults::ChurnConfig;
        let schedule = Schedule::new(vec![10, 10, 10], 100.0);
        let log_a = Arc::new(EventLog::new());
        let log_b = Arc::new(EventLog::new());
        let mut plain = churn_builder(23, None, None, Probe::attached(log_a.clone()));
        let mut quiet = churn_builder(
            23,
            Some(ChurnConfig::symmetric(0.0, 60.0)),
            None,
            Probe::attached(log_b.clone()),
        );
        let a = plain.run(&schedule, 6);
        let b = quiet.run(&schedule, 6);
        assert_eq!(a, b);
        assert_eq!(log_a.to_jsonl(), log_b.to_jsonl());
        assert_eq!(plain.events_scheduled(), quiet.events_scheduled());
    }

    #[test]
    fn departures_orphan_shards_and_trigger_rescue() {
        use fedsched_faults::ChurnConfig;
        let churn = ChurnConfig {
            depart_rate: 0.08,
            arrive_rate: 0.0,
            horizon_s: 60.0,
        };
        let mut sim = churn_builder(41, Some(churn), None, Probe::disabled());
        let report = sim.run(&Schedule::new(vec![10, 10, 10], 100.0), 10);
        conservation_holds(&report);
        let touched: usize = report.rounds.iter().map(|r| r.failed_users).sum();
        assert!(touched > 0, "no departure fired; pick another seed");
        // Departed devices stay gone: once everyone has left, whole rounds
        // complete nothing.
        let rescued: usize = report.rounds.iter().map(|r| r.rescued).sum();
        let lost: usize = report.rounds.iter().map(|r| r.lost_shards).sum();
        assert!(rescued + lost > 0);
    }

    #[test]
    fn departed_devices_stay_offline_until_arrival_policy_admits() {
        use fedsched_faults::ChurnConfig;
        let churn = ChurnConfig {
            depart_rate: 0.08,
            arrive_rate: 0.05,
            horizon_s: 60.0,
        };
        let log_reject = Arc::new(EventLog::new());
        let log_fill = Arc::new(EventLog::new());
        let run = |admission, log: &Arc<EventLog>| {
            use crate::builder::{RoundConfig, SimBuilder};
            let config = RoundConfig::new(TrainingWorkload::lenet(), link(), 2.5e6, 41);
            let mut sim = SimBuilder::new(devices(41), config)
                .probe(Probe::attached(log.clone() as Arc<_>))
                .faults(FaultConfig::none().with_crash_prob(0.1), 12)
                .retry(RetryPolicy::default_chaos())
                .churn(churn)
                .admission(admission)
                .build_event_sim()
                .unwrap();
            sim.run(&Schedule::new(vec![10, 10, 10], 100.0), 12)
        };
        let reject = run(AdmissionPolicy::Reject, &log_reject);
        let fill = run(AdmissionPolicy::MidRoundFill, &log_fill);
        conservation_holds(&reject);
        conservation_holds(&fill);
        assert!(reject.rounds.iter().all(|r| r.admitted == 0));
        assert!(!log_reject.to_jsonl().contains("mid_round_admit"));
        // Same churn timeline, different policy: the fill arm admits work
        // and the telemetry shows it.
        assert!(
            fill.rounds.iter().any(|r| r.admitted > 0),
            "no admission fired; pick another seed"
        );
        assert!(log_fill.to_jsonl().contains("\"ev\":\"mid_round_admit\""));
        assert!(log_fill.to_jsonl().contains("\"ev\":\"device_arrive\""));
        assert!(log_fill.to_jsonl().contains("\"ev\":\"device_depart\""));
        assert!(log_fill.to_jsonl().contains("\"ev\":\"shards_orphaned\""));
        // Coverage never exceeds 1 even with joiners (the satellite-1
        // regression), and the fill arm covers at least as much as reject.
        let mean = |r: &ChaosReport| {
            r.rounds.iter().map(|o| o.coverage).sum::<f64>() / r.rounds.len() as f64
        };
        assert!(mean(&fill) >= mean(&reject));
    }

    #[test]
    fn bandit_selection_matches_lockstep_bit_for_bit() {
        use crate::builder::{RoundConfig, Selection, SimBuilder};
        use fedsched_bandit::{MaybeSeeded, PolicyKind, SelectionConfig};
        let schedule = Schedule::new(vec![10, 10, 10], 100.0);
        let selection = SelectionConfig {
            policy: PolicyKind::Ucb1 { c: 1.0 },
            k: 2,
            seed: MaybeSeeded::inherit(),
        };
        let builder = |log: &Arc<EventLog>| {
            let config = RoundConfig::new(TrainingWorkload::lenet(), link(), 2.5e6, 33);
            SimBuilder::new(devices(33), config)
                .probe(Probe::attached(log.clone() as Arc<_>))
                .faults(FaultConfig::none().with_crash_prob(0.2), 12)
                .retry(RetryPolicy::default_chaos())
                .selection(Selection::Bandit(selection))
        };
        let log_a = Arc::new(EventLog::new());
        let log_b = Arc::new(EventLog::new());
        let a = builder(&log_a)
            .build_resilient()
            .unwrap()
            .run(&schedule, 10);
        let b = builder(&log_b)
            .build_event_sim()
            .unwrap()
            .run(&schedule, 10);
        assert_eq!(a, b);
        assert_eq!(log_a.to_jsonl(), log_b.to_jsonl());
        assert!(log_a.to_jsonl().contains("\"ev\":\"bandit_select\""));
        assert!(log_a.to_jsonl().contains("\"ev\":\"bandit_reward\""));
    }

    #[test]
    fn sequence_counter_survives_rounds() {
        let mut sim = EventRoundSim::new(ResilientRoundSim::from_parts(
            devices(6),
            TrainingWorkload::lenet(),
            link(),
            2.5e6,
            6,
            FaultInjector::quiet(3),
        ));
        sim.run(&Schedule::new(vec![5, 5, 5], 100.0), 2);
        let after_two = sim.events_scheduled();
        sim.run(&Schedule::new(vec![5, 5, 5], 100.0), 1);
        assert!(sim.events_scheduled() > after_two);
    }
}
