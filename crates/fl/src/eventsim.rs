//! Event-driven round execution: the same rounds as
//! [`ResilientRoundSim`], replayed from a discrete-event queue instead of
//! a lockstep sweep.
//!
//! The lockstep paths touch every device every round — `RoundSim` hoists
//! the idle check but still scans `O(devices)` per round, which at the
//! roadmap's population targets means almost all cycles go to devices with
//! nothing scheduled. [`EventRoundSim`] keeps a
//! [`Parking`](fedsched_core::Parking) bitmap over the cohort: devices
//! with no scheduled shards are *parked* and are never iterated, never
//! predicted against, and never scheduled into the queue. The per-round
//! hot loop is `O(active + events)` instead of `O(devices)` — the
//! `exp_scale` benchmark's event arm demonstrates the win.
//!
//! # Determinism contract
//!
//! Byte-identical reports and telemetry with the lockstep path, for every
//! configuration, enforced by `tests/event_identity.rs` and the golden
//! traces. The load-bearing rules:
//!
//! * All round phases delegate to the *same* `pub(crate)` primitives as
//!   `ResilientRoundSim::run` (`phase1_device`, `RoundTally::absorb`,
//!   `rescue_phase`, `robust_overlay`, `close_round`), in the same order,
//!   so RNG consumption and telemetry are shared by construction.
//! * Completion events are pushed into the [`EventQueue`] in device index
//!   order, *after* the full phase-1 loop — a crashed user's server-side
//!   wait (`crash_det`) is only known once everyone has been swept, and
//!   pushing afterwards makes sequence order equal index order. The
//!   straggler is then selected from ascending `(time, seq)` pops with a
//!   strictly-greater comparison, which picks the lowest-index device
//!   among equal-time finishers — exactly the lockstep index scan.
//! * Rescue begins only after the phase-1 queue drains ([`RoundEvent::RescueBegin`]
//!   fires at the failure-detection time): a mid-drain rescue could race a
//!   later finisher for the straggler slot and flip a tie.
//! * Adaptive deadlines resolve over the *active set only*; idle devices
//!   predict `0.0` and [`fedsched_core::DeadlinePolicy::resolve`] ignores
//!   non-positive entries, so the resolved cutoff is unchanged.

use fedsched_core::{EventQueue, Parking, Schedule};
use fedsched_device::Device;
use fedsched_faults::FaultInjector;
use fedsched_telemetry::Event;

use crate::clock;
use crate::resilient::{
    assemble_report, ChaosReport, Phase1, ResilientRoundSim, RoundTally, StragglerTrack,
};

/// Timed events within one simulated round.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RoundEvent {
    /// A device's phase-1 outcome reaches the server (its finish, cutoff,
    /// failure-detection or timeout instant). `comm_s` is the straggler
    /// communication share should this event win the makespan.
    DeviceDone { user: usize, comm_s: f64 },
    /// The round deadline elapses (bookkeeping marker; cuts themselves
    /// are resolved by the shared clock helpers).
    DeadlineFire,
    /// All phase-1 failures are detected; shard reassignment may start.
    RescueBegin,
    /// The round's synchronous barrier: everything the server waits on
    /// has fired.
    RoundClose,
}

/// [`ResilientRoundSim`] semantics on a discrete-event core.
///
/// Construct through
/// [`SimBuilder::build_event_sim`](crate::SimBuilder::build_event_sim),
/// or host it per cohort inside
/// [`ParallelRoundEngine`](crate::ParallelRoundEngine) via
/// [`SimBuilder::engine_kind`](crate::SimBuilder::engine_kind) /
/// [`EngineKind::EventDriven`](crate::EngineKind::EventDriven).
pub struct EventRoundSim {
    inner: ResilientRoundSim,
    queue: EventQueue<RoundEvent>,
    parking: Parking,
    /// Unparked device indices, ascending — the only per-round iterable.
    active: Vec<usize>,
    /// Users with any scheduled shard (`k > 0`), for round framing. May
    /// exceed `active.len()` when fractional shard sizes round a user's
    /// sample count to zero.
    participants: usize,
}

impl EventRoundSim {
    /// Wrap a fully configured resilient simulator. All knobs (retry,
    /// deadline policy, rescue, rescheduler, adversary, ...) are the
    /// inner simulator's.
    pub(crate) fn new(inner: ResilientRoundSim) -> Self {
        let n = inner.n_devices();
        EventRoundSim {
            inner,
            queue: EventQueue::new(),
            parking: Parking::new(n),
            active: (0..n).collect(),
            participants: 0,
        }
    }

    /// Re-derive the parked set and active list from `schedule`. Runs
    /// once per `run` call and once per between-round reschedule — never
    /// in the per-round hot loop.
    fn rebind(&mut self, schedule: &Schedule) {
        self.participants = schedule.shards.iter().filter(|&&k| k > 0).count();
        for (j, &k) in schedule.shards.iter().enumerate() {
            let samples = (k as f64 * schedule.shard_size) as usize;
            if samples > 0 {
                self.parking.unpark(j);
            } else {
                self.parking.park(j);
            }
        }
        self.active = self.parking.active_indices();
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.inner.n_devices()
    }

    /// Borrow the devices (e.g. to inspect battery drain afterwards).
    pub fn devices(&self) -> &[Device] {
        self.inner.devices()
    }

    /// The fault injector driving this run.
    pub fn injector(&self) -> &FaultInjector {
        self.inner.injector()
    }

    /// Reset every device's thermal state (between experiment arms).
    pub fn cool_down(&mut self) {
        self.inner.cool_down();
    }

    /// Overwrite the deadline for the next rounds with an
    /// already-resolved cutoff (or clear it) — the
    /// [`Coordinator`](crate::Coordinator) hook, same contract as
    /// [`ResilientRoundSim::set_deadline`].
    pub fn set_deadline(&mut self, deadline_s: Option<f64>) {
        self.inner.set_deadline(deadline_s);
    }

    /// Devices currently parked (idle under the last bound schedule).
    pub fn parked_devices(&self) -> usize {
        self.parking.parked_count()
    }

    /// Lifetime count of events pushed through the queue — the `O(events)`
    /// side of the complexity claim, exposed for tests and benchmarks.
    pub fn events_scheduled(&self) -> u64 {
        self.queue.scheduled_total()
    }

    /// Simulate `rounds` synchronous rounds under faults, starting from
    /// `schedule`. Same semantics, reports and telemetry as
    /// [`ResilientRoundSim::run`], bit for bit.
    ///
    /// # Panics
    /// Panics if the schedule's user count differs from the cohort size.
    pub fn run(&mut self, schedule: &Schedule, rounds: usize) -> ChaosReport {
        assert_eq!(
            schedule.shards.len(),
            self.inner.n_devices(),
            "schedule/cohort size mismatch"
        );
        let n = self.inner.n_devices();
        let orig_total = schedule.total_shards();
        let mut current = schedule.clone();
        self.rebind(&current);
        let mut scheduled_total = orig_total;
        let probe = self.inner.probe_handle();
        let mut per_round = Vec::with_capacity(rounds);
        let mut user_totals = vec![0.0f64; n];
        let mut straggler_comm = 0.0f64;
        let mut outcomes = Vec::with_capacity(rounds);

        for _ in 0..rounds {
            let round = self.inner.current_round();
            // Deadline first (prediction draws nothing from the RNG), then
            // round framing — the same order as the lockstep path.
            let deadline_s = self.inner.round_deadline_active(&current, &self.active);
            let participants = self.participants;
            probe.emit(|| Event::RoundStart {
                round,
                n_users: participants,
            });
            let lossy = self.inner.emit_round_faults(round);

            // Phase 1 over the active set only. Parked devices are never
            // touched: no fate check, no RNG draw, no event.
            let mut entries: Vec<(usize, Phase1)> = Vec::with_capacity(self.active.len());
            let mut observed: Vec<(usize, f64, f64)> = Vec::new();
            let mut responder_max = 0.0f64;
            let mut fail_max = 0.0f64;
            for idx in 0..self.active.len() {
                let j = self.active[idx];
                let entry =
                    self.inner
                        .phase1_device(round, j, &current, &lossy, deadline_s, &mut observed);
                let (r, f) = entry.detection_bounds(deadline_s);
                responder_max = responder_max.max(r);
                fail_max = fail_max.max(f);
                entries.push((j, entry));
            }
            let crash_det = clock::crash_detection(deadline_s, responder_max, fail_max);

            // Schedule completion events in device index order (sequence
            // number == index rank), after the full sweep so `crash_det`
            // is final. Order-independent tallies fold here too.
            let mut tally = RoundTally::new();
            debug_assert!(
                self.queue.is_empty(),
                "round must start with a drained queue"
            );
            for (j, e) in &entries {
                let (total, busy, comm_v) = tally.absorb(*j, e, deadline_s, crash_det);
                user_totals[*j] += busy;
                self.queue.schedule(
                    total,
                    RoundEvent::DeviceDone {
                        user: *j,
                        comm_s: comm_v,
                    },
                );
            }
            if let Some(d) = deadline_s {
                self.queue.schedule(d, RoundEvent::DeadlineFire);
            }

            // Drain: the straggler emerges from ascending (time, seq) pops
            // under a strictly-greater update — equal-time ties resolve to
            // the earliest sequence number, i.e. the lowest device index.
            let mut track = StragglerTrack::new();
            while let Some((t, _seq, ev)) = self.queue.pop() {
                match ev {
                    RoundEvent::DeviceDone { user, comm_s } => track.observe(user, t, comm_s),
                    RoundEvent::DeadlineFire => {}
                    RoundEvent::RescueBegin | RoundEvent::RoundClose => {
                        unreachable!("phase-2 events are never queued during phase 1")
                    }
                }
            }

            // Phase 2: rescue fires strictly after the phase-1 drain, at
            // the failure-detection instant.
            let mut rescued = 0usize;
            if self.inner.rescue_enabled() && tally.pool_total() > 0 {
                self.queue
                    .schedule(tally.detection, RoundEvent::RescueBegin);
                let fired = self.queue.pop();
                debug_assert!(matches!(fired, Some((_, _, RoundEvent::RescueBegin))));
                rescued = self.inner.rescue_phase(
                    round,
                    &lossy,
                    current.shard_size,
                    &entries,
                    &tally,
                    &mut track,
                    &mut user_totals,
                    &mut observed,
                );
            }
            let rejected_updates = self.inner.robust_overlay(round, &entries);

            // The synchronous barrier: close at the final makespan.
            self.queue.schedule(track.worst, RoundEvent::RoundClose);
            let closed = self.queue.pop();
            debug_assert!(matches!(closed, Some((_, _, RoundEvent::RoundClose))));
            let outcome = self.inner.close_round(
                round,
                scheduled_total,
                &tally,
                &track,
                rescued,
                rejected_updates,
                observed,
            );
            per_round.push(track.worst);
            straggler_comm += if track.worst > 0.0 {
                track.worst_comm / track.worst
            } else {
                0.0
            };
            outcomes.push(outcome);

            if self.inner.maybe_reschedule(&mut current, orig_total) {
                self.rebind(&current);
                scheduled_total = current.total_shards();
            }
        }

        assemble_report(per_round, outcomes, &user_totals, straggler_comm, rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilient::ResilientRoundSim;
    use fedsched_core::DeadlinePolicy;
    use fedsched_device::{Testbed, TrainingWorkload};
    use fedsched_faults::{FaultConfig, FaultInjector};
    use fedsched_net::{Link, RetryPolicy};
    use fedsched_telemetry::{EventLog, Probe};
    use std::sync::Arc;

    fn devices(seed: u64) -> Vec<fedsched_device::Device> {
        Testbed::testbed_1(seed).devices().to_vec()
    }

    fn link() -> Link {
        Link::new(100.0, 100.0, 0.0, 0.05)
    }

    fn chaos_pair(deadline: Option<f64>) -> (ResilientRoundSim, EventRoundSim) {
        let config = FaultConfig::none()
            .with_crash_prob(0.3)
            .with_loss_prob(0.15)
            .with_churn_prob(0.05);
        let build = || {
            let inj = FaultInjector::from_config(config.clone(), 3, 8, 19);
            let mut sim = ResilientRoundSim::from_parts(
                devices(19),
                TrainingWorkload::lenet(),
                link(),
                2.5e6,
                19,
                inj,
            )
            .with_retry(RetryPolicy::default_chaos());
            if let Some(d) = deadline {
                sim = sim.with_deadline_policy(DeadlinePolicy::Fixed(d));
            }
            sim
        };
        (build(), EventRoundSim::new(build()))
    }

    #[test]
    fn chaos_run_matches_lockstep_bit_for_bit() {
        let (mut lockstep, mut event) = chaos_pair(Some(50.0));
        let schedule = Schedule::new(vec![10, 10, 10], 100.0);
        let a = lockstep.run(&schedule, 8);
        let b = event.run(&schedule, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn traces_match_lockstep_byte_for_byte() {
        let log_a = Arc::new(EventLog::new());
        let log_b = Arc::new(EventLog::new());
        let (lockstep, _) = chaos_pair(Some(50.0));
        let mut lockstep = lockstep.with_probe(Probe::attached(log_a.clone()));
        let (inner, _) = chaos_pair(Some(50.0));
        let mut event = EventRoundSim::new(inner.with_probe(Probe::attached(log_b.clone())));
        let schedule = Schedule::new(vec![10, 10, 10], 100.0);
        let a = lockstep.run(&schedule, 8);
        let b = event.run(&schedule, 8);
        assert_eq!(a, b);
        assert_eq!(log_a.to_jsonl(), log_b.to_jsonl());
    }

    #[test]
    fn idle_devices_stay_parked_and_unqueued() {
        let mut sim = EventRoundSim::new(ResilientRoundSim::from_parts(
            devices(5),
            TrainingWorkload::lenet(),
            link(),
            2.5e6,
            5,
            FaultInjector::quiet(3),
        ));
        let report = sim.run(&Schedule::new(vec![20, 0, 0], 100.0), 4);
        assert_eq!(sim.parked_devices(), 2);
        // Per round: one device event + one round-close marker.
        assert_eq!(sim.events_scheduled(), 4 * 2);
        assert_eq!(report.timing.per_user_mean[1], 0.0);
        assert_eq!(report.timing.per_user_mean[2], 0.0);
    }

    #[test]
    fn sequence_counter_survives_rounds() {
        let mut sim = EventRoundSim::new(ResilientRoundSim::from_parts(
            devices(6),
            TrainingWorkload::lenet(),
            link(),
            2.5e6,
            6,
            FaultInjector::quiet(3),
        ));
        sim.run(&Schedule::new(vec![5, 5, 5], 100.0), 2);
        let after_two = sim.events_scheduled();
        sim.run(&Schedule::new(vec![5, 5, 5], 100.0), 1);
        assert!(sim.events_scheduled() > after_two);
    }
}
