//! The federated-learning runtime: FedAvg aggregation, simulated cohorts,
//! and the two execution paths the evaluation needs.
//!
//! The paper's experiments decompose cleanly into *time* and *accuracy*:
//!
//! * [`roundsim::RoundSim`] replays a schedule against the device simulator
//!   and link models to measure wall-clock round times (Figs. 5 and 7,
//!   Table II) — no actual ML runs, so 50-round sweeps cost milliseconds.
//!   Device thermal state persists across rounds, exactly like the paper's
//!   continuously-training phones. [`resilient::ResilientRoundSim`] layers a
//!   fault model on top — crashes, churn, lossy links, retries, deadlines
//!   and mid-round straggler rescue — while staying bit-identical to
//!   `RoundSim` when no faults are configured.
//! * [`engine`] actually trains: synchronous FedAvg over `fedsched-nn`
//!   networks on partitioned synthetic data (Figs. 2, 3 and 6, Tables III
//!   and V). Clients train in parallel on scoped threads; aggregation is
//!   weighted by sample count (McMahan et al.) and deterministic.
//!
//! [`assign`] bridges scheduler output to concrete training data: IID
//! schedules slice the (device-preloaded) global dataset, non-IID schedules
//! subset each user's class-restricted local data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod asyncfl;
pub mod builder;
pub mod clock;
pub mod cohorts;
pub mod coordinator;
pub mod engine;
pub mod eventsim;
pub mod gossip;
pub mod hier;
pub mod metrics;
pub mod resilient;
pub mod roundsim;
pub mod secure;
pub mod server;
pub mod spec;

pub use assign::{assignment_from_schedule_iid, assignment_from_schedule_noniid};
pub use asyncfl::{staleness_weight, AsyncFlOutcome, AsyncFlSetup};
pub use builder::{ConfigError, RoundConfig, Selection, SimBuilder};
pub use cohorts::{
    default_engine_threads, derive_cohort_seed, ChaosOptions, CohortReport, EngineKind,
    EngineReport, ParallelRoundEngine, DEFAULT_COHORT_SIZE, THREADS_ENV,
};
pub use coordinator::{
    CoordinationMode, Coordinator, CoordinatorReport, GlobalRoundOutcome, MergeRecord,
};
pub use engine::{FlOutcome, FlSetup};
pub use eventsim::{AdmissionPolicy, EventRoundSim};
pub use gossip::{GossipOutcome, GossipSetup, Topology};
pub use hier::{derive_edge_seed, edge_cohort_ranges, EdgeReport, HierEngine, HierReport};
pub use metrics::{analyze_round, cosine_similarity, DivergenceReport};
pub use resilient::{ChaosReport, ResilientRoundSim, RoundOutcome};
pub use roundsim::{RoundSim, TimingReport};
pub use secure::{mask_update, secure_fedavg, unmask_sum};
pub use server::fedavg_aggregate;
pub use spec::{BuildTarget, BuiltSim, DeviceSetSpec, JobSpec, RoundDigest, SPEC_VERSION};

// Re-exported so downstream builder call sites need only this crate.
pub use fedsched_bandit::{MaybeSeeded, PolicyKind, SelectionConfig, SelectionPolicy};
pub use fedsched_core::DeadlinePolicy;
pub use fedsched_faults::{AdversaryConfig, AdversaryPlan, AttackKind, ChurnConfig, DriftConfig};
pub use fedsched_robust::{AggregatorKind, RobustAggregator, RobustOutcome};
