//! Cross-cohort coordination: one control loop above the
//! [`ParallelRoundEngine`].
//!
//! The engine scales the simulation out, but each cohort still makes its
//! decisions from cohort-local information — an adaptive deadline resolved
//! inside a slow cohort is lax exactly where it should bite. The
//! [`Coordinator`] closes that loop at the population level:
//!
//! * **Global straggler deadline** — before each round it pools
//!   side-effect-free predicted per-user times across *every* cohort
//!   ([`ParallelRoundEngine::predicted_user_times`]), resolves the
//!   [`DeadlinePolicy`] once against the pooled distribution, and pushes
//!   the single resulting cutoff into every cohort
//!   ([`Event::GlobalDeadlineSet`]). Deadline-cut shards keep their partial
//!   credit and rescue accounting, now rolled up population-wide.
//! * **Barrier aggregation** — after the cohorts run, per-round outcomes
//!   merge into population-level [`GlobalRoundOutcome`]s that name the
//!   straggling cohorts ([`Event::CohortStraggling`]).
//! * **Buffered async mode** — alternatively, cohorts report into a
//!   buffered aggregator (FedBuff-style): the server merges as soon as
//!   `buffer` updates are queued, discounting each by the shared FedAsync
//!   staleness weight ([`staleness_weight`]), with all bookkeeping in
//!   simulated time ([`Event::AsyncMerge`]).
//!
//! # Determinism contract
//!
//! Everything the coordinator adds is plain arithmetic over the engine's
//! deterministic outputs, computed on the control thread: results and
//! telemetry are bit-identical at any thread count. With
//! [`DeadlinePolicy::Off`] in barrier mode the coordinator is a pure
//! pass-through — byte-identical reports and event streams to driving the
//! engine directly (pinned by `tests/coordinator_identity.rs`).

use fedsched_core::{DeadlinePolicy, EventQueue, Schedule};
use fedsched_telemetry::{Event, Probe};
use serde::Serialize;

use crate::asyncfl::staleness_weight;
use crate::cohorts::{EngineReport, ParallelRoundEngine};
use crate::resilient::RoundOutcome;

/// How cohort results meet the global model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum CoordinationMode {
    /// Synchronous: every round waits for all cohorts, then aggregates.
    Barrier,
    /// FedBuff-style: cohort updates queue into a buffer of size `buffer`;
    /// each flush merges the queued updates with staleness discount
    /// `eta / (1 + staleness)` and bumps the server version once.
    BufferedAsync {
        /// Updates per merge.
        buffer: usize,
        /// Base mixing rate.
        eta: f64,
    },
}

/// One population-level round as the coordinator saw it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GlobalRoundOutcome {
    /// The merged cross-cohort outcome (shard accounting summed, coverage
    /// recomputed, makespan = slowest cohort).
    pub outcome: RoundOutcome,
    /// The global deadline in force, if any.
    pub deadline_s: Option<f64>,
    /// Cohorts that set the population makespan or had users cut by the
    /// deadline.
    pub straggling_cohorts: Vec<usize>,
    /// Every cohort's round makespan, in cohort order.
    pub cohort_makespans: Vec<f64>,
}

/// One staleness-discounted merge performed in buffered-async mode.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MergeRecord {
    /// Simulated time of the flush that merged this update.
    pub t_s: f64,
    /// Reporting cohort.
    pub cohort: usize,
    /// Global round index of the cohort's update.
    pub round: usize,
    /// Server versions elapsed since the cohort pulled.
    pub staleness: usize,
    /// Effective mixing weight, `eta / (1 + staleness)`.
    pub weight: f64,
}

/// Aggregate result of one [`Coordinator::run`] call.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CoordinatorReport {
    /// The underlying engine report (population timing, per-cohort
    /// breakdowns). With the policy off in barrier mode this is
    /// byte-identical to driving the engine directly.
    pub engine: EngineReport,
    /// Population-level per-round outcomes with coordination context.
    pub global_rounds: Vec<GlobalRoundOutcome>,
    /// Buffered-async merge ledger (empty in barrier mode).
    pub merges: Vec<MergeRecord>,
    /// Simulated span of this call: sum of population round makespans in
    /// barrier mode (server waits each round), slowest cohort's total
    /// busy time in async mode (nobody waits).
    pub span_s: f64,
}

impl CoordinatorReport {
    /// Total shards lost across all rounds.
    pub fn total_lost(&self) -> usize {
        self.engine.total_lost()
    }

    /// Mean per-round population coverage.
    pub fn mean_coverage(&self) -> f64 {
        self.engine.mean_coverage()
    }
}

/// A cohort update waiting in the async buffer.
#[derive(Debug, Clone, Copy)]
struct PendingUpdate {
    cohort: usize,
    round: usize,
    pull_version: usize,
}

/// Cross-cohort coordination engine. Build with
/// [`SimBuilder::build_coordinator`](crate::SimBuilder::build_coordinator).
pub struct Coordinator {
    engine: ParallelRoundEngine,
    policy: DeadlinePolicy,
    mode: CoordinationMode,
    probe: Probe,
    /// Server model version (bumped once per async flush).
    server_version: usize,
    /// Per-cohort simulated clock (async mode): when the cohort last
    /// reported in.
    cohort_clock: Vec<f64>,
    /// Server version each cohort last pulled (async mode).
    cohort_pull_version: Vec<usize>,
    /// Updates queued but not yet merged (async mode; persists across
    /// calls).
    buffer: Vec<PendingUpdate>,
}

impl Coordinator {
    /// Assemble a coordinator over a configured engine. The engine must
    /// have been built with its own deadline policy off — the coordinator
    /// owns deadline resolution.
    pub(crate) fn from_parts(
        engine: ParallelRoundEngine,
        policy: DeadlinePolicy,
        mode: CoordinationMode,
    ) -> Self {
        let probe = engine.probe_handle();
        Coordinator {
            engine,
            policy,
            mode,
            probe,
            server_version: 0,
            cohort_clock: Vec::new(),
            cohort_pull_version: Vec::new(),
            buffer: Vec::new(),
        }
    }

    /// The deadline policy resolved globally each round.
    pub fn policy(&self) -> DeadlinePolicy {
        self.policy
    }

    /// The coordination mode.
    pub fn mode(&self) -> CoordinationMode {
        self.mode
    }

    /// The underlying engine (e.g. for device snapshots).
    pub fn engine(&self) -> &ParallelRoundEngine {
        &self.engine
    }

    /// Rounds simulated so far across all `run` calls.
    pub fn rounds_done(&self) -> usize {
        self.engine.rounds_done()
    }

    /// Server model version (async mode; barrier mode leaves it at zero).
    pub fn server_version(&self) -> usize {
        self.server_version
    }

    /// Reset every device's thermal state (between experiment arms).
    pub fn cool_down(&mut self) {
        self.engine.cool_down();
    }

    /// Simulate `rounds` coordinated rounds of `schedule`. Cohort state
    /// (RNG streams, thermal, round numbering, async clocks) persists
    /// across calls exactly like the engine's.
    ///
    /// # Panics
    /// Panics if the schedule's user count differs from the population.
    pub fn run(&mut self, schedule: &Schedule, rounds: usize) -> CoordinatorReport {
        match self.mode {
            CoordinationMode::Barrier if self.policy.is_off() => {
                self.run_passthrough(schedule, rounds)
            }
            CoordinationMode::Barrier => self.run_barrier(schedule, rounds),
            CoordinationMode::BufferedAsync { buffer, eta } => {
                self.run_async(schedule, rounds, buffer, eta)
            }
        }
    }

    /// Off-policy barrier mode: one pass-through engine call, so reports
    /// and the spliced event stream stay byte-identical to the bare
    /// engine. (Looping per round here would re-order the spliced JSONL.)
    fn run_passthrough(&mut self, schedule: &Schedule, rounds: usize) -> CoordinatorReport {
        let report = self.engine.run(schedule, rounds);
        let global_rounds = global_rounds_of(&report, &vec![None; rounds]);
        let span_s = report.timing.per_round_makespan.iter().sum();
        CoordinatorReport {
            engine: report,
            global_rounds,
            merges: Vec::new(),
            span_s,
        }
    }

    /// Deadline barrier mode: resolve one pooled deadline, push it into
    /// every cohort, run one round, account — round by round.
    fn run_barrier(&mut self, schedule: &Schedule, rounds: usize) -> CoordinatorReport {
        let mut deadlines = Vec::with_capacity(rounds);
        let mut reports = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let round = self.engine.rounds_done();
            // Predictions are side-effect-free (clones, no RNG), so the
            // resolution is invisible to the simulated timeline.
            let predicted = self.engine.predicted_user_times(schedule);
            let deadline_s = self.policy.resolve(&predicted);
            let pooled = predicted
                .iter()
                .filter(|t| t.is_finite() && **t > 0.0)
                .count();
            self.engine.set_cohort_deadlines(deadline_s);
            let n_cohorts = self.engine.n_cohorts();
            let policy_name = self.policy.name();
            self.probe.emit(|| Event::GlobalDeadlineSet {
                round,
                policy: policy_name.to_string(),
                deadline_s,
                pooled,
                cohorts: n_cohorts,
            });

            let report = self.engine.run(schedule, 1);
            for (cohort, straggle) in straggling_cohorts(&report, 0) {
                let makespan_s = report.cohorts[cohort].timing.per_round_makespan[0];
                self.probe.emit(|| Event::CohortStraggling {
                    round,
                    cohort,
                    makespan_s,
                    deadline_s,
                    timed_out: straggle.timed_out,
                });
            }
            deadlines.push(deadline_s);
            reports.push(report);
        }
        let report = fold_reports(reports);
        let global_rounds = global_rounds_of(&report, &deadlines);
        let span_s = report.timing.per_round_makespan.iter().sum();
        CoordinatorReport {
            engine: report,
            global_rounds,
            merges: Vec::new(),
            span_s,
        }
    }

    /// Buffered-async mode: the cohorts simulate exactly as in
    /// pass-through, but aggregation is re-timed — each cohort reports in
    /// at its own cumulative pace and the server merges per `buffer`
    /// arrivals with staleness discount.
    ///
    /// Cohort merges are *events in one global simulated-time stream*: a
    /// per-call [`EventQueue`] keyed by `(time, seq)`, with completions
    /// scheduled cohort-major so equal-time ties pop lowest-cohort first
    /// and a cohort's own rounds pop in round order — exactly the ordering
    /// the old per-cohort clock bookkeeping sorted into, now produced by
    /// the same event core the round engines drain. All scheduling is
    /// post-hoc arithmetic over per-cohort makespans, hence
    /// thread-invariant; the staleness-weighted merge ledger is unchanged.
    fn run_async(
        &mut self,
        schedule: &Schedule,
        rounds: usize,
        buffer: usize,
        eta: f64,
    ) -> CoordinatorReport {
        let report = self.engine.run(schedule, rounds);
        let n_cohorts = report.cohorts.len();
        if self.cohort_clock.len() != n_cohorts {
            self.cohort_clock = vec![0.0; n_cohorts];
            self.cohort_pull_version = vec![0; n_cohorts];
        }

        // Each cohort finishes its rounds back-to-back on its own clock;
        // nobody waits for anybody. Its completions enter the global
        // stream at cumulative cohort time, carrying (cohort, round).
        let mut stream: EventQueue<(usize, usize)> = EventQueue::new();
        let mut span_s = 0.0f64;
        for (c, cohort) in report.cohorts.iter().enumerate() {
            let start = self.cohort_clock[c];
            let mut t = start;
            for (r, &m) in cohort.timing.per_round_makespan.iter().enumerate() {
                t += m;
                stream.schedule(t, (c, cohort.rounds[r].round));
            }
            self.cohort_clock[c] = t;
            span_s = span_s.max(t - start);
        }

        let mut merges = Vec::new();
        while let Some((t, _seq, (c, round))) = stream.pop() {
            self.buffer.push(PendingUpdate {
                cohort: c,
                round,
                pull_version: self.cohort_pull_version[c],
            });
            if self.buffer.len() >= buffer {
                for item in std::mem::take(&mut self.buffer) {
                    let staleness = self.server_version - item.pull_version;
                    let weight = staleness_weight(eta, staleness);
                    self.probe.emit(|| Event::AsyncMerge {
                        t_s: t,
                        user: item.cohort,
                        staleness,
                        weight,
                    });
                    merges.push(MergeRecord {
                        t_s: t,
                        cohort: item.cohort,
                        round: item.round,
                        staleness,
                        weight,
                    });
                }
                self.server_version += 1;
            }
            // The cohort pulls the freshest model before its next round.
            self.cohort_pull_version[c] = self.server_version;
        }

        let global_rounds = global_rounds_of(&report, &vec![None; rounds]);
        CoordinatorReport {
            engine: report,
            global_rounds,
            merges,
            span_s,
        }
    }
}

/// Which cohorts straggled in round `r` of `report`: set the population
/// makespan, or had users deadline-cut.
struct Straggle {
    timed_out: usize,
}

fn straggling_cohorts(report: &EngineReport, r: usize) -> Vec<(usize, Straggle)> {
    let pop_max = report.timing.per_round_makespan[r];
    report
        .cohorts
        .iter()
        .enumerate()
        .filter_map(|(c, cohort)| {
            let makespan = cohort.timing.per_round_makespan[r];
            let timed_out = cohort.rounds[r].timed_out;
            if (pop_max > 0.0 && makespan == pop_max) || timed_out > 0 {
                Some((c, Straggle { timed_out }))
            } else {
                None
            }
        })
        .collect()
}

/// Wrap an engine report's rounds in coordination context.
fn global_rounds_of(report: &EngineReport, deadlines: &[Option<f64>]) -> Vec<GlobalRoundOutcome> {
    report
        .rounds
        .iter()
        .enumerate()
        .map(|(r, outcome)| GlobalRoundOutcome {
            outcome: outcome.clone(),
            deadline_s: deadlines.get(r).copied().flatten(),
            straggling_cohorts: straggling_cohorts(report, r)
                .into_iter()
                .map(|(c, _)| c)
                .collect(),
            cohort_makespans: report
                .cohorts
                .iter()
                .map(|c| c.timing.per_round_makespan[r])
                .collect(),
        })
        .collect()
}

/// Fold single-round engine reports into one multi-round report, matching
/// the arithmetic a single multi-round engine call would have produced:
/// makespans concatenate, per-user means average over rounds, comm
/// fraction is the per-round mean.
fn fold_reports(reports: Vec<EngineReport>) -> EngineReport {
    let rounds = reports.len();
    if rounds == 1 {
        return reports.into_iter().next().expect("one report");
    }
    let mut iter = reports.into_iter();
    let mut acc = iter.next().expect("at least one round");
    let mut user_totals: Vec<f64> = acc.timing.per_user_mean.clone();
    let mut comm_sum = acc.timing.comm_fraction;
    let mut cohort_user_totals: Vec<Vec<f64>> = acc
        .cohorts
        .iter()
        .map(|c| c.timing.per_user_mean.clone())
        .collect();
    let mut cohort_comm_sums: Vec<f64> =
        acc.cohorts.iter().map(|c| c.timing.comm_fraction).collect();
    for rep in iter {
        acc.timing
            .per_round_makespan
            .extend(rep.timing.per_round_makespan);
        for (total, mean) in user_totals.iter_mut().zip(&rep.timing.per_user_mean) {
            *total += mean;
        }
        comm_sum += rep.timing.comm_fraction;
        acc.rounds.extend(rep.rounds);
        for (c, cohort) in rep.cohorts.into_iter().enumerate() {
            acc.cohorts[c]
                .timing
                .per_round_makespan
                .extend(cohort.timing.per_round_makespan);
            for (total, mean) in cohort_user_totals[c]
                .iter_mut()
                .zip(&cohort.timing.per_user_mean)
            {
                *total += mean;
            }
            cohort_comm_sums[c] += cohort.timing.comm_fraction;
            acc.cohorts[c].rounds.extend(cohort.rounds);
        }
    }
    let r = rounds as f64;
    acc.timing.per_user_mean = user_totals.into_iter().map(|t| t / r).collect();
    acc.timing.comm_fraction = comm_sum / r;
    for (c, cohort) in acc.cohorts.iter_mut().enumerate() {
        cohort.timing.per_user_mean = cohort_user_totals[c].iter().map(|t| t / r).collect();
        cohort.timing.comm_fraction = cohort_comm_sums[c] / r;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{RoundConfig, SimBuilder};
    use fedsched_device::{Device, DeviceModel, TrainingWorkload};
    use fedsched_net::Link;

    const MODEL_BYTES: f64 = 2.5e6;

    fn population(n: usize, seed: u64) -> Vec<Device> {
        let models = DeviceModel::all();
        (0..n)
            .map(|i| {
                Device::from_model(
                    models[i % models.len()],
                    seed.wrapping_add(i as u64 * 0x9E37_79B9),
                )
            })
            .collect()
    }

    fn config(seed: u64) -> RoundConfig {
        RoundConfig::new(
            TrainingWorkload::lenet(),
            Link::wifi_campus(),
            MODEL_BYTES,
            seed,
        )
    }

    fn uniform_schedule(n: usize, shards: usize) -> Schedule {
        Schedule::new(vec![shards; n], 100.0)
    }

    #[test]
    fn off_policy_coordinator_wraps_engine_verbatim() {
        let n = 24;
        let schedule = uniform_schedule(n, 2);
        let mut engine = SimBuilder::new(population(n, 5), config(5))
            .cohort_size(6)
            .build_engine()
            .unwrap();
        let expected = engine.run(&schedule, 3);

        let mut coord = SimBuilder::new(population(n, 5), config(5))
            .cohort_size(6)
            .build_coordinator()
            .unwrap();
        let report = coord.run(&schedule, 3);
        assert_eq!(report.engine, expected);
        assert!(report.merges.is_empty());
        assert_eq!(report.global_rounds.len(), 3);
        assert_eq!(
            report.span_s,
            expected.timing.per_round_makespan.iter().sum::<f64>()
        );
    }

    #[test]
    fn global_deadline_is_pushed_into_every_cohort() {
        let n = 20;
        let schedule = uniform_schedule(n, 3);
        let mut coord = SimBuilder::new(population(n, 11), config(11))
            .cohort_size(5)
            .deadline(DeadlinePolicy::Quantile(0.5))
            .build_coordinator()
            .unwrap();
        let report = coord.run(&schedule, 3);
        // A median cutoff over a heterogeneous population must cut someone.
        assert!(
            report.engine.rounds.iter().any(|r| r.timed_out > 0),
            "median deadline should cut stragglers"
        );
        for gr in &report.global_rounds {
            let d = gr.deadline_s.expect("quantile policy always resolves");
            assert!(gr.outcome.makespan_s <= d * (1.0 + 1e-9) || gr.outcome.rescued > 0);
            assert!(!gr.straggling_cohorts.is_empty());
            assert_eq!(gr.cohort_makespans.len(), 4);
        }
    }

    #[test]
    fn deadline_coordinator_is_thread_invariant() {
        let n = 30;
        let schedule = uniform_schedule(n, 2);
        let run = |threads: usize| {
            let mut coord = SimBuilder::new(population(n, 13), config(13))
                .cohort_size(7)
                .threads(threads)
                .deadline(DeadlinePolicy::MeanFactor(1.2))
                .build_coordinator()
                .unwrap();
            let report = coord.run(&schedule, 3);
            format!("{report:?}")
        };
        let baseline = run(1);
        assert_eq!(run(4), baseline);
        assert_eq!(run(8), baseline);
    }

    #[test]
    fn buffered_async_merges_with_staleness_discount() {
        let n = 24;
        let schedule = uniform_schedule(n, 2);
        let mut coord = SimBuilder::new(population(n, 17), config(17))
            .cohort_size(6)
            .buffered_async(2, 0.6)
            .build_coordinator()
            .unwrap();
        let report = coord.run(&schedule, 3);
        // 4 cohorts x 3 rounds = 12 arrivals, buffer 2 => 6 flushes.
        assert_eq!(report.merges.len(), 12);
        assert_eq!(coord.server_version(), 6);
        for m in &report.merges {
            assert!((m.weight - staleness_weight(0.6, m.staleness)).abs() < 1e-12);
        }
        // Async span: nobody waits, so the span is the slowest cohort's own
        // total, never more than the barrier span (sum of per-round maxes).
        let barrier_span: f64 = report.engine.timing.per_round_makespan.iter().sum();
        assert!(report.span_s <= barrier_span + 1e-9);
        assert!(report.span_s > 0.0);
        // Merge times never decrease.
        for pair in report.merges.windows(2) {
            assert!(pair[1].t_s >= pair[0].t_s);
        }
    }

    #[test]
    fn async_state_persists_across_runs() {
        let n = 12;
        let schedule = uniform_schedule(n, 2);
        let mk = || {
            SimBuilder::new(population(n, 29), config(29))
                .cohort_size(4)
                .buffered_async(3, 0.5)
                .build_coordinator()
                .unwrap()
        };
        let mut split = mk();
        let a = split.run(&schedule, 2);
        let b = split.run(&schedule, 2);
        let mut whole = mk();
        let w = whole.run(&schedule, 4);
        assert_eq!(split.server_version(), whole.server_version());
        let split_merges: Vec<_> = a.merges.iter().chain(&b.merges).cloned().collect();
        assert_eq!(split_merges, w.merges);
    }
}
