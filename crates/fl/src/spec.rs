//! The wire form of a simulator configuration: [`JobSpec`].
//!
//! [`SimBuilder`] is the single in-process construction choke point; this
//! module gives the same configuration a *serial* form so it can cross a
//! process boundary (the `fedsched-serve` HTTP API), be fingerprinted for
//! caching, and be replayed for crash recovery. The design constraints:
//!
//! * **Round-trip exactness.** `JobSpec -> SimBuilder::from_spec ->
//!   SimBuilder::to_spec` is the identity, and `JobSpec -> JSON ->
//!   JobSpec` is the identity — including `u64` seeds above 2^53 (encoded
//!   as decimal strings, see [`u64_to_json`]) and non-finite floats like
//!   `RetryPolicy::single_attempt().timeout_s` (encoded as `"inf"`).
//! * **Determinism.** Encoding is canonical: one fixed field order, `None`
//!   knobs omitted, floats in shortest-round-trip form. Equal specs
//!   produce equal bytes, so [`JobSpec::fingerprint`] is a stable cache
//!   key and snapshot files diff cleanly.
//! * **Same errors on both paths.** Anything a spec can get wrong maps to
//!   the same [`ConfigError`] (and thus the same
//!   [`cause_code`](ConfigError::cause_code)) the in-process builder
//!   raises; malformed documents get the dedicated
//!   [`ConfigError::InvalidSpec`] code. Configurations that carry
//!   host-side objects (closures, custom injectors, ad-hoc fleets) are
//!   rejected by [`SimBuilder::to_spec`] with
//!   [`ConfigError::NotSerializable`] rather than silently dropped.
//!
//! The vendored `serde` is a marker stub, so encoding goes through
//! [`fedsched_core::json`] by hand — field by field, in one place, here.

use fedsched_bandit::{MaybeSeeded, PolicyKind, SelectionConfig};
use fedsched_core::json::{self, JsonError, JsonValue};
use fedsched_core::{DeadlinePolicy, Schedule};
use fedsched_device::{DeviceModel, Testbed, TrainingWorkload};
use fedsched_faults::{AdversaryConfig, AttackKind, ChurnConfig, DriftConfig, FaultConfig};
use fedsched_net::{Link, RetryPolicy};
use fedsched_robust::AggregatorKind;
use fedsched_telemetry::Probe;

use crate::builder::{AsyncOptions, ConfigError, RoundConfig, Selection, SimBuilder};
use crate::cohorts::{EngineKind, ParallelRoundEngine};
use crate::coordinator::Coordinator;
use crate::eventsim::{AdmissionPolicy, EventRoundSim};
use crate::hier::HierEngine;
use crate::resilient::ResilientRoundSim;
use crate::roundsim::RoundSim;

/// Wire-format version stamped into every encoded spec. Bump on any
/// incompatible schema change; decoding rejects unknown versions.
pub const SPEC_VERSION: u64 = 1;

fn bad(problem: impl Into<String>) -> ConfigError {
    ConfigError::InvalidSpec(problem.into())
}

fn shape(err: JsonError) -> ConfigError {
    ConfigError::InvalidSpec(err.to_string())
}

/// Which terminal `build_*` method a job spec targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildTarget {
    /// [`SimBuilder::build_sim`] — the quiet sequential sim.
    Sim,
    /// [`SimBuilder::build_resilient`] — sequential fault-tolerant sim.
    Resilient,
    /// [`SimBuilder::build_event_sim`] — sequential event-driven sim.
    EventSim,
    /// [`SimBuilder::build_engine`] — the parallel cohort engine.
    Engine,
    /// [`SimBuilder::build_coordinator`] — engine plus control loop.
    Coordinator,
    /// [`SimBuilder::build_hier`] — the two-tier hierarchical engine.
    Hier,
}

impl BuildTarget {
    /// Stable snake_case wire tag.
    pub fn name(&self) -> &'static str {
        match self {
            BuildTarget::Sim => "sim",
            BuildTarget::Resilient => "resilient",
            BuildTarget::EventSim => "event_sim",
            BuildTarget::Engine => "engine",
            BuildTarget::Coordinator => "coordinator",
            BuildTarget::Hier => "hier",
        }
    }

    /// Parse a wire tag.
    pub fn from_name(name: &str) -> Result<Self, ConfigError> {
        Ok(match name {
            "sim" => BuildTarget::Sim,
            "resilient" => BuildTarget::Resilient,
            "event_sim" => BuildTarget::EventSim,
            "engine" => BuildTarget::Engine,
            "coordinator" => BuildTarget::Coordinator,
            "hier" => BuildTarget::Hier,
            other => return Err(bad(format!("unknown build target `{other}`"))),
        })
    }

    /// All targets, in wire-tag order (used by the round-trip suite).
    pub fn all() -> [BuildTarget; 6] {
        [
            BuildTarget::Sim,
            BuildTarget::Resilient,
            BuildTarget::EventSim,
            BuildTarget::Engine,
            BuildTarget::Coordinator,
            BuildTarget::Hier,
        ]
    }
}

/// A serializable device fleet. Ad-hoc `Vec<Device>` fleets handed to
/// [`SimBuilder::new`] have no wire form (device state is a simulation
/// artifact, not a config) — the wire schema describes fleets by *recipe*:
/// a paper testbed preset plus a seed, optionally replicated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceSetSpec {
    /// One of the paper's testbeds (`preset` in `1..=3`), seeded.
    Testbed {
        /// Paper testbed index: 1 (3 devices), 2 (6), 3 (10).
        preset: usize,
        /// Fleet seed (independent of the simulation seed).
        seed: u64,
    },
    /// The model list of testbed `preset`, repeated `copies` times —
    /// the recipe for populations large enough to spread over many
    /// cohorts while staying a few bytes on the wire.
    Replicated {
        /// Paper testbed index whose model list is replicated.
        preset: usize,
        /// How many times the model list repeats (>= 1).
        copies: usize,
        /// Fleet seed.
        seed: u64,
    },
}

impl DeviceSetSpec {
    fn check_preset(preset: usize) -> Result<(), ConfigError> {
        if (1..=3).contains(&preset) {
            Ok(())
        } else {
            Err(bad(format!("testbed preset must be 1..=3, got {preset}")))
        }
    }

    /// Number of devices this recipe produces.
    pub fn n_devices(&self) -> Result<usize, ConfigError> {
        let per_testbed = |preset: usize| -> Result<usize, ConfigError> {
            Self::check_preset(preset)?;
            Ok(match preset {
                1 => 3,
                2 => 6,
                _ => 10,
            })
        };
        match *self {
            DeviceSetSpec::Testbed { preset, .. } => per_testbed(preset),
            DeviceSetSpec::Replicated { preset, copies, .. } => {
                if copies == 0 {
                    return Err(bad("replicated fleet needs copies >= 1"));
                }
                Ok(per_testbed(preset)? * copies)
            }
        }
    }

    /// Materialize the fleet.
    pub fn build(&self) -> Result<Vec<fedsched_device::Device>, ConfigError> {
        self.n_devices()?; // validates preset and copies
        match *self {
            DeviceSetSpec::Testbed { preset, seed } => {
                Ok(Testbed::by_index(preset, seed).devices().to_vec())
            }
            DeviceSetSpec::Replicated {
                preset,
                copies,
                seed,
            } => {
                let base: Vec<DeviceModel> = Testbed::by_index(preset, seed).models();
                let models: Vec<DeviceModel> = base
                    .iter()
                    .copied()
                    .cycle()
                    .take(base.len() * copies)
                    .collect();
                Ok(Testbed::new(&models, seed).devices().to_vec())
            }
        }
    }

    fn to_json(self) -> JsonValue {
        match self {
            DeviceSetSpec::Testbed { preset, seed } => json::obj(vec![
                ("kind", json::str("testbed")),
                ("preset", JsonValue::Num(preset as f64)),
                ("seed", u64_to_json(seed)),
            ]),
            DeviceSetSpec::Replicated {
                preset,
                copies,
                seed,
            } => json::obj(vec![
                ("kind", json::str("replicated")),
                ("preset", JsonValue::Num(preset as f64)),
                ("copies", JsonValue::Num(copies as f64)),
                ("seed", u64_to_json(seed)),
            ]),
        }
    }

    fn from_json(v: &JsonValue) -> Result<Self, ConfigError> {
        let kind = v.req("kind").and_then(|k| k.as_str()).map_err(shape)?;
        let preset = v.req("preset").and_then(|p| p.as_usize()).map_err(shape)?;
        let seed = u64_from_json(v.req("seed").map_err(shape)?)?;
        let spec = match kind {
            "testbed" => {
                expect_fields(v, &["kind", "preset", "seed"])?;
                DeviceSetSpec::Testbed { preset, seed }
            }
            "replicated" => {
                expect_fields(v, &["kind", "preset", "copies", "seed"])?;
                let copies = v.req("copies").and_then(|c| c.as_usize()).map_err(shape)?;
                DeviceSetSpec::Replicated {
                    preset,
                    copies,
                    seed,
                }
            }
            other => return Err(bad(format!("unknown device-set kind `{other}`"))),
        };
        spec.n_devices()?;
        Ok(spec)
    }
}

/// A complete, serializable simulator configuration: everything
/// [`SimBuilder`] needs, in a form that crosses process boundaries.
///
/// Construct directly, or derive one from a configured builder with
/// [`SimBuilder::to_spec`]. Turn it back into a live simulator with
/// [`JobSpec::build`] (or [`SimBuilder::from_spec`] to keep configuring).
/// `None` everywhere means "builder default".
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Which terminal build method to invoke.
    pub target: BuildTarget,
    /// The device fleet recipe.
    pub devices: DeviceSetSpec,
    /// Per-device training workload.
    pub workload: TrainingWorkload,
    /// Device↔server link model.
    pub link: Link,
    /// Transfer payload per direction, bytes.
    pub model_bytes: f64,
    /// Master simulation seed.
    pub seed: u64,
    /// Deadline policy; `None` means [`DeadlinePolicy::Off`] (the wire
    /// form normalizes `Off` to absent).
    pub deadline: Option<DeadlinePolicy>,
    /// Transfer retry policy.
    pub retry: Option<RetryPolicy>,
    /// Disable mid-round straggler rescue.
    pub no_rescue: bool,
    /// Energy-aware rescue floor (`0.0` = builder default).
    pub rescue_soc_floor: f64,
    /// Fault model and its planned-round horizon.
    pub faults: Option<(FaultConfig, usize)>,
    /// Devices per cohort (engine-family targets).
    pub cohort_size: Option<usize>,
    /// Worker threads (engine-family targets).
    pub threads: Option<usize>,
    /// Buffered-async coordination `(buffer, eta)` (coordinator target).
    pub buffered_async: Option<(usize, f64)>,
    /// Robust aggregation rule at the device tier.
    pub aggregator: Option<AggregatorKind>,
    /// Adversary model and its planned-round horizon.
    pub adversary: Option<(AdversaryConfig, usize)>,
    /// Per-cohort execution core.
    pub engine_kind: Option<EngineKind>,
    /// Continuous mid-round churn process (event-driven targets).
    pub churn: Option<ChurnConfig>,
    /// Mid-round arrival admission policy (event-driven targets).
    pub admission: Option<AdmissionPolicy>,
    /// Edge-aggregator count (hier target).
    pub edges: Option<usize>,
    /// Edge→server backhaul link (hier target).
    pub edge_link: Option<Link>,
    /// Edge-tier aggregation rule (hier target).
    pub edge_aggregator: Option<AggregatorKind>,
    /// Server-tier aggregation rule (hier target).
    pub server_aggregator: Option<AggregatorKind>,
    /// Online bandit-driven client selection (chaos-family targets).
    pub selection: Option<SelectionConfig>,
}

impl JobSpec {
    /// A minimal spec: the given target over the given fleet and shared
    /// knobs, everything else at builder defaults.
    pub fn new(
        target: BuildTarget,
        devices: DeviceSetSpec,
        workload: TrainingWorkload,
        link: Link,
        model_bytes: f64,
        seed: u64,
    ) -> Self {
        JobSpec {
            target,
            devices,
            workload,
            link,
            model_bytes,
            seed,
            deadline: None,
            retry: None,
            no_rescue: false,
            rescue_soc_floor: 0.0,
            faults: None,
            cohort_size: None,
            threads: None,
            buffered_async: None,
            aggregator: None,
            adversary: None,
            engine_kind: None,
            churn: None,
            admission: None,
            edges: None,
            edge_link: None,
            edge_aggregator: None,
            server_aggregator: None,
            selection: None,
        }
    }

    /// Encode to a canonical [`JsonValue`]: fixed field order, absent
    /// knobs omitted. Equal specs produce equal documents.
    pub fn to_json(&self) -> JsonValue {
        let mut fields: Vec<(&str, JsonValue)> = vec![
            ("version", JsonValue::Num(SPEC_VERSION as f64)),
            ("target", json::str(self.target.name())),
            ("devices", self.devices.to_json()),
            ("workload", workload_to_json(&self.workload)),
            ("link", link_to_json(&self.link)),
            ("model_bytes", json::num(self.model_bytes)),
            ("seed", u64_to_json(self.seed)),
        ];
        if let Some(policy) = self.deadline {
            if !policy.is_off() {
                fields.push(("deadline", deadline_to_json(&policy)));
            }
        }
        if let Some(retry) = self.retry {
            fields.push(("retry", retry_to_json(&retry)));
        }
        if self.no_rescue {
            fields.push(("no_rescue", JsonValue::Bool(true)));
        }
        if self.rescue_soc_floor != 0.0 {
            fields.push(("rescue_soc_floor", json::num(self.rescue_soc_floor)));
        }
        if let Some((config, planned)) = &self.faults {
            fields.push((
                "faults",
                json::obj(vec![
                    ("config", fault_config_to_json(config)),
                    ("planned_rounds", JsonValue::Num(*planned as f64)),
                ]),
            ));
        }
        if let Some(size) = self.cohort_size {
            fields.push(("cohort_size", JsonValue::Num(size as f64)));
        }
        if let Some(threads) = self.threads {
            fields.push(("threads", JsonValue::Num(threads as f64)));
        }
        if let Some((buffer, eta)) = self.buffered_async {
            fields.push((
                "buffered_async",
                json::obj(vec![
                    ("buffer", JsonValue::Num(buffer as f64)),
                    ("eta", json::num(eta)),
                ]),
            ));
        }
        if let Some(kind) = self.aggregator {
            fields.push(("aggregator", aggregator_to_json(&kind)));
        }
        if let Some((config, planned)) = &self.adversary {
            fields.push((
                "adversary",
                json::obj(vec![
                    ("config", adversary_to_json(config)),
                    ("planned_rounds", JsonValue::Num(*planned as f64)),
                ]),
            ));
        }
        if let Some(kind) = self.engine_kind {
            let tag = match kind {
                EngineKind::Lockstep => "lockstep",
                EngineKind::EventDriven => "event_driven",
            };
            fields.push(("engine_kind", json::str(tag)));
        }
        if let Some(churn) = self.churn {
            fields.push(("churn", churn_to_json(&churn)));
        }
        if let Some(policy) = self.admission {
            let tag = match policy {
                AdmissionPolicy::Reject => "reject",
                AdmissionPolicy::NextRound => "next_round",
                AdmissionPolicy::MidRoundFill => "mid_round_fill",
            };
            fields.push(("admission", json::str(tag)));
        }
        if let Some(edges) = self.edges {
            fields.push(("edges", JsonValue::Num(edges as f64)));
        }
        if let Some(link) = self.edge_link {
            fields.push(("edge_link", link_to_json(&link)));
        }
        if let Some(kind) = self.edge_aggregator {
            fields.push(("edge_aggregator", aggregator_to_json(&kind)));
        }
        if let Some(kind) = self.server_aggregator {
            fields.push(("server_aggregator", aggregator_to_json(&kind)));
        }
        if let Some(selection) = &self.selection {
            fields.push(("selection", selection_to_json(selection)));
        }
        json::obj(fields)
    }

    /// Canonical JSON text — the byte form [`JobSpec::fingerprint`]
    /// hashes and the state store persists.
    pub fn canonical_json(&self) -> String {
        self.to_json().encode()
    }

    /// Decode a [`JsonValue`]. Strict: unknown fields, unknown tags and
    /// unsupported versions are [`ConfigError::InvalidSpec`], not silently
    /// ignored — a typoed knob must not produce a quietly different
    /// experiment.
    pub fn from_json(v: &JsonValue) -> Result<Self, ConfigError> {
        expect_fields(
            v,
            &[
                "version",
                "target",
                "devices",
                "workload",
                "link",
                "model_bytes",
                "seed",
                "deadline",
                "retry",
                "no_rescue",
                "rescue_soc_floor",
                "faults",
                "cohort_size",
                "threads",
                "buffered_async",
                "aggregator",
                "adversary",
                "engine_kind",
                "churn",
                "admission",
                "edges",
                "edge_link",
                "edge_aggregator",
                "server_aggregator",
                "selection",
            ],
        )?;
        let version = v.req("version").and_then(|x| x.as_u64()).map_err(shape)?;
        if version != SPEC_VERSION {
            return Err(bad(format!(
                "unsupported spec version {version} (this build speaks {SPEC_VERSION})"
            )));
        }
        let target =
            BuildTarget::from_name(v.req("target").and_then(|t| t.as_str()).map_err(shape)?)?;
        let mut spec = JobSpec::new(
            target,
            DeviceSetSpec::from_json(v.req("devices").map_err(shape)?)?,
            workload_from_json(v.req("workload").map_err(shape)?)?,
            link_from_json(v.req("link").map_err(shape)?)?,
            v.req("model_bytes")
                .and_then(|m| m.as_f64_lenient())
                .map_err(shape)?,
            u64_from_json(v.req("seed").map_err(shape)?)?,
        );
        if let Some(d) = v.get("deadline") {
            let policy = deadline_from_json(d)?;
            // Wire normalization: Off is expressed by omission.
            spec.deadline = (!policy.is_off()).then_some(policy);
        }
        if let Some(r) = v.get("retry") {
            spec.retry = Some(retry_from_json(r)?);
        }
        if let Some(n) = v.get("no_rescue") {
            spec.no_rescue = n.as_bool().map_err(shape)?;
        }
        if let Some(f) = v.get("rescue_soc_floor") {
            spec.rescue_soc_floor = f.as_f64_lenient().map_err(shape)?;
        }
        if let Some(f) = v.get("faults") {
            expect_fields(f, &["config", "planned_rounds"])?;
            spec.faults = Some((
                fault_config_from_json(f.req("config").map_err(shape)?)?,
                f.req("planned_rounds")
                    .and_then(|p| p.as_usize())
                    .map_err(shape)?,
            ));
        }
        if let Some(c) = v.get("cohort_size") {
            spec.cohort_size = Some(c.as_usize().map_err(shape)?);
        }
        if let Some(t) = v.get("threads") {
            spec.threads = Some(t.as_usize().map_err(shape)?);
        }
        if let Some(a) = v.get("buffered_async") {
            expect_fields(a, &["buffer", "eta"])?;
            spec.buffered_async = Some((
                a.req("buffer").and_then(|b| b.as_usize()).map_err(shape)?,
                a.req("eta")
                    .and_then(|e| e.as_f64_lenient())
                    .map_err(shape)?,
            ));
        }
        if let Some(a) = v.get("aggregator") {
            spec.aggregator = Some(aggregator_from_json(a)?);
        }
        if let Some(a) = v.get("adversary") {
            expect_fields(a, &["config", "planned_rounds"])?;
            spec.adversary = Some((
                adversary_from_json(a.req("config").map_err(shape)?)?,
                a.req("planned_rounds")
                    .and_then(|p| p.as_usize())
                    .map_err(shape)?,
            ));
        }
        if let Some(k) = v.get("engine_kind") {
            spec.engine_kind = Some(match k.as_str().map_err(shape)? {
                "lockstep" => EngineKind::Lockstep,
                "event_driven" => EngineKind::EventDriven,
                other => return Err(bad(format!("unknown engine kind `{other}`"))),
            });
        }
        if let Some(c) = v.get("churn") {
            spec.churn = Some(churn_from_json(c)?);
        }
        if let Some(a) = v.get("admission") {
            spec.admission = Some(match a.as_str().map_err(shape)? {
                "reject" => AdmissionPolicy::Reject,
                "next_round" => AdmissionPolicy::NextRound,
                "mid_round_fill" => AdmissionPolicy::MidRoundFill,
                other => return Err(bad(format!("unknown admission policy `{other}`"))),
            });
        }
        if let Some(e) = v.get("edges") {
            spec.edges = Some(e.as_usize().map_err(shape)?);
        }
        if let Some(l) = v.get("edge_link") {
            spec.edge_link = Some(link_from_json(l)?);
        }
        if let Some(a) = v.get("edge_aggregator") {
            spec.edge_aggregator = Some(aggregator_from_json(a)?);
        }
        if let Some(a) = v.get("server_aggregator") {
            spec.server_aggregator = Some(aggregator_from_json(a)?);
        }
        if let Some(s) = v.get("selection") {
            spec.selection = Some(selection_from_json(s)?);
        }
        Ok(spec)
    }

    /// Decode canonical (or hand-written) JSON text.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let v = JsonValue::parse(text).map_err(shape)?;
        JobSpec::from_json(&v)
    }

    /// FNV-1a 64 over the canonical JSON bytes — the experiment cache key
    /// and the basis of wire job IDs. Equal configs hash equally because
    /// encoding is canonical.
    pub fn fingerprint(&self) -> u64 {
        json::fnv1a64(self.canonical_json().as_bytes())
    }

    /// Materialize the simulator this spec describes, with `probe`
    /// attached for telemetry. Exactly as strict as the in-process
    /// builder: every validation error surfaces with the same
    /// [`ConfigError`] cause code.
    pub fn build(&self, probe: Probe) -> Result<BuiltSim, ConfigError> {
        let builder = SimBuilder::from_spec(self)?.probe(probe);
        let sim = match self.target {
            BuildTarget::Sim => SimKind::Sim(builder.build_sim()?),
            BuildTarget::Resilient => SimKind::Resilient(builder.build_resilient()?),
            BuildTarget::EventSim => SimKind::EventSim(builder.build_event_sim()?),
            BuildTarget::Engine => SimKind::Engine(builder.build_engine()?),
            BuildTarget::Coordinator => SimKind::Coordinator(builder.build_coordinator()?),
            BuildTarget::Hier => SimKind::Hier(builder.build_hier()?),
        };
        Ok(BuiltSim {
            sim,
            rounds_done: 0,
        })
    }
}

impl SimBuilder {
    /// Reconstruct a builder from a wire spec (minus the target, which is
    /// chosen at build time, and the probe, which is a host-side
    /// attachment — see [`JobSpec::build`]). The builder remembers the
    /// fleet recipe, so [`SimBuilder::to_spec`] round-trips.
    pub fn from_spec(spec: &JobSpec) -> Result<Self, ConfigError> {
        let mut b = SimBuilder::new(
            spec.devices.build()?,
            RoundConfig::new(spec.workload, spec.link, spec.model_bytes, spec.seed),
        );
        b.device_spec = Some(spec.devices);
        if let Some(policy) = spec.deadline {
            b = b.deadline(policy);
        }
        if let Some(retry) = spec.retry {
            b = b.retry(retry);
        }
        if spec.no_rescue {
            b = b.no_rescue();
        }
        if spec.rescue_soc_floor != 0.0 {
            b = b.rescue_soc_floor(spec.rescue_soc_floor);
        }
        if let Some((config, planned)) = &spec.faults {
            b = b.faults(config.clone(), *planned);
        }
        if let Some(size) = spec.cohort_size {
            b = b.cohort_size(size);
        }
        if let Some(threads) = spec.threads {
            b = b.threads(threads);
        }
        if let Some((buffer, eta)) = spec.buffered_async {
            b = b.buffered_async(buffer, eta);
        }
        if let Some(kind) = spec.aggregator {
            b = b.aggregator(kind);
        }
        if let Some((config, planned)) = spec.adversary {
            b = b.adversary(config, planned);
        }
        if let Some(kind) = spec.engine_kind {
            b = b.engine_kind(kind);
        }
        if let Some(churn) = spec.churn {
            b = b.churn(churn);
        }
        if let Some(policy) = spec.admission {
            b = b.admission(policy);
        }
        if let Some(edges) = spec.edges {
            b = b.edges(edges);
        }
        if let Some(link) = spec.edge_link {
            b = b.edge_link(link);
        }
        if let Some(kind) = spec.edge_aggregator {
            b = b.edge_aggregator(kind);
        }
        if let Some(kind) = spec.server_aggregator {
            b = b.server_aggregator(kind);
        }
        if let Some(config) = spec.selection {
            b = b.selection(Selection::Bandit(config));
        }
        Ok(b)
    }

    /// Serialize this builder's configuration as a wire spec targeting
    /// `target`.
    ///
    /// Fails with [`ConfigError::NotSerializable`] when the builder
    /// carries host-side objects with no wire form: an ad-hoc
    /// `Vec<Device>` fleet (only [`DeviceSetSpec`] recipes serialize), a
    /// pre-built [`injector`](SimBuilder::injector), a
    /// [`rescheduler`](SimBuilder::rescheduler) closure, or offline
    /// [`priors`](SimBuilder::priors). The probe is intentionally *not*
    /// part of the spec — telemetry attachment is the host's business.
    pub fn to_spec(&self, target: BuildTarget) -> Result<JobSpec, ConfigError> {
        let devices = self
            .device_spec
            .ok_or(ConfigError::NotSerializable("ad-hoc device fleet"))?;
        if self.injector.is_some() {
            return Err(ConfigError::NotSerializable("injector"));
        }
        if self.rescheduler.is_some() {
            return Err(ConfigError::NotSerializable("rescheduler"));
        }
        if self.priors.is_some() {
            return Err(ConfigError::NotSerializable("priors"));
        }
        let mut spec = JobSpec::new(
            target,
            devices,
            self.config.workload,
            self.config.link,
            self.config.model_bytes,
            self.config.seed,
        );
        spec.deadline = (!self.deadline.is_off()).then_some(self.deadline);
        spec.retry = self.retry;
        spec.no_rescue = !self.rescue;
        spec.rescue_soc_floor = self.rescue_soc_floor;
        spec.faults = self.faults.clone();
        spec.cohort_size = self.cohort_size;
        spec.threads = self.threads;
        spec.buffered_async = self
            .async_opts
            .map(|AsyncOptions { buffer, eta }| (buffer, eta));
        spec.aggregator = self.aggregator;
        spec.adversary = self.adversary;
        spec.engine_kind = self.engine_kind;
        spec.churn = self.churn;
        spec.admission = self.admission;
        spec.edges = self.edges;
        spec.edge_link = self.edge_link;
        spec.edge_aggregator = self.edge_aggregator;
        spec.server_aggregator = self.server_aggregator;
        spec.selection = self.selection;
        Ok(spec)
    }
}

/// What one [`BuiltSim::step`] call produced: one global round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundDigest {
    /// Global round index (0-based).
    pub round: usize,
    /// The round's synchronous makespan, seconds.
    pub makespan_s: f64,
    /// The full per-round report in its canonical `Debug` rendering —
    /// byte-stable across runs and replays, which is what the
    /// kill-and-resume bit-identity suite compares.
    pub detail: String,
}

enum SimKind {
    Sim(RoundSim),
    Resilient(ResilientRoundSim),
    EventSim(EventRoundSim),
    Engine(ParallelRoundEngine),
    Coordinator(Coordinator),
    Hier(HierEngine),
}

/// A live simulator built from a [`JobSpec`], stepped one global round at
/// a time.
///
/// One-round stepping is a load-bearing choice, not a convenience: the
/// parallel engine splices per-cohort telemetry buffers after each `run`
/// call, so `run(s, 2)` and `run(s, 1); run(s, 1)` produce *differently
/// ordered* (equally valid) traces. Stepping always one round makes the
/// trace byte stream invariant to how callers batch their advance
/// requests — the invariant the serve crate's snapshot/replay restore
/// depends on.
pub struct BuiltSim {
    sim: SimKind,
    rounds_done: usize,
}

impl BuiltSim {
    /// Advance exactly one global round.
    pub fn step(&mut self, schedule: &Schedule) -> RoundDigest {
        let round = self.rounds_done;
        let (makespan_s, detail) = match &mut self.sim {
            SimKind::Sim(sim) => {
                let report = sim.run(schedule, 1);
                (report.per_round_makespan[0], format!("{report:?}"))
            }
            SimKind::Resilient(sim) => {
                let report = sim.run(schedule, 1);
                (report.timing.per_round_makespan[0], format!("{report:?}"))
            }
            SimKind::EventSim(sim) => {
                let report = sim.run(schedule, 1);
                (report.timing.per_round_makespan[0], format!("{report:?}"))
            }
            SimKind::Engine(engine) => {
                let report = engine.run(schedule, 1);
                (report.timing.per_round_makespan[0], format!("{report:?}"))
            }
            SimKind::Coordinator(coordinator) => {
                let report = coordinator.run(schedule, 1);
                (
                    report.engine.timing.per_round_makespan[0],
                    format!("{report:?}"),
                )
            }
            SimKind::Hier(engine) => {
                let report = engine.run(schedule, 1);
                (report.timing.per_round_makespan[0], format!("{report:?}"))
            }
        };
        self.rounds_done += 1;
        RoundDigest {
            round,
            makespan_s,
            detail,
        }
    }

    /// Global rounds completed so far.
    pub fn rounds_done(&self) -> usize {
        self.rounds_done
    }
}

/// Encode a `u64` exactly: as a JSON number when it fits `f64` without
/// loss (`<= 2^53`), as a decimal string above that. Seeds are commonly
/// hashes that use all 64 bits; rounding one through `f64` would silently
/// change the experiment.
pub fn u64_to_json(v: u64) -> JsonValue {
    const EXACT_MAX: u64 = 1 << 53;
    if v <= EXACT_MAX {
        JsonValue::Num(v as f64)
    } else {
        JsonValue::Str(v.to_string())
    }
}

/// Decode a `u64` written by [`u64_to_json`] (number or decimal string).
pub fn u64_from_json(v: &JsonValue) -> Result<u64, ConfigError> {
    match v {
        JsonValue::Num(_) => v.as_u64().map_err(shape),
        JsonValue::Str(s) => s
            .parse::<u64>()
            .map_err(|_| bad(format!("expected u64, found \"{s}\""))),
        other => Err(bad(format!("expected u64, found {}", other.kind()))),
    }
}

/// Reject fields outside `allowed` — a typoed knob must fail loudly, not
/// quietly configure a different experiment.
fn expect_fields(v: &JsonValue, allowed: &[&str]) -> Result<(), ConfigError> {
    match v {
        JsonValue::Obj(fields) => {
            for (key, _) in fields {
                if !allowed.contains(&key.as_str()) {
                    return Err(bad(format!("unknown field `{key}`")));
                }
            }
            Ok(())
        }
        other => Err(bad(format!("expected object, found {}", other.kind()))),
    }
}

fn workload_to_json(w: &TrainingWorkload) -> JsonValue {
    json::obj(vec![
        ("conv_flops_per_sample", json::num(w.conv_flops_per_sample)),
        (
            "dense_flops_per_sample",
            json::num(w.dense_flops_per_sample),
        ),
        ("batch_size", JsonValue::Num(w.batch_size as f64)),
    ])
}

fn workload_from_json(v: &JsonValue) -> Result<TrainingWorkload, ConfigError> {
    expect_fields(
        v,
        &[
            "conv_flops_per_sample",
            "dense_flops_per_sample",
            "batch_size",
        ],
    )?;
    Ok(TrainingWorkload {
        conv_flops_per_sample: v
            .req("conv_flops_per_sample")
            .and_then(|x| x.as_f64_lenient())
            .map_err(shape)?,
        dense_flops_per_sample: v
            .req("dense_flops_per_sample")
            .and_then(|x| x.as_f64_lenient())
            .map_err(shape)?,
        batch_size: v
            .req("batch_size")
            .and_then(|x| x.as_usize())
            .map_err(shape)?,
    })
}

fn link_to_json(l: &Link) -> JsonValue {
    json::obj(vec![
        ("uplink_mbps", json::num(l.uplink_mbps)),
        ("downlink_mbps", json::num(l.downlink_mbps)),
        ("rtt_s", json::num(l.rtt_s)),
        ("jitter_sigma", json::num(l.jitter_sigma)),
    ])
}

fn link_from_json(v: &JsonValue) -> Result<Link, ConfigError> {
    expect_fields(
        v,
        &["uplink_mbps", "downlink_mbps", "rtt_s", "jitter_sigma"],
    )?;
    let f = |key: &str| v.req(key).and_then(|x| x.as_f64_lenient()).map_err(shape);
    Ok(Link {
        uplink_mbps: f("uplink_mbps")?,
        downlink_mbps: f("downlink_mbps")?,
        rtt_s: f("rtt_s")?,
        jitter_sigma: f("jitter_sigma")?,
    })
}

fn deadline_to_json(p: &DeadlinePolicy) -> JsonValue {
    match *p {
        DeadlinePolicy::Off => json::obj(vec![("policy", json::str("off"))]),
        DeadlinePolicy::Fixed(s) => json::obj(vec![
            ("policy", json::str("fixed")),
            ("value", json::num(s)),
        ]),
        DeadlinePolicy::MeanFactor(factor) => json::obj(vec![
            ("policy", json::str("mean_factor")),
            ("value", json::num(factor)),
        ]),
        DeadlinePolicy::Quantile(q) => json::obj(vec![
            ("policy", json::str("quantile")),
            ("value", json::num(q)),
        ]),
    }
}

fn deadline_from_json(v: &JsonValue) -> Result<DeadlinePolicy, ConfigError> {
    let policy = v.req("policy").and_then(|p| p.as_str()).map_err(shape)?;
    if policy == "off" {
        expect_fields(v, &["policy"])?;
        return Ok(DeadlinePolicy::Off);
    }
    expect_fields(v, &["policy", "value"])?;
    let value = v
        .req("value")
        .and_then(|x| x.as_f64_lenient())
        .map_err(shape)?;
    Ok(match policy {
        "fixed" => DeadlinePolicy::Fixed(value),
        "mean_factor" => DeadlinePolicy::MeanFactor(value),
        "quantile" => DeadlinePolicy::Quantile(value),
        other => return Err(bad(format!("unknown deadline policy `{other}`"))),
    })
}

fn retry_to_json(r: &RetryPolicy) -> JsonValue {
    json::obj(vec![
        ("max_attempts", JsonValue::Num(r.max_attempts as f64)),
        ("timeout_s", json::num(r.timeout_s)),
        ("base_backoff_s", json::num(r.base_backoff_s)),
        ("backoff_multiplier", json::num(r.backoff_multiplier)),
        ("max_backoff_s", json::num(r.max_backoff_s)),
        ("jitter_frac", json::num(r.jitter_frac)),
    ])
}

fn retry_from_json(v: &JsonValue) -> Result<RetryPolicy, ConfigError> {
    expect_fields(
        v,
        &[
            "max_attempts",
            "timeout_s",
            "base_backoff_s",
            "backoff_multiplier",
            "max_backoff_s",
            "jitter_frac",
        ],
    )?;
    let f = |key: &str| v.req(key).and_then(|x| x.as_f64_lenient()).map_err(shape);
    Ok(RetryPolicy {
        max_attempts: v
            .req("max_attempts")
            .and_then(|x| x.as_usize())
            .map_err(shape)?,
        timeout_s: f("timeout_s")?,
        base_backoff_s: f("base_backoff_s")?,
        backoff_multiplier: f("backoff_multiplier")?,
        max_backoff_s: f("max_backoff_s")?,
        jitter_frac: f("jitter_frac")?,
    })
}

fn churn_to_json(c: &ChurnConfig) -> JsonValue {
    json::obj(vec![
        ("depart_rate", json::num(c.depart_rate)),
        ("arrive_rate", json::num(c.arrive_rate)),
        ("horizon_s", json::num(c.horizon_s)),
    ])
}

fn churn_from_json(v: &JsonValue) -> Result<ChurnConfig, ConfigError> {
    expect_fields(v, &["depart_rate", "arrive_rate", "horizon_s"])?;
    let f = |key: &str| v.req(key).and_then(|x| x.as_f64_lenient()).map_err(shape);
    Ok(ChurnConfig {
        depart_rate: f("depart_rate")?,
        arrive_rate: f("arrive_rate")?,
        horizon_s: f("horizon_s")?,
    })
}

fn drift_to_json(d: &DriftConfig) -> JsonValue {
    json::obj(vec![
        ("sigma", json::num(d.sigma)),
        ("max_slowdown", json::num(d.max_slowdown)),
    ])
}

fn drift_from_json(v: &JsonValue) -> Result<DriftConfig, ConfigError> {
    expect_fields(v, &["sigma", "max_slowdown"])?;
    let f = |key: &str| v.req(key).and_then(|x| x.as_f64_lenient()).map_err(shape);
    Ok(DriftConfig {
        sigma: f("sigma")?,
        max_slowdown: f("max_slowdown")?,
    })
}

/// Tagged policy object plus the cohort size and the optional pinned
/// stream seed (`MaybeSeeded::inherit()` is expressed by omission, so an
/// inherited seed never leaks a redundant copy of the master seed into
/// the canonical bytes).
fn selection_to_json(s: &SelectionConfig) -> JsonValue {
    let mut policy: Vec<(&str, JsonValue)> = vec![("kind", json::str(s.policy.name()))];
    match s.policy {
        PolicyKind::EpsilonGreedy { epsilon } => policy.push(("epsilon", json::num(epsilon))),
        PolicyKind::Ucb1 { c } => policy.push(("c", json::num(c))),
        PolicyKind::ThompsonSampling => {}
    }
    let mut fields: Vec<(&str, JsonValue)> = vec![
        ("policy", json::obj(policy)),
        ("k", JsonValue::Num(s.k as f64)),
    ];
    if let Some(seed) = s.seed.seed {
        fields.push(("seed", u64_to_json(seed)));
    }
    json::obj(fields)
}

fn selection_from_json(v: &JsonValue) -> Result<SelectionConfig, ConfigError> {
    expect_fields(v, &["policy", "k", "seed"])?;
    let p = v.req("policy").map_err(shape)?;
    let policy = match p.req("kind").and_then(|k| k.as_str()).map_err(shape)? {
        "epsilon_greedy" => {
            expect_fields(p, &["kind", "epsilon"])?;
            PolicyKind::EpsilonGreedy {
                epsilon: p
                    .req("epsilon")
                    .and_then(|e| e.as_f64_lenient())
                    .map_err(shape)?,
            }
        }
        "ucb1" => {
            expect_fields(p, &["kind", "c"])?;
            PolicyKind::Ucb1 {
                c: p.req("c").and_then(|c| c.as_f64_lenient()).map_err(shape)?,
            }
        }
        "thompson" => {
            expect_fields(p, &["kind"])?;
            PolicyKind::ThompsonSampling
        }
        other => return Err(bad(format!("unknown selection policy `{other}`"))),
    };
    let seed = match v.get("seed") {
        Some(s) => MaybeSeeded::pinned(u64_from_json(s)?),
        None => MaybeSeeded::inherit(),
    };
    Ok(SelectionConfig {
        policy,
        k: v.req("k").and_then(|k| k.as_usize()).map_err(shape)?,
        seed,
    })
}

fn fault_config_to_json(c: &FaultConfig) -> JsonValue {
    let mut fields: Vec<(&str, JsonValue)> = vec![
        ("crash_prob", json::num(c.crash_prob)),
        ("reboot_rounds", JsonValue::Num(c.reboot_rounds as f64)),
        ("churn_prob", json::num(c.churn_prob)),
        ("contention_prob", json::num(c.contention_prob)),
        ("contention_factor", json::num(c.contention_factor)),
        ("loss_prob", json::num(c.loss_prob)),
        ("outage_prob", json::num(c.outage_prob)),
        ("outage_horizon_s", json::num(c.outage_horizon_s)),
        ("outage_duration_s", json::num(c.outage_duration_s)),
        ("group_outage_prob", json::num(c.group_outage_prob)),
        ("group_count", JsonValue::Num(c.group_count as f64)),
        (
            "group_outage_rounds",
            JsonValue::Num(c.group_outage_rounds as f64),
        ),
    ];
    if let Some(churn) = c.churn_process {
        fields.push(("churn_process", churn_to_json(&churn)));
    }
    if let Some(drift) = c.drift {
        fields.push(("drift", drift_to_json(&drift)));
    }
    json::obj(fields)
}

fn fault_config_from_json(v: &JsonValue) -> Result<FaultConfig, ConfigError> {
    expect_fields(
        v,
        &[
            "crash_prob",
            "reboot_rounds",
            "churn_prob",
            "contention_prob",
            "contention_factor",
            "loss_prob",
            "outage_prob",
            "outage_horizon_s",
            "outage_duration_s",
            "group_outage_prob",
            "group_count",
            "group_outage_rounds",
            "churn_process",
            "drift",
        ],
    )?;
    let f = |key: &str| v.req(key).and_then(|x| x.as_f64_lenient()).map_err(shape);
    let n = |key: &str| v.req(key).and_then(|x| x.as_usize()).map_err(shape);
    let mut config = FaultConfig::none();
    config.crash_prob = f("crash_prob")?;
    config.reboot_rounds = n("reboot_rounds")?;
    config.churn_prob = f("churn_prob")?;
    config.contention_prob = f("contention_prob")?;
    config.contention_factor = f("contention_factor")?;
    config.loss_prob = f("loss_prob")?;
    config.outage_prob = f("outage_prob")?;
    config.outage_horizon_s = f("outage_horizon_s")?;
    config.outage_duration_s = f("outage_duration_s")?;
    config.group_outage_prob = f("group_outage_prob")?;
    config.group_count = n("group_count")?;
    config.group_outage_rounds = n("group_outage_rounds")?;
    config.churn_process = match v.get("churn_process") {
        Some(c) => Some(churn_from_json(c)?),
        None => None,
    };
    config.drift = match v.get("drift") {
        Some(d) => Some(drift_from_json(d)?),
        None => None,
    };
    Ok(config)
}

fn aggregator_to_json(k: &AggregatorKind) -> JsonValue {
    let mut fields: Vec<(&str, JsonValue)> = vec![("kind", json::str(k.name()))];
    match *k {
        AggregatorKind::FedAvg | AggregatorKind::Median => {}
        AggregatorKind::TrimmedMean { trim } => {
            fields.push(("trim", JsonValue::Num(trim as f64)));
        }
        AggregatorKind::NormClip { tau } => fields.push(("tau", json::num(tau))),
        AggregatorKind::Krum { f } => fields.push(("f", JsonValue::Num(f as f64))),
        AggregatorKind::MultiKrum { f, k } => {
            fields.push(("f", JsonValue::Num(f as f64)));
            fields.push(("k", JsonValue::Num(k as f64)));
        }
    }
    json::obj(fields)
}

fn aggregator_from_json(v: &JsonValue) -> Result<AggregatorKind, ConfigError> {
    let kind = v.req("kind").and_then(|k| k.as_str()).map_err(shape)?;
    let n = |key: &str| v.req(key).and_then(|x| x.as_usize()).map_err(shape);
    Ok(match kind {
        "fedavg" => {
            expect_fields(v, &["kind"])?;
            AggregatorKind::FedAvg
        }
        "median" => {
            expect_fields(v, &["kind"])?;
            AggregatorKind::Median
        }
        "trimmed_mean" => {
            expect_fields(v, &["kind", "trim"])?;
            AggregatorKind::TrimmedMean { trim: n("trim")? }
        }
        "norm_clip" => {
            expect_fields(v, &["kind", "tau"])?;
            AggregatorKind::NormClip {
                tau: v
                    .req("tau")
                    .and_then(|x| x.as_f64_lenient())
                    .map_err(shape)?,
            }
        }
        "krum" => {
            expect_fields(v, &["kind", "f"])?;
            AggregatorKind::Krum { f: n("f")? }
        }
        "multi_krum" => {
            expect_fields(v, &["kind", "f", "k"])?;
            AggregatorKind::MultiKrum {
                f: n("f")?,
                k: n("k")?,
            }
        }
        other => return Err(bad(format!("unknown aggregator kind `{other}`"))),
    })
}

fn attack_to_json(a: &AttackKind) -> JsonValue {
    let mut fields: Vec<(&str, JsonValue)> = vec![("kind", json::str(a.name()))];
    match *a {
        AttackKind::SignFlip | AttackKind::LabelFlip => {}
        AttackKind::Boost { factor } => fields.push(("factor", json::num(factor))),
        AttackKind::GaussianNoise { sigma } => fields.push(("sigma", json::num(sigma))),
    }
    json::obj(fields)
}

fn attack_from_json(v: &JsonValue) -> Result<AttackKind, ConfigError> {
    let kind = v.req("kind").and_then(|k| k.as_str()).map_err(shape)?;
    let f = |key: &str| v.req(key).and_then(|x| x.as_f64_lenient()).map_err(shape);
    Ok(match kind {
        "sign_flip" => {
            expect_fields(v, &["kind"])?;
            AttackKind::SignFlip
        }
        "label_flip" => {
            expect_fields(v, &["kind"])?;
            AttackKind::LabelFlip
        }
        "boost" => {
            expect_fields(v, &["kind", "factor"])?;
            AttackKind::Boost {
                factor: f("factor")?,
            }
        }
        "gaussian_noise" => {
            expect_fields(v, &["kind", "sigma"])?;
            AttackKind::GaussianNoise { sigma: f("sigma")? }
        }
        other => return Err(bad(format!("unknown attack kind `{other}`"))),
    })
}

fn adversary_to_json(a: &AdversaryConfig) -> JsonValue {
    json::obj(vec![
        ("attacker_frac", json::num(a.attacker_frac)),
        ("attack", attack_to_json(&a.attack)),
        (
            "collusion_groups",
            JsonValue::Num(a.collusion_groups as f64),
        ),
        ("active_prob", json::num(a.active_prob)),
    ])
}

fn adversary_from_json(v: &JsonValue) -> Result<AdversaryConfig, ConfigError> {
    expect_fields(
        v,
        &["attacker_frac", "attack", "collusion_groups", "active_prob"],
    )?;
    let mut config = AdversaryConfig::none();
    config.attacker_frac = v
        .req("attacker_frac")
        .and_then(|x| x.as_f64_lenient())
        .map_err(shape)?;
    config.attack = attack_from_json(v.req("attack").map_err(shape)?)?;
    config.collusion_groups = v
        .req("collusion_groups")
        .and_then(|x| x.as_usize())
        .map_err(shape)?;
    config.active_prob = v
        .req("active_prob")
        .and_then(|x| x.as_f64_lenient())
        .map_err(shape)?;
    Ok(config)
}

/// Encode a [`Schedule`] (serve snapshots persist the job's schedule next
/// to its spec).
pub fn schedule_to_json(s: &Schedule) -> JsonValue {
    json::obj(vec![
        (
            "shards",
            JsonValue::Arr(s.shards.iter().map(|&k| JsonValue::Num(k as f64)).collect()),
        ),
        ("shard_size", json::num(s.shard_size)),
    ])
}

/// Decode a [`Schedule`] written by [`schedule_to_json`].
pub fn schedule_from_json(v: &JsonValue) -> Result<Schedule, ConfigError> {
    expect_fields(v, &["shards", "shard_size"])?;
    let shards = v
        .req("shards")
        .and_then(|s| s.as_arr())
        .map_err(shape)?
        .iter()
        .map(|x| x.as_usize())
        .collect::<Result<Vec<_>, _>>()
        .map_err(shape)?;
    let shard_size = v
        .req("shard_size")
        .and_then(|x| x.as_f64_lenient())
        .map_err(shape)?;
    Ok(Schedule::new(shards, shard_size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_device::Device;

    fn base_spec(target: BuildTarget) -> JobSpec {
        JobSpec::new(
            target,
            DeviceSetSpec::Testbed { preset: 1, seed: 7 },
            TrainingWorkload::lenet(),
            Link::wifi_campus(),
            2.5e6,
            7,
        )
    }

    #[test]
    fn minimal_spec_round_trips_through_json() {
        let spec = base_spec(BuildTarget::Sim);
        let text = spec.canonical_json();
        assert_eq!(JobSpec::parse(&text).unwrap(), spec);
        // Canonical: encoding the decoded spec reproduces the bytes.
        assert_eq!(JobSpec::parse(&text).unwrap().canonical_json(), text);
    }

    #[test]
    fn loaded_spec_round_trips_with_nonfinite_and_big_seed() {
        let mut spec = base_spec(BuildTarget::Coordinator);
        spec.seed = u64::MAX - 3; // exercises the string encoding
        spec.devices = DeviceSetSpec::Replicated {
            preset: 2,
            copies: 4,
            seed: (1 << 60) + 1,
        };
        spec.deadline = Some(DeadlinePolicy::Quantile(0.9));
        spec.retry = Some(RetryPolicy::single_attempt()); // timeout_s = inf
        spec.no_rescue = true;
        spec.rescue_soc_floor = 0.15;
        spec.faults = Some((
            FaultConfig::none().with_crash_prob(0.2).with_loss_prob(0.1),
            8,
        ));
        spec.cohort_size = Some(4);
        spec.threads = Some(2);
        spec.aggregator = Some(AggregatorKind::MultiKrum { f: 1, k: 2 });
        spec.adversary = Some((
            AdversaryConfig::none().with_attackers(0.2, AttackKind::Boost { factor: 8.0 }),
            8,
        ));
        spec.engine_kind = Some(EngineKind::EventDriven);
        let text = spec.canonical_json();
        let back = JobSpec::parse(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn builder_round_trips_through_spec() {
        let mut spec = base_spec(BuildTarget::Engine);
        spec.faults = Some((FaultConfig::none().with_crash_prob(0.3), 4));
        spec.deadline = Some(DeadlinePolicy::Fixed(55.0));
        spec.threads = Some(2);
        let builder = SimBuilder::from_spec(&spec).unwrap();
        assert_eq!(builder.to_spec(BuildTarget::Engine).unwrap(), spec);
    }

    #[test]
    fn adhoc_fleets_and_closures_are_not_serializable() {
        let devices: Vec<Device> = Testbed::testbed_1(7).devices().to_vec();
        let config = RoundConfig::new(TrainingWorkload::lenet(), Link::wifi_campus(), 2.5e6, 7);
        let err = SimBuilder::new(devices, config)
            .to_spec(BuildTarget::Sim)
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::NotSerializable("ad-hoc device fleet"));
        assert_eq!(err.cause_code(), "not_serializable");

        let spec = base_spec(BuildTarget::Resilient);
        let err = SimBuilder::from_spec(&spec)
            .unwrap()
            .injector(fedsched_faults::FaultInjector::quiet(3))
            .to_spec(BuildTarget::Resilient)
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::NotSerializable("injector"));
    }

    #[test]
    fn malformed_documents_are_invalid_spec() {
        for text in [
            "not json at all",
            r#"{"version":1}"#,                 // missing required fields
            r#"{"version":99,"target":"sim"}"#, // future version
        ] {
            let err = JobSpec::parse(text).err().unwrap();
            assert_eq!(err.cause_code(), "invalid_spec", "{text}");
        }

        // Unknown fields fail loudly rather than configuring silently.
        let mut doc = base_spec(BuildTarget::Sim).canonical_json();
        doc.insert_str(doc.len() - 1, r#","cohort_sizes":64"#);
        let err = JobSpec::parse(&doc).err().unwrap();
        assert!(matches!(err, ConfigError::InvalidSpec(_)), "{err}");
        assert!(err.to_string().contains("cohort_sizes"));

        // Unknown tags too.
        let doc = base_spec(BuildTarget::Sim)
            .canonical_json()
            .replace("\"sim\"", "\"simulator\"");
        assert_eq!(
            JobSpec::parse(&doc).err().unwrap().cause_code(),
            "invalid_spec"
        );
    }

    #[test]
    fn build_surfaces_the_same_config_errors_as_the_builder() {
        // cohort_size on the quiet sim: unsupported_option, same as
        // calling .cohort_size().build_sim() in-process.
        let mut spec = base_spec(BuildTarget::Sim);
        spec.cohort_size = Some(4);
        let err = spec.build(Probe::disabled()).err().unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("cohort_size"));

        let mut spec = base_spec(BuildTarget::Engine);
        spec.cohort_size = Some(0);
        let err = spec.build(Probe::disabled()).err().unwrap();
        assert_eq!(err, ConfigError::ZeroCohortSize);

        let mut spec = base_spec(BuildTarget::Resilient);
        spec.deadline = Some(DeadlinePolicy::Fixed(-2.0));
        let err = spec.build(Probe::disabled()).err().unwrap();
        assert_eq!(err.cause_code(), "invalid_deadline");
    }

    #[test]
    fn built_sim_steps_match_batch_runs() {
        let spec = base_spec(BuildTarget::Engine);
        let schedule = Schedule::new(vec![10, 10, 10], 100.0);
        let mut stepped = spec.build(Probe::disabled()).unwrap();
        let digests: Vec<RoundDigest> = (0..3).map(|_| stepped.step(&schedule)).collect();
        assert_eq!(stepped.rounds_done(), 3);
        assert_eq!(digests[2].round, 2);

        // Stepping is deterministic: a second build replays identically.
        let mut replay = spec.build(Probe::disabled()).unwrap();
        let replay_digests: Vec<RoundDigest> = (0..3).map(|_| replay.step(&schedule)).collect();
        assert_eq!(digests, replay_digests);

        // And the per-round makespans agree with one batched engine run.
        let mut batch = SimBuilder::from_spec(&spec)
            .unwrap()
            .build_engine()
            .unwrap();
        let report = batch.run(&schedule, 3);
        let stepped_makespans: Vec<f64> = digests.iter().map(|d| d.makespan_s).collect();
        assert_eq!(report.timing.per_round_makespan, stepped_makespans);
    }

    #[test]
    fn replicated_fleets_scale_the_testbed() {
        let spec = DeviceSetSpec::Replicated {
            preset: 1,
            copies: 3,
            seed: 11,
        };
        assert_eq!(spec.n_devices().unwrap(), 9);
        assert_eq!(spec.build().unwrap().len(), 9);
        assert!(DeviceSetSpec::Testbed { preset: 4, seed: 0 }
            .build()
            .is_err());
        assert!(DeviceSetSpec::Replicated {
            preset: 1,
            copies: 0,
            seed: 0
        }
        .build()
        .is_err());
    }

    #[test]
    fn schedule_round_trips() {
        let s = Schedule::new(vec![10, 0, 25], 100.0);
        let back = schedule_from_json(&schedule_to_json(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn selection_and_drift_round_trip_through_json() {
        for policy in [
            PolicyKind::EpsilonGreedy { epsilon: 0.1 },
            PolicyKind::Ucb1 { c: 1.5 },
            PolicyKind::ThompsonSampling,
        ] {
            for seed in [MaybeSeeded::inherit(), MaybeSeeded::pinned(u64::MAX - 9)] {
                let mut spec = base_spec(BuildTarget::Resilient);
                spec.selection = Some(SelectionConfig { policy, k: 3, seed });
                spec.faults = Some((
                    FaultConfig::none()
                        .with_crash_prob(0.1)
                        .with_drift(DriftConfig::new(0.05, 4.0)),
                    8,
                ));
                let text = spec.canonical_json();
                let back = JobSpec::parse(&text).unwrap();
                assert_eq!(back, spec);
                assert_eq!(back.canonical_json(), text);
                // And through the builder: from_spec -> to_spec is the
                // identity for selection-carrying specs too.
                let builder = SimBuilder::from_spec(&spec).unwrap();
                assert_eq!(builder.to_spec(BuildTarget::Resilient).unwrap(), spec);
            }
        }
        // An inherited stream seed is expressed by omission.
        let mut spec = base_spec(BuildTarget::EventSim);
        spec.selection = Some(SelectionConfig::new(PolicyKind::ThompsonSampling, 2));
        assert!(!spec.canonical_json().contains("\"seed\"},"));
        // Unknown policy tags and malformed knobs fail loudly.
        let doc = spec.canonical_json().replace("thompson", "bayes");
        assert_eq!(
            JobSpec::parse(&doc).err().unwrap().cause_code(),
            "invalid_spec"
        );
        // Selection specs build, and an invalid k surfaces the builder's
        // typed cause code on the wire path too.
        let mut spec = base_spec(BuildTarget::Resilient);
        spec.selection = Some(SelectionConfig::new(PolicyKind::Ucb1 { c: 1.0 }, 2));
        assert!(spec.build(Probe::disabled()).is_ok());
        spec.selection = Some(SelectionConfig::new(PolicyKind::Ucb1 { c: 1.0 }, 0));
        let err = spec.build(Probe::disabled()).err().unwrap();
        assert_eq!(err.cause_code(), "invalid_selection");
    }
}
