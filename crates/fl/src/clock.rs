//! The single simulated-clock vocabulary shared by the lockstep and
//! event-driven round paths.
//!
//! Historically [`ResilientRoundSim`](crate::ResilientRoundSim) computed
//! deadline cuts and crash-detection times inline in its per-round sweep.
//! With a second execution path ([`EventRoundSim`](crate::EventRoundSim))
//! replaying the same rounds from an event queue, any off-by-one between
//! two copies of that arithmetic would surface as trace drift in the
//! differential suites. These helpers are that arithmetic, extracted once:
//! both paths call the same functions, so the differential tests compare a
//! single time source.
//!
//! All times are simulated seconds, relative to the round's start.

/// What a per-round deadline leaves of a straggler's work.
///
/// A device that would finish at `comm + compute > deadline_s` is cut off
/// at the deadline with partial credit: the shards completed by then
/// (never all of them — a cut user is by definition unfinished), and the
/// compute span it actually occupied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineCut {
    /// Shards completed before the cutoff (strictly less than scheduled).
    pub done: usize,
    /// Compute seconds spent before the cutoff (`deadline - comm`,
    /// clamped at zero for a device whose transfer alone blew the
    /// deadline).
    pub span_compute: f64,
}

/// Resolve the partial credit for a device cut by `deadline_s`.
///
/// `shards` is the device's scheduled shard count (must be positive),
/// `comm` its completed transfer time and `compute` its full training
/// time. Progress is linear in compute time — the paper's cost model is
/// per-sample affine, so shards complete at a uniform rate.
pub fn deadline_cut(shards: usize, comm: f64, compute: f64, deadline_s: f64) -> DeadlineCut {
    debug_assert!(shards > 0, "deadline cut needs scheduled work");
    let progress = if compute > 0.0 {
        ((deadline_s - comm) / compute).clamp(0.0, 1.0)
    } else {
        0.0
    };
    DeadlineCut {
        done: ((shards as f64 * progress).floor() as usize).min(shards - 1),
        span_compute: (deadline_s - comm).max(0.0),
    }
}

/// When the server notices that crashed users are gone.
///
/// With a deadline set, absence is detected at the deadline. Without one,
/// the server only notices once everyone who will respond has responded
/// (`responder_max`); if *nobody* responds, the last failure itself bounds
/// the wait (`fail_max`).
pub fn crash_detection(deadline_s: Option<f64>, responder_max: f64, fail_max: f64) -> f64 {
    deadline_s.unwrap_or(if responder_max > 0.0 {
        responder_max
    } else {
        fail_max
    })
}

/// When a rescue transfer to a survivor can start: not before the
/// survivor's own finish, and not before the server has detected the
/// failures whose shards it is inheriting.
pub fn rescue_available(finish: f64, detection: f64) -> f64 {
    finish.max(detection)
}

/// When a mid-round-admitted arrival can start on orphaned work: not
/// before it arrived, and not before the server has detected the failures
/// that orphaned the shards it is inheriting. Same shape as
/// [`rescue_available`], named separately because the first operand is an
/// arrival timestamp, not a survivor finish.
pub fn admission_start(arrive_s: f64, detection: f64) -> f64 {
    arrive_s.max(detection)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_is_proportional_to_compute_progress() {
        // 10 shards, 2s comm, 10s compute, cut at 7s: 5s of compute done
        // out of 10 => half the shards.
        let cut = deadline_cut(10, 2.0, 10.0, 7.0);
        assert_eq!(cut.done, 5);
        assert_eq!(cut.span_compute, 5.0);
    }

    #[test]
    fn cut_never_awards_all_shards() {
        // Progress rounds to 100% but a cut user is by definition
        // unfinished: cap at shards - 1.
        let cut = deadline_cut(4, 0.0, 10.0, 9.999_999_999);
        assert_eq!(cut.done, 3);
    }

    #[test]
    fn cut_with_comm_past_deadline_is_zero() {
        let cut = deadline_cut(5, 8.0, 10.0, 6.0);
        assert_eq!(cut.done, 0);
        assert_eq!(cut.span_compute, 0.0);
    }

    #[test]
    fn cut_with_zero_compute_makes_no_progress() {
        let cut = deadline_cut(3, 1.0, 0.0, 5.0);
        assert_eq!(cut.done, 0);
        assert_eq!(cut.span_compute, 4.0);
    }

    #[test]
    fn detection_prefers_deadline_then_responders_then_failures() {
        assert_eq!(crash_detection(Some(30.0), 100.0, 50.0), 30.0);
        assert_eq!(crash_detection(None, 100.0, 50.0), 100.0);
        assert_eq!(crash_detection(None, 0.0, 50.0), 50.0);
        assert_eq!(crash_detection(None, 0.0, 0.0), 0.0);
    }

    #[test]
    fn rescue_waits_for_both_finish_and_detection() {
        assert_eq!(rescue_available(10.0, 4.0), 10.0);
        assert_eq!(rescue_available(4.0, 10.0), 10.0);
    }

    #[test]
    fn admission_waits_for_both_arrival_and_detection() {
        assert_eq!(admission_start(12.0, 4.0), 12.0);
        assert_eq!(admission_start(4.0, 12.0), 12.0);
        assert_eq!(admission_start(5.0, 5.0), 5.0);
    }
}
