//! One shared, fallible construction surface for every simulator in this
//! crate.
//!
//! Historically each sim grew its own positional constructor plus a trail
//! of panicking `with_*` builders; call sites repeated the same five
//! arguments in the same order and learned about bad configuration at
//! runtime, mid-panic. [`SimBuilder`] replaces that: one [`RoundConfig`]
//! carries the knobs every path shares (workload, link, payload size,
//! seed), chainable setters record intent without validating eagerly, and
//! the terminal `build_*` methods validate everything at once, returning a
//! typed [`ConfigError`] instead of panicking. The old positional
//! constructors went through a `#[deprecated]`-shim cycle and are gone;
//! the builder — and its wire twin, [`JobSpec`](crate::spec::JobSpec) —
//! is the only construction path.
//!
//! ```
//! use fedsched_fl::{RoundConfig, SimBuilder};
//! use fedsched_device::Testbed;
//! use fedsched_net::Link;
//! use fedsched_device::TrainingWorkload;
//!
//! let config = RoundConfig::new(TrainingWorkload::lenet(), Link::wifi_campus(), 2.5e6, 7);
//! let sim = SimBuilder::new(Testbed::testbed_1(7).devices().to_vec(), config)
//!     .build_sim()
//!     .unwrap();
//! # let _ = sim;
//! ```

use std::fmt;

use fedsched_bandit::SelectionConfig;
use fedsched_core::{DeadlinePolicy, Scheduler};
use fedsched_device::{Device, TrainingWorkload};
use fedsched_faults::{AdversaryConfig, AdversaryPlan, ChurnConfig, FaultConfig, FaultInjector};
use fedsched_net::{Link, RetryPolicy};
use fedsched_profiler::LinearProfile;
use fedsched_robust::AggregatorKind;
use fedsched_telemetry::Probe;

use crate::cohorts::{ChaosOptions, EngineKind, ParallelRoundEngine};
use crate::coordinator::{CoordinationMode, Coordinator};
use crate::eventsim::{AdmissionPolicy, EventRoundSim};
use crate::hier::HierEngine;
use crate::resilient::ResilientRoundSim;
use crate::roundsim::RoundSim;

/// Why a simulator could not be built or reconfigured.
///
/// Every variant has a stable machine-readable [`cause_code`] (snake_case,
/// never reworded) so scripts can branch on failures without parsing the
/// human-oriented `Display` text.
///
/// [`cause_code`]: ConfigError::cause_code
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Cohort size of zero devices.
    ZeroCohortSize,
    /// Worker pool of zero threads.
    ZeroThreads,
    /// A builder was applied after the first run already froze the
    /// configuration; the payload names the offending knob.
    ConfiguredAfterRun(&'static str),
    /// Every user in a federated training setup is idle.
    EmptyAssignment,
    /// Malformed deadline policy; the payload is the violated rule.
    InvalidDeadline(&'static str),
    /// Rescue SoC floor outside `[0, 1]`.
    InvalidSocFloor(f64),
    /// Malformed retry policy; the payload is the violated rule.
    InvalidRetry(&'static str),
    /// Malformed buffered-async options; the payload is the violated rule.
    InvalidAsync(&'static str),
    /// A knob that the requested build target does not support; the
    /// payload names the knob.
    UnsupportedOption(&'static str),
    /// A per-device input whose length does not match the cohort.
    ArityMismatch {
        /// What was mis-sized (e.g. `"priors"`, `"fault plan"`).
        what: &'static str,
        /// The cohort size.
        expected: usize,
        /// The length actually supplied.
        got: usize,
    },
    /// Rescheduling interval of zero rounds.
    ZeroRescheduleInterval,
    /// Malformed robust-aggregator kind; the payload is the violated rule.
    InvalidAggregator(&'static str),
    /// Malformed adversary configuration; the payload is the violated rule.
    InvalidAdversary(&'static str),
    /// Malformed churn process or admission policy combination; the
    /// payload is the violated rule.
    InvalidChurn(&'static str),
    /// Malformed hierarchical topology (edge/cohort geometry); the
    /// payload is the violated rule.
    InvalidTopology(&'static str),
    /// A configuration that cannot be expressed as a wire
    /// [`JobSpec`](crate::spec::JobSpec) — it carries host-side objects
    /// (custom injectors, reschedulers, priors, ad-hoc device fleets) with
    /// no serial form. The payload names the offending knob.
    NotSerializable(&'static str),
    /// A wire [`JobSpec`](crate::spec::JobSpec) document that is
    /// malformed: bad JSON shape, an unknown field, or an unrecognized
    /// tag value. The payload describes the problem.
    InvalidSpec(String),
    /// Malformed online client-selection configuration (bad policy
    /// parameter, zero cohort) or a knob combination selection cannot
    /// coexist with; the payload is the violated rule.
    InvalidSelection(&'static str),
}

impl ConfigError {
    /// Stable machine-readable cause tag.
    ///
    /// The strings are `pub const`s in [`fedsched_core::causes`] — one
    /// exhaustive table shared with the wire layer, so the code a script
    /// matches in-process is byte-for-byte the code `fedsched-serve`
    /// returns in HTTP error bodies.
    pub fn cause_code(&self) -> &'static str {
        use fedsched_core::causes;
        match self {
            ConfigError::ZeroCohortSize => causes::ZERO_COHORT_SIZE,
            ConfigError::ZeroThreads => causes::ZERO_THREADS,
            ConfigError::ConfiguredAfterRun(_) => causes::CONFIGURED_AFTER_RUN,
            ConfigError::EmptyAssignment => causes::EMPTY_ASSIGNMENT,
            ConfigError::InvalidDeadline(_) => causes::INVALID_DEADLINE,
            ConfigError::InvalidSocFloor(_) => causes::INVALID_SOC_FLOOR,
            ConfigError::InvalidRetry(_) => causes::INVALID_RETRY,
            ConfigError::InvalidAsync(_) => causes::INVALID_ASYNC,
            ConfigError::UnsupportedOption(_) => causes::UNSUPPORTED_OPTION,
            ConfigError::ArityMismatch { .. } => causes::ARITY_MISMATCH,
            ConfigError::ZeroRescheduleInterval => causes::ZERO_RESCHEDULE_INTERVAL,
            ConfigError::InvalidAggregator(_) => causes::INVALID_AGGREGATOR,
            ConfigError::InvalidAdversary(_) => causes::INVALID_ADVERSARY,
            ConfigError::InvalidChurn(_) => causes::INVALID_CHURN,
            ConfigError::InvalidTopology(_) => causes::INVALID_TOPOLOGY,
            ConfigError::NotSerializable(_) => causes::NOT_SERIALIZABLE,
            ConfigError::InvalidSpec(_) => causes::INVALID_SPEC,
            ConfigError::InvalidSelection(_) => causes::INVALID_SELECTION,
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCohortSize => write!(f, "cohort size must be positive"),
            ConfigError::ZeroThreads => write!(f, "thread count must be positive"),
            ConfigError::ConfiguredAfterRun(what) => {
                write!(f, "cannot set {what} after the first run")
            }
            ConfigError::EmptyAssignment => {
                write!(f, "federated run needs at least one user with data")
            }
            ConfigError::InvalidDeadline(rule) => write!(f, "invalid deadline policy: {rule}"),
            ConfigError::InvalidSocFloor(floor) => {
                write!(f, "rescue SoC floor must be in [0, 1], got {floor}")
            }
            ConfigError::InvalidRetry(rule) => write!(f, "invalid retry policy: {rule}"),
            ConfigError::InvalidAsync(rule) => write!(f, "invalid async options: {rule}"),
            ConfigError::UnsupportedOption(what) => {
                write!(f, "{what} is not supported by this build target")
            }
            ConfigError::ArityMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what} sized for {got} devices, cohort has {expected}"),
            ConfigError::ZeroRescheduleInterval => {
                write!(f, "rescheduling interval must be positive")
            }
            ConfigError::InvalidAggregator(rule) => {
                write!(f, "invalid robust aggregator: {rule}")
            }
            ConfigError::InvalidAdversary(rule) => {
                write!(f, "invalid adversary config: {rule}")
            }
            ConfigError::InvalidChurn(rule) => {
                write!(f, "invalid churn config: {rule}")
            }
            ConfigError::InvalidTopology(rule) => {
                write!(f, "invalid hierarchical topology: {rule}")
            }
            ConfigError::NotSerializable(what) => {
                write!(f, "{what} has no wire form and cannot appear in a job spec")
            }
            ConfigError::InvalidSpec(problem) => {
                write!(f, "invalid job spec: {problem}")
            }
            ConfigError::InvalidSelection(rule) => {
                write!(f, "invalid selection config: {rule}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The four knobs every round-level simulator shares: what each device
/// computes, how bytes move, how many bytes move, and the master seed.
#[derive(Debug, Clone, Copy)]
pub struct RoundConfig {
    /// Device-side training workload (per-sample cost model).
    pub workload: TrainingWorkload,
    /// Uplink/downlink model.
    pub link: Link,
    /// Transfer payload per direction, bytes.
    pub model_bytes: f64,
    /// Master RNG seed; everything stochastic derives from it.
    pub seed: u64,
}

impl RoundConfig {
    /// Bundle the shared simulator knobs.
    pub fn new(workload: TrainingWorkload, link: Link, model_bytes: f64, seed: u64) -> Self {
        RoundConfig {
            workload,
            link,
            model_bytes,
            seed,
        }
    }
}

/// Online client-selection choice recorded by [`SimBuilder::selection`].
///
/// [`Selection::Off`] — the default — schedules every device every round,
/// exactly today's behaviour; [`Selection::Bandit`] lets a bandit policy
/// pick a `k`-device cohort online before the inner scheduler splits
/// shards, feeding observed round outcomes back as rewards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Selection {
    /// No online selection: the full fleet is scheduled each round.
    Off,
    /// Bandit-driven cohort selection with the given configuration.
    Bandit(SelectionConfig),
}

/// Buffered-async coordination knobs recorded by
/// [`SimBuilder::buffered_async`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct AsyncOptions {
    pub(crate) buffer: usize,
    pub(crate) eta: f64,
}

/// One builder for every simulator: [`RoundSim`], [`ResilientRoundSim`],
/// [`EventRoundSim`], [`ParallelRoundEngine`], [`Coordinator`] and
/// [`HierEngine`].
///
/// Setters are infallible and record raw values; each terminal `build_*`
/// validates the full configuration against its target and rejects knobs
/// the target cannot honour with
/// [`ConfigError::UnsupportedOption`] — a deadline on a plain
/// [`RoundSim`] is an error, not a silent no-op.
///
/// Which knobs each target honours (mirrors the README migration table):
///
/// | Knob | `sim` | `resilient` | `event_sim` | `engine` | `coordinator` | `hier` |
/// |------|:-----:|:-----------:|:-----------:|:--------:|:-------------:|:------:|
/// | [`probe`](SimBuilder::probe) | ✓ | ✓ | ✓ | ✓ | ✓ | ✓ |
/// | [`deadline`](SimBuilder::deadline) | — | ✓ | ✓ | ✓ | ✓¹ | ✓ |
/// | [`retry`](SimBuilder::retry), [`no_rescue`](SimBuilder::no_rescue), [`rescue_soc_floor`](SimBuilder::rescue_soc_floor), [`faults`](SimBuilder::faults) | — | ✓ | ✓ | ✓ | ✓ | ✓ |
/// | [`injector`](SimBuilder::injector), [`rescheduler`](SimBuilder::rescheduler), [`priors`](SimBuilder::priors) ² | — | ✓ | ✓ | — | — | — |
/// | [`aggregator`](SimBuilder::aggregator), [`adversary`](SimBuilder::adversary) | — | ✓ | ✓ | ✓ | ✓ | ✓ |
/// | [`cohort_size`](SimBuilder::cohort_size), [`threads`](SimBuilder::threads) | — | — | — | ✓ | ✓ | ✓ |
/// | [`engine_kind`](SimBuilder::engine_kind) | — | — | — | ✓ | ✓ | ✓ |
/// | [`churn`](SimBuilder::churn), [`admission`](SimBuilder::admission) ³ | — | — | ✓ | ✓³ | ✓³ | ✓³ |
/// | [`selection`](SimBuilder::selection) | — | ✓ | ✓ | ✓ | ✓ | ✓ |
/// | [`buffered_async`](SimBuilder::buffered_async) | — | — | — | — | ✓¹ | — |
/// | [`edges`](SimBuilder::edges), [`edge_link`](SimBuilder::edge_link), [`edge_aggregator`](SimBuilder::edge_aggregator), [`server_aggregator`](SimBuilder::server_aggregator) | — | — | — | — | — | ✓ |
///
/// ¹ a coordinator takes a deadline *or* `buffered_async`, not both.
/// ² ad-hoc injected objects; accepted in-process but rejected by
///   [`SimBuilder::to_spec`] with `"not_serializable"` — they have no
///   wire form.
/// ³ event-driven cores only: `build_event_sim`, or the engine-family
///   targets with [`EngineKind::EventDriven`].
///
/// Every “—” cell is a typed [`ConfigError`], never a silent drop.
pub struct SimBuilder {
    pub(crate) devices: Vec<Device>,
    pub(crate) config: RoundConfig,
    pub(crate) probe: Probe,
    pub(crate) deadline: DeadlinePolicy,
    pub(crate) retry: Option<RetryPolicy>,
    pub(crate) rescue: bool,
    pub(crate) rescue_soc_floor: f64,
    pub(crate) faults: Option<(FaultConfig, usize)>,
    pub(crate) injector: Option<FaultInjector>,
    pub(crate) rescheduler: Option<(Box<dyn Scheduler>, usize)>,
    pub(crate) priors: Option<Vec<LinearProfile>>,
    pub(crate) cohort_size: Option<usize>,
    pub(crate) threads: Option<usize>,
    pub(crate) async_opts: Option<AsyncOptions>,
    pub(crate) aggregator: Option<AggregatorKind>,
    pub(crate) adversary: Option<(AdversaryConfig, usize)>,
    pub(crate) engine_kind: Option<EngineKind>,
    pub(crate) churn: Option<ChurnConfig>,
    pub(crate) admission: Option<AdmissionPolicy>,
    pub(crate) selection: Option<SelectionConfig>,
    pub(crate) edges: Option<usize>,
    pub(crate) edge_link: Option<Link>,
    pub(crate) edge_aggregator: Option<AggregatorKind>,
    pub(crate) server_aggregator: Option<AggregatorKind>,
    /// Remembered by [`SimBuilder::from_spec`] so
    /// [`SimBuilder::to_spec`] can serialize the fleet back out; `None`
    /// for ad-hoc `Vec<Device>` fleets, which have no wire form.
    pub(crate) device_spec: Option<crate::spec::DeviceSetSpec>,
}

impl SimBuilder {
    /// Start building over `devices` with the shared `config`.
    pub fn new(devices: Vec<Device>, config: RoundConfig) -> Self {
        SimBuilder {
            devices,
            config,
            probe: Probe::disabled(),
            deadline: DeadlinePolicy::Off,
            retry: None,
            rescue: true,
            rescue_soc_floor: 0.0,
            faults: None,
            injector: None,
            rescheduler: None,
            priors: None,
            cohort_size: None,
            threads: None,
            async_opts: None,
            aggregator: None,
            adversary: None,
            engine_kind: None,
            churn: None,
            admission: None,
            selection: None,
            edges: None,
            edge_link: None,
            edge_aggregator: None,
            server_aggregator: None,
            device_spec: None,
        }
    }

    /// Attach a telemetry probe. Valid for every build target.
    pub fn probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Set the per-round deadline policy. On [`build_resilient`] adaptive
    /// policies resolve against the cohort's own predicted times each
    /// round; on [`build_engine`] against each cohort separately; on
    /// [`build_coordinator`] against the pooled population
    /// (the tentpole difference).
    ///
    /// [`build_resilient`]: SimBuilder::build_resilient
    /// [`build_engine`]: SimBuilder::build_engine
    /// [`build_coordinator`]: SimBuilder::build_coordinator
    pub fn deadline(mut self, policy: DeadlinePolicy) -> Self {
        self.deadline = policy;
        self
    }

    /// Set the transfer retry policy (resilient/engine/coordinator).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Disable mid-round straggler rescue.
    pub fn no_rescue(mut self) -> Self {
        self.rescue = false;
        self
    }

    /// Energy-aware rescue floor: survivors below this SoC are exempt.
    pub fn rescue_soc_floor(mut self, floor: f64) -> Self {
        self.rescue_soc_floor = floor;
        self
    }

    /// Inject faults drawn from `config`, planned for `planned_rounds`.
    /// On the engine/coordinator each cohort derives its own injector.
    pub fn faults(mut self, config: FaultConfig, planned_rounds: usize) -> Self {
        self.faults = Some((config, planned_rounds));
        self
    }

    /// Use a pre-built fault injector (resilient target only). Overrides
    /// [`faults`](SimBuilder::faults); lets callers decouple the fault-plan
    /// seed from the simulation seed.
    pub fn injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Re-plan the shard allocation every `every` rounds (resilient only).
    pub fn rescheduler(mut self, scheduler: Box<dyn Scheduler>, every: usize) -> Self {
        self.rescheduler = Some((scheduler, every));
        self
    }

    /// Warm-start online profilers from offline priors (resilient only).
    pub fn priors(mut self, priors: Vec<LinearProfile>) -> Self {
        self.priors = Some(priors);
        self
    }

    /// Devices per cohort (engine/coordinator only).
    pub fn cohort_size(mut self, size: usize) -> Self {
        self.cohort_size = Some(size);
        self
    }

    /// Worker threads (engine/coordinator only). Never changes results.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Select the robust aggregation rule the server scores deliveries
    /// with (resilient/engine/coordinator). [`AggregatorKind::FedAvg`] —
    /// the default — keeps today's behaviour bit for bit; any other kind
    /// forces the fault-tolerant path so rejections have somewhere to go.
    ///
    /// Tier naming: unqualified `aggregator` always means the **device
    /// tier** — the rule applied to per-device deliveries — on every
    /// target, including [`build_hier`](SimBuilder::build_hier). The
    /// two-tier hierarchy layers
    /// [`edge_aggregator`](SimBuilder::edge_aggregator) and
    /// [`server_aggregator`](SimBuilder::server_aggregator) *on top* for
    /// its edge and root tiers; there is no unqualified server-tier
    /// alias, so a flat config ported to `build_hier` keeps its meaning.
    pub fn aggregator(mut self, kind: AggregatorKind) -> Self {
        self.aggregator = Some(kind);
        self
    }

    /// Attach an adversary model planned for `planned_rounds`
    /// (resilient/engine/coordinator). On the engine/coordinator each
    /// cohort derives its own [`AdversaryPlan`] from the cohort seed,
    /// mirroring per-cohort fault injectors.
    pub fn adversary(mut self, config: AdversaryConfig, planned_rounds: usize) -> Self {
        self.adversary = Some((config, planned_rounds));
        self
    }

    /// Select the per-cohort round engine (engine/coordinator only).
    /// [`EngineKind::Lockstep`] — the default — scans every scheduled
    /// device each round; [`EngineKind::EventDriven`] drains a discrete
    /// event queue instead, producing bit-identical reports and traces
    /// while touching parked devices only when one of their events fires.
    pub fn engine_kind(mut self, kind: EngineKind) -> Self {
        self.engine_kind = Some(kind);
        self
    }

    /// Continuous mid-round churn: devices arrive and depart inside
    /// rounds at seed-derived exponential times (event-driven targets
    /// only — [`build_event_sim`](SimBuilder::build_event_sim) or an
    /// [`EngineKind::EventDriven`] engine/coordinator). Requires a fault
    /// source ([`faults`](SimBuilder::faults)) because churn timelines
    /// ride on the fault plan; lockstep targets reject the knob with
    /// [`ConfigError::UnsupportedOption`].
    ///
    /// ```
    /// use fedsched_device::{Testbed, TrainingWorkload};
    /// use fedsched_faults::{ChurnConfig, FaultConfig};
    /// use fedsched_fl::{EngineKind, RoundConfig, SimBuilder};
    /// use fedsched_net::Link;
    ///
    /// let config = RoundConfig::new(TrainingWorkload::lenet(), Link::wifi_campus(), 2.5e6, 7);
    /// let engine = SimBuilder::new(Testbed::testbed_1(7).devices().to_vec(), config)
    ///     .faults(FaultConfig::none(), 4)
    ///     .churn(ChurnConfig::symmetric(0.05, 60.0)) // events/s per device, horizon
    ///     .engine_kind(EngineKind::EventDriven)
    ///     .build_engine()?;
    /// # let _ = engine;
    /// # Ok::<(), fedsched_fl::ConfigError>(())
    /// ```
    pub fn churn(mut self, config: ChurnConfig) -> Self {
        self.churn = Some(config);
        self
    }

    /// What to do with devices that arrive mid-round (event-driven
    /// targets only; requires [`churn`](SimBuilder::churn)):
    /// [`AdmissionPolicy::Reject`] logs and drops,
    /// [`AdmissionPolicy::NextRound`] parks arrivals for the following
    /// round, and [`AdmissionPolicy::MidRoundFill`] additionally grants
    /// the earliest arrival whatever shards rescue could not place.
    ///
    /// ```
    /// use fedsched_device::{Testbed, TrainingWorkload};
    /// use fedsched_faults::{ChurnConfig, FaultConfig};
    /// use fedsched_fl::{AdmissionPolicy, RoundConfig, SimBuilder};
    /// use fedsched_net::Link;
    ///
    /// let config = RoundConfig::new(TrainingWorkload::lenet(), Link::wifi_campus(), 2.5e6, 7);
    /// let sim = SimBuilder::new(Testbed::testbed_1(7).devices().to_vec(), config)
    ///     .faults(FaultConfig::none(), 4)
    ///     .churn(ChurnConfig::symmetric(0.05, 60.0))
    ///     .admission(AdmissionPolicy::MidRoundFill)
    ///     .build_event_sim()?;
    /// # let _ = sim;
    /// # Ok::<(), fedsched_fl::ConfigError>(())
    /// ```
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = Some(policy);
        self
    }

    /// Online bandit-driven client selection
    /// (resilient/event_sim/engine/coordinator/hier). Each round the
    /// policy picks a `k`-device cohort per scheduling domain, the inner
    /// scheduler splits the full shard load among the picked devices, and
    /// observed round outcomes (throughput discounted by battery drain)
    /// feed back as arm rewards. [`Selection::Off`] — the default —
    /// keeps today's schedule-everyone behaviour bit for bit.
    ///
    /// Selection re-plans the shard split every round itself, so it
    /// cannot be combined with [`rescheduler`](SimBuilder::rescheduler);
    /// that combination is a typed [`ConfigError::InvalidSelection`].
    ///
    /// ```
    /// use fedsched_bandit::{PolicyKind, SelectionConfig};
    /// use fedsched_device::{Testbed, TrainingWorkload};
    /// use fedsched_fl::{RoundConfig, Selection, SimBuilder};
    /// use fedsched_net::Link;
    ///
    /// let config = RoundConfig::new(TrainingWorkload::lenet(), Link::wifi_campus(), 2.5e6, 7);
    /// let sim = SimBuilder::new(Testbed::testbed_1(7).devices().to_vec(), config)
    ///     .selection(Selection::Bandit(SelectionConfig::new(
    ///         PolicyKind::Ucb1 { c: 1.0 },
    ///         2,
    ///     )))
    ///     .build_resilient()?;
    /// # let _ = sim;
    /// # Ok::<(), fedsched_fl::ConfigError>(())
    /// ```
    pub fn selection(mut self, selection: Selection) -> Self {
        self.selection = match selection {
            Selection::Off => None,
            Selection::Bandit(config) => Some(config),
        };
        self
    }

    /// Number of edge aggregators in a two-tier topology
    /// ([`build_hier`](SimBuilder::build_hier) only). Cohorts are split
    /// across edges in balanced contiguous spans; defaults to one edge
    /// per cohort, the parity topology that is byte-identical to the
    /// flat engine.
    pub fn edges(mut self, edges: usize) -> Self {
        self.edges = Some(edges);
        self
    }

    /// Edge→server backhaul link ([`build_hier`](SimBuilder::build_hier)
    /// only): each edge's round makespan gains one sampled transfer of
    /// the model payload, drawn from the edge's own RNG stream.
    pub fn edge_link(mut self, link: Link) -> Self {
        self.edge_link = Some(link);
        self
    }

    /// Robust aggregation rule applied at the *edge* tier over per-cohort
    /// proxy updates ([`build_hier`](SimBuilder::build_hier) only).
    pub fn edge_aggregator(mut self, kind: AggregatorKind) -> Self {
        self.edge_aggregator = Some(kind);
        self
    }

    /// Robust aggregation rule applied at the *server* tier over
    /// per-edge proxy updates ([`build_hier`](SimBuilder::build_hier)
    /// only).
    pub fn server_aggregator(mut self, kind: AggregatorKind) -> Self {
        self.server_aggregator = Some(kind);
        self
    }

    /// Coordinate cohorts through a buffered asynchronous aggregator
    /// (coordinator only): merge as soon as `buffer` cohort updates are
    /// queued, discounting each by FedAsync staleness weight with base
    /// rate `eta`.
    pub fn buffered_async(mut self, buffer: usize, eta: f64) -> Self {
        self.async_opts = Some(AsyncOptions { buffer, eta });
        self
    }

    /// Reject hierarchy knobs on every non-hierarchical build target —
    /// dropping a topology silently would fake a two-tier run.
    fn reject_hier(&self) -> Result<(), ConfigError> {
        if self.edges.is_some() {
            return Err(ConfigError::UnsupportedOption("edges"));
        }
        if self.edge_link.is_some() {
            return Err(ConfigError::UnsupportedOption("edge_link"));
        }
        if self.edge_aggregator.is_some() {
            return Err(ConfigError::UnsupportedOption("edge_aggregator"));
        }
        if self.server_aggregator.is_some() {
            return Err(ConfigError::UnsupportedOption("server_aggregator"));
        }
        Ok(())
    }

    /// True iff some knob forces the fault-tolerant path.
    fn wants_chaos(&self) -> bool {
        self.faults.is_some()
            || self.injector.is_some()
            || self.retry.is_some()
            || !self.deadline.is_off()
            || !self.rescue
            || self.rescue_soc_floor > 0.0
            || self.rescheduler.is_some()
            || self.priors.is_some()
            || self.aggregator.is_some_and(|k| !k.is_fedavg())
            || self.adversary.is_some()
            || self.churn.is_some()
            || self.admission.is_some()
            || self.selection.is_some()
    }

    /// The first chaos-only knob set, for precise error payloads.
    fn first_chaos_option(&self) -> &'static str {
        if self.faults.is_some() {
            "faults"
        } else if self.injector.is_some() {
            "injector"
        } else if self.retry.is_some() {
            "retry"
        } else if !self.deadline.is_off() {
            "deadline"
        } else if !self.rescue {
            "no_rescue"
        } else if self.rescue_soc_floor > 0.0 {
            "rescue_soc_floor"
        } else if self.rescheduler.is_some() {
            "rescheduler"
        } else if self.priors.is_some() {
            "priors"
        } else if self.adversary.is_some() {
            "adversary"
        } else if self.churn.is_some() {
            "churn"
        } else if self.admission.is_some() {
            "admission"
        } else if self.selection.is_some() {
            "selection"
        } else {
            "aggregator"
        }
    }

    /// Validate the online-selection config and its knob interactions.
    /// Selection owns the per-round shard split, so a periodic
    /// rescheduler alongside it is a contradiction, not a composition.
    fn check_selection(&self) -> Result<Option<SelectionConfig>, ConfigError> {
        if let Some(config) = &self.selection {
            config.validate().map_err(ConfigError::InvalidSelection)?;
            if self.rescheduler.is_some() {
                return Err(ConfigError::InvalidSelection(
                    "selection re-plans the split every round; drop the rescheduler",
                ));
            }
        }
        Ok(self.selection)
    }

    /// Validate the churn/admission knob combination and, when a churn
    /// process is configured, fold it into the fault config so per-cohort
    /// injectors derive their churn timelines from cohort seeds.
    fn take_churn(&mut self) -> Result<Option<AdmissionPolicy>, ConfigError> {
        let admission = self.admission.take();
        if admission.is_some() && self.churn.is_none() {
            return Err(ConfigError::InvalidChurn(
                "admission requires a churn process",
            ));
        }
        if let Some(cfg) = self.churn.take() {
            let rate_ok = |r: f64| r.is_finite() && r >= 0.0;
            if !rate_ok(cfg.depart_rate) || !rate_ok(cfg.arrive_rate) {
                return Err(ConfigError::InvalidChurn(
                    "rates must be finite and non-negative",
                ));
            }
            if (cfg.depart_rate > 0.0 || cfg.arrive_rate > 0.0)
                && !(cfg.horizon_s > 0.0 && cfg.horizon_s.is_finite())
            {
                return Err(ConfigError::InvalidChurn(
                    "horizon must be positive while a rate is nonzero",
                ));
            }
            match &mut self.faults {
                Some((fc, _)) => *fc = fc.clone().with_churn_process(cfg),
                None => {
                    return Err(ConfigError::InvalidChurn(
                        "churn requires a fault source (faults(..))",
                    ))
                }
            }
        }
        Ok(admission)
    }

    /// True iff a churn timeline reached this builder by any route — the
    /// `churn(..)` knob, a fault config carrying a churn process, or a
    /// pre-built injector whose plan has churn cells. Lockstep targets
    /// reject all of them.
    fn carries_churn(&self) -> bool {
        self.churn.is_some()
            || self
                .faults
                .as_ref()
                .is_some_and(|(fc, _)| fc.churn_process.is_some_and(|c| !c.is_quiet()))
            || self
                .injector
                .as_ref()
                .is_some_and(|inj| inj.plan().churn_active())
    }

    fn check_aggregator(&self) -> Result<AggregatorKind, ConfigError> {
        let kind = self.aggregator.unwrap_or_default();
        kind.validate().map_err(ConfigError::InvalidAggregator)?;
        Ok(kind)
    }

    fn check_adversary(&self) -> Result<Option<(AdversaryConfig, usize)>, ConfigError> {
        if let Some((config, _)) = &self.adversary {
            config.check().map_err(ConfigError::InvalidAdversary)?;
        }
        Ok(self.adversary)
    }

    fn check_deadline(&self) -> Result<(), ConfigError> {
        self.deadline.check().map_err(ConfigError::InvalidDeadline)
    }

    fn check_retry(&self) -> Result<(), ConfigError> {
        if let Some(retry) = &self.retry {
            retry.check().map_err(ConfigError::InvalidRetry)?;
        }
        Ok(())
    }

    fn check_soc_floor(&self) -> Result<(), ConfigError> {
        let floor = self.rescue_soc_floor;
        if (0.0..=1.0).contains(&floor) && floor.is_finite() {
            Ok(())
        } else {
            Err(ConfigError::InvalidSocFloor(floor))
        }
    }

    fn check_async(&self) -> Result<Option<CoordinationMode>, ConfigError> {
        match self.async_opts {
            None => Ok(None),
            Some(AsyncOptions { buffer, eta }) => {
                if buffer == 0 {
                    return Err(ConfigError::InvalidAsync(
                        "buffer must hold at least one update",
                    ));
                }
                if !(eta > 0.0 && eta.is_finite()) {
                    return Err(ConfigError::InvalidAsync("eta must be positive and finite"));
                }
                Ok(Some(CoordinationMode::BufferedAsync { buffer, eta }))
            }
        }
    }

    /// Build a plain sequential [`RoundSim`]. Rejects every fault,
    /// deadline, cohort and async knob — the quiet sim has no machinery to
    /// honour them, and dropping them silently would fake fidelity.
    pub fn build_sim(self) -> Result<RoundSim, ConfigError> {
        self.reject_hier()?;
        if self.wants_chaos() {
            return Err(ConfigError::UnsupportedOption(self.first_chaos_option()));
        }
        if self.cohort_size.is_some() {
            return Err(ConfigError::UnsupportedOption("cohort_size"));
        }
        if self.threads.is_some() {
            return Err(ConfigError::UnsupportedOption("threads"));
        }
        if self.async_opts.is_some() {
            return Err(ConfigError::UnsupportedOption("buffered_async"));
        }
        if self.engine_kind.is_some() {
            return Err(ConfigError::UnsupportedOption("engine_kind"));
        }
        let c = self.config;
        Ok(
            RoundSim::from_parts(self.devices, c.workload, c.link, c.model_bytes, c.seed)
                .with_probe(self.probe),
        )
    }

    /// Build a sequential fault-tolerant [`ResilientRoundSim`]. With no
    /// fault source configured the injector is quiet, which is
    /// bit-identical to [`RoundSim`] by the crate's determinism contract.
    ///
    /// The lockstep sweep has no mid-round event stream, so churn by any
    /// route — the [`churn`](SimBuilder::churn) knob, a fault config with
    /// a churn process, or an injector with churn cells — is rejected
    /// rather than silently ignored; so is
    /// [`admission`](SimBuilder::admission).
    pub fn build_resilient(self) -> Result<ResilientRoundSim, ConfigError> {
        if self.carries_churn() {
            return Err(ConfigError::UnsupportedOption("churn"));
        }
        if self.admission.is_some() {
            return Err(ConfigError::UnsupportedOption("admission"));
        }
        self.build_resilient_core()
    }

    /// [`build_resilient`](SimBuilder::build_resilient) minus the churn
    /// rejections — the shared tail that
    /// [`build_event_sim`](SimBuilder::build_event_sim) reaches after
    /// folding churn into the fault config.
    fn build_resilient_core(self) -> Result<ResilientRoundSim, ConfigError> {
        self.reject_hier()?;
        if self.cohort_size.is_some() {
            return Err(ConfigError::UnsupportedOption("cohort_size"));
        }
        if self.threads.is_some() {
            return Err(ConfigError::UnsupportedOption("threads"));
        }
        if self.async_opts.is_some() {
            return Err(ConfigError::UnsupportedOption("buffered_async"));
        }
        if self.engine_kind.is_some() {
            return Err(ConfigError::UnsupportedOption("engine_kind"));
        }
        self.check_deadline()?;
        self.check_retry()?;
        self.check_soc_floor()?;
        let aggregator = self.check_aggregator()?;
        let adversary = self.check_adversary()?;
        let selection = self.check_selection()?;
        let n = self.devices.len();
        if let Some((_, every)) = &self.rescheduler {
            if *every == 0 {
                return Err(ConfigError::ZeroRescheduleInterval);
            }
        }
        if let Some(priors) = &self.priors {
            if priors.len() != n {
                return Err(ConfigError::ArityMismatch {
                    what: "priors",
                    expected: n,
                    got: priors.len(),
                });
            }
        }
        let c = self.config;
        let injector = match (self.injector, &self.faults) {
            (Some(injector), _) => injector,
            (None, Some((config, planned))) => {
                FaultInjector::from_config(config.clone(), n, *planned, c.seed)
            }
            (None, None) => FaultInjector::quiet(n),
        };
        if injector.plan().n_devices() != n {
            return Err(ConfigError::ArityMismatch {
                what: "fault plan",
                expected: n,
                got: injector.plan().n_devices(),
            });
        }
        let mut sim = ResilientRoundSim::from_parts(
            self.devices,
            c.workload,
            c.link,
            c.model_bytes,
            c.seed,
            injector,
        )
        .with_probe(self.probe)
        .with_deadline_policy(self.deadline)
        .with_rescue_soc_floor(self.rescue_soc_floor)
        .with_aggregator(aggregator);
        if let Some((config, planned)) = adversary {
            sim = sim.with_adversary(AdversaryPlan::generate(config, n, planned, c.seed));
        }
        if let Some(retry) = self.retry {
            sim = sim.with_retry(retry);
        }
        if !self.rescue {
            sim = sim.without_rescue();
        }
        if let Some((scheduler, every)) = self.rescheduler {
            sim = sim.with_rescheduler(scheduler, every);
        }
        if let Some(priors) = self.priors {
            sim = sim.with_priors(&priors);
        }
        if let Some(config) = selection {
            sim = sim.with_selection(config);
        }
        Ok(sim)
    }

    /// Build a sequential event-driven [`EventRoundSim`]: the same
    /// machinery as [`build_resilient`](SimBuilder::build_resilient) —
    /// every fault, deadline, rescue, rescheduler and adversary knob is
    /// honoured — but rounds advance by draining a discrete event queue
    /// rather than scanning every device. Reports and traces are
    /// bit-identical to the lockstep path; requesting
    /// [`EngineKind::Lockstep`] here is a contradiction and is rejected.
    pub fn build_event_sim(mut self) -> Result<EventRoundSim, ConfigError> {
        if self.engine_kind == Some(EngineKind::Lockstep) {
            return Err(ConfigError::UnsupportedOption("engine_kind"));
        }
        self.engine_kind = None;
        let admission = self.take_churn()?;
        let mut sim = EventRoundSim::new(self.build_resilient_core()?);
        if let Some(policy) = admission {
            sim.set_admission(policy);
        }
        Ok(sim)
    }

    /// Build a [`ParallelRoundEngine`]. Any fault/deadline knob switches
    /// every cohort to the resilient path; adaptive deadlines resolve *per
    /// cohort* (use [`build_coordinator`](SimBuilder::build_coordinator)
    /// for one population-pooled deadline).
    pub fn build_engine(self) -> Result<ParallelRoundEngine, ConfigError> {
        self.reject_hier()?;
        if self.injector.is_some() {
            return Err(ConfigError::UnsupportedOption("injector"));
        }
        if self.rescheduler.is_some() {
            return Err(ConfigError::UnsupportedOption("rescheduler"));
        }
        if self.priors.is_some() {
            return Err(ConfigError::UnsupportedOption("priors"));
        }
        if self.async_opts.is_some() {
            return Err(ConfigError::UnsupportedOption("buffered_async"));
        }
        self.build_engine_with(false)
    }

    /// Build a [`Coordinator`]: a [`ParallelRoundEngine`] driven by a
    /// cross-cohort control loop. The deadline policy resolves against the
    /// *pooled population* predictions (one global straggler cutoff per
    /// round) in barrier mode, or is rejected in buffered-async mode where
    /// no global barrier exists.
    pub fn build_coordinator(self) -> Result<Coordinator, ConfigError> {
        self.reject_hier()?;
        if self.injector.is_some() {
            return Err(ConfigError::UnsupportedOption("injector"));
        }
        if self.rescheduler.is_some() {
            return Err(ConfigError::UnsupportedOption("rescheduler"));
        }
        if self.priors.is_some() {
            return Err(ConfigError::UnsupportedOption("priors"));
        }
        let mode = self.check_async()?.unwrap_or(CoordinationMode::Barrier);
        let policy = self.deadline;
        if !policy.is_off() && matches!(mode, CoordinationMode::BufferedAsync { .. }) {
            return Err(ConfigError::InvalidAsync(
                "global deadline policies require barrier mode",
            ));
        }
        // The coordinator owns deadline resolution: cohorts must not also
        // resolve per-cohort, so the engine is always built with its own
        // policy Off. Applying a global deadline needs chaos machinery in
        // every cohort, hence the forced (quiet) chaos path below.
        let mut builder = self;
        builder.deadline = DeadlinePolicy::Off;
        builder.async_opts = None;
        policy.check().map_err(ConfigError::InvalidDeadline)?;
        let force_chaos = !policy.is_off();
        let engine = builder.build_engine_with(force_chaos)?;
        Ok(Coordinator::from_parts(engine, policy, mode))
    }

    /// Build a two-tier [`HierEngine`]: edge aggregators reduce balanced
    /// contiguous cohort spans, the server reduces the edge aggregates.
    /// The underlying cohorts honour every engine knob (faults,
    /// deadlines, event-driven cores, churn on event cores); topology
    /// knobs add on top. With the defaults — one edge per cohort, no
    /// backhaul link, FedAvg at both tiers — reports *and traces* are
    /// byte-identical to [`build_engine`](SimBuilder::build_engine) at
    /// every thread count.
    pub fn build_hier(mut self) -> Result<HierEngine, ConfigError> {
        if self.injector.is_some() {
            return Err(ConfigError::UnsupportedOption("injector"));
        }
        if self.rescheduler.is_some() {
            return Err(ConfigError::UnsupportedOption("rescheduler"));
        }
        if self.priors.is_some() {
            return Err(ConfigError::UnsupportedOption("priors"));
        }
        if self.async_opts.is_some() {
            return Err(ConfigError::UnsupportedOption("buffered_async"));
        }
        let edges = self.edges.take();
        let edge_link = self.edge_link.take();
        let edge_aggregator = self.edge_aggregator.take().unwrap_or_default();
        let server_aggregator = self.server_aggregator.take().unwrap_or_default();
        edge_aggregator
            .validate()
            .map_err(ConfigError::InvalidAggregator)?;
        server_aggregator
            .validate()
            .map_err(ConfigError::InvalidAggregator)?;
        if edges == Some(0) {
            return Err(ConfigError::InvalidTopology(
                "hierarchy needs at least one edge aggregator",
            ));
        }
        let model_bytes = self.config.model_bytes;
        let seed = self.config.seed;
        let engine = self.build_engine_with(false)?;
        let n_cohorts = engine.n_cohorts();
        let edges = edges.unwrap_or(n_cohorts);
        if edges > n_cohorts {
            return Err(ConfigError::InvalidTopology(
                "more edge aggregators than cohorts",
            ));
        }
        Ok(HierEngine::from_parts(
            engine,
            edges,
            edge_link,
            edge_aggregator,
            server_aggregator,
            model_bytes,
            seed,
        ))
    }

    fn build_engine_with(mut self, force_chaos: bool) -> Result<ParallelRoundEngine, ConfigError> {
        // Churn is an event-core feature: per-cohort event sims drain the
        // arrive/depart stream; the lockstep sweep cannot, so anything but
        // an explicit event-driven engine rejects it.
        let admission = if self.engine_kind == Some(EngineKind::EventDriven) {
            self.take_churn()?
        } else {
            if self.carries_churn() {
                return Err(ConfigError::UnsupportedOption("churn"));
            }
            if self.admission.is_some() {
                return Err(ConfigError::UnsupportedOption("admission"));
            }
            None
        };
        self.check_deadline()?;
        self.check_retry()?;
        self.check_soc_floor()?;
        let aggregator = self.check_aggregator()?;
        let adversary = self.check_adversary()?;
        let selection = self.check_selection()?;
        let c = self.config;
        let mut engine = ParallelRoundEngine::from_parts(
            self.devices,
            c.workload,
            c.link,
            c.model_bytes,
            c.seed,
        )
        .try_with_probe(self.probe)?;
        if let Some(size) = self.cohort_size {
            engine = engine.try_with_cohort_size(size)?;
        }
        if let Some(threads) = self.threads {
            engine = engine.try_with_threads(threads)?;
        }
        if let Some(kind) = self.engine_kind {
            engine = engine.try_with_engine_kind(kind)?;
        }
        let wants_chaos = self.faults.is_some()
            || self.retry.is_some()
            || !self.deadline.is_off()
            || !self.rescue
            || self.rescue_soc_floor > 0.0
            || !aggregator.is_fedavg()
            || adversary.is_some()
            || selection.is_some();
        if wants_chaos || force_chaos {
            let (config, planned) = self
                .faults
                .clone()
                .unwrap_or_else(|| (FaultConfig::none(), 0));
            let mut opts = ChaosOptions::new(config, planned)
                .with_deadline_policy(self.deadline)
                .with_rescue_soc_floor(self.rescue_soc_floor)
                .with_aggregator(aggregator);
            if let Some((adv, adv_rounds)) = adversary {
                opts = opts.with_adversary(adv, adv_rounds);
            }
            if let Some(policy) = admission {
                opts = opts.with_admission(policy);
            }
            if let Some(config) = selection {
                opts = opts.with_selection(config);
            }
            if let Some(retry) = self.retry {
                opts = opts.with_retry(retry);
            }
            if !self.rescue {
                opts = opts.without_rescue();
            }
            engine = engine.try_with_chaos(opts)?;
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_core::Schedule;
    use fedsched_device::Testbed;

    fn config(seed: u64) -> RoundConfig {
        RoundConfig::new(TrainingWorkload::lenet(), Link::wifi_campus(), 2.5e6, seed)
    }

    fn devices(seed: u64) -> Vec<Device> {
        Testbed::testbed_1(seed).devices().to_vec()
    }

    fn schedule() -> Schedule {
        Schedule::new(vec![10, 10, 10], 100.0)
    }

    #[test]
    fn builder_sim_is_deterministic_per_seed() {
        let mut a = SimBuilder::new(devices(7), config(7)).build_sim().unwrap();
        let mut b = SimBuilder::new(devices(7), config(7)).build_sim().unwrap();
        assert_eq!(a.run(&schedule(), 3), b.run(&schedule(), 3));
    }

    #[test]
    fn builder_resilient_defaults_to_quiet_injector() {
        let mut quiet = SimBuilder::new(devices(9), config(9))
            .build_resilient()
            .unwrap();
        let mut plain = SimBuilder::new(devices(9), config(9)).build_sim().unwrap();
        let report = quiet.run(&schedule(), 3);
        assert_eq!(report.timing, plain.run(&schedule(), 3));
        assert!(report.rounds.iter().all(|r| r.lost_shards == 0));
    }

    #[test]
    fn unsupported_knobs_are_rejected_not_dropped() {
        let err = SimBuilder::new(devices(1), config(1))
            .deadline(DeadlinePolicy::Fixed(10.0))
            .build_sim()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("deadline"));
        assert_eq!(err.cause_code(), "unsupported_option");

        let err = SimBuilder::new(devices(1), config(1))
            .cohort_size(4)
            .build_resilient()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("cohort_size"));

        let err = SimBuilder::new(devices(1), config(1))
            .buffered_async(2, 0.5)
            .build_engine()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("buffered_async"));

        let err = SimBuilder::new(devices(1), config(1))
            .aggregator(AggregatorKind::Median)
            .build_sim()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("aggregator"));

        let err = SimBuilder::new(devices(1), config(1))
            .adversary(AdversaryConfig::none(), 4)
            .build_sim()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("adversary"));
    }

    #[test]
    fn invalid_values_map_to_typed_errors() {
        let err = SimBuilder::new(devices(1), config(1))
            .cohort_size(0)
            .build_engine()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::ZeroCohortSize);
        assert_eq!(err.cause_code(), "zero_cohort_size");

        let err = SimBuilder::new(devices(1), config(1))
            .threads(0)
            .build_engine()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::ZeroThreads);

        let err = SimBuilder::new(devices(1), config(1))
            .deadline(DeadlinePolicy::Fixed(-1.0))
            .build_resilient()
            .err()
            .unwrap();
        assert_eq!(err.cause_code(), "invalid_deadline");

        let err = SimBuilder::new(devices(1), config(1))
            .rescue_soc_floor(1.5)
            .build_resilient()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::InvalidSocFloor(1.5));

        let err = SimBuilder::new(devices(1), config(1))
            .priors(Vec::new())
            .build_resilient()
            .err()
            .unwrap();
        assert_eq!(
            err,
            ConfigError::ArityMismatch {
                what: "priors",
                expected: 3,
                got: 0
            }
        );

        let err = SimBuilder::new(devices(1), config(1))
            .buffered_async(0, 0.5)
            .build_coordinator()
            .err()
            .unwrap();
        assert_eq!(err.cause_code(), "invalid_async");

        let err = SimBuilder::new(devices(1), config(1))
            .aggregator(AggregatorKind::MultiKrum { f: 1, k: 0 })
            .build_resilient()
            .err()
            .unwrap();
        assert_eq!(err.cause_code(), "invalid_aggregator");

        let err = SimBuilder::new(devices(1), config(1))
            .adversary(
                AdversaryConfig::none().with_attackers(1.5, fedsched_faults::AttackKind::SignFlip),
                4,
            )
            .build_engine()
            .err()
            .unwrap();
        assert_eq!(err.cause_code(), "invalid_adversary");

        let err = SimBuilder::new(devices(1), config(1))
            .deadline(DeadlinePolicy::MeanFactor(1.5))
            .buffered_async(2, 0.5)
            .build_coordinator()
            .err()
            .unwrap();
        assert_eq!(err.cause_code(), "invalid_async");
    }

    #[test]
    fn event_sim_matches_resilient_bit_for_bit() {
        use fedsched_faults::FaultConfig;
        let chaos = FaultConfig::none().with_crash_prob(0.3).with_loss_prob(0.2);
        let mut lockstep = SimBuilder::new(devices(11), config(11))
            .faults(chaos.clone(), 4)
            .deadline(DeadlinePolicy::Fixed(55.0))
            .build_resilient()
            .unwrap();
        let mut event = SimBuilder::new(devices(11), config(11))
            .faults(chaos, 4)
            .deadline(DeadlinePolicy::Fixed(55.0))
            .build_event_sim()
            .unwrap();
        assert_eq!(lockstep.run(&schedule(), 4), event.run(&schedule(), 4));
    }

    #[test]
    fn engine_kind_is_rejected_where_meaningless() {
        let err = SimBuilder::new(devices(1), config(1))
            .engine_kind(EngineKind::EventDriven)
            .build_sim()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("engine_kind"));

        let err = SimBuilder::new(devices(1), config(1))
            .engine_kind(EngineKind::EventDriven)
            .build_resilient()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("engine_kind"));

        // Asking the event-sim terminal for a lockstep engine is a
        // contradiction, not a silent fallback.
        let err = SimBuilder::new(devices(1), config(1))
            .engine_kind(EngineKind::Lockstep)
            .build_event_sim()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("engine_kind"));
    }

    #[test]
    fn churn_is_rejected_on_lockstep_targets() {
        use fedsched_faults::ChurnConfig;
        let churn = ChurnConfig::symmetric(0.05, 60.0);

        let err = SimBuilder::new(devices(1), config(1))
            .faults(FaultConfig::none(), 4)
            .churn(churn)
            .build_resilient()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("churn"));

        // A churn process smuggled in through the fault config is caught
        // too — lockstep would silently ignore the timeline otherwise.
        let err = SimBuilder::new(devices(1), config(1))
            .faults(FaultConfig::none().with_churn_process(churn), 4)
            .build_resilient()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("churn"));

        // Engine default (lockstep cohorts) rejects as well; the explicit
        // event-driven engine accepts.
        let err = SimBuilder::new(devices(1), config(1))
            .faults(FaultConfig::none(), 4)
            .churn(churn)
            .build_engine()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("churn"));
        assert!(SimBuilder::new(devices(1), config(1))
            .faults(FaultConfig::none(), 4)
            .churn(churn)
            .engine_kind(EngineKind::EventDriven)
            .build_engine()
            .is_ok());

        let err = SimBuilder::new(devices(1), config(1))
            .faults(FaultConfig::none(), 4)
            .churn(churn)
            .admission(crate::AdmissionPolicy::MidRoundFill)
            .build_resilient()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("churn"));
    }

    #[test]
    fn malformed_churn_combinations_are_typed() {
        use fedsched_faults::ChurnConfig;

        // Churn with no fault source has no plan to ride on.
        let err = SimBuilder::new(devices(1), config(1))
            .churn(ChurnConfig::symmetric(0.05, 60.0))
            .build_event_sim()
            .err()
            .unwrap();
        assert_eq!(err.cause_code(), "invalid_churn");

        // Admission without churn is a contradiction.
        let err = SimBuilder::new(devices(1), config(1))
            .faults(FaultConfig::none(), 4)
            .admission(crate::AdmissionPolicy::NextRound)
            .build_event_sim()
            .err()
            .unwrap();
        assert_eq!(err.cause_code(), "invalid_churn");

        // Malformed numeric knobs.
        let err = SimBuilder::new(devices(1), config(1))
            .faults(FaultConfig::none(), 4)
            .churn(ChurnConfig::symmetric(-1.0, 60.0))
            .build_event_sim()
            .err()
            .unwrap();
        assert_eq!(err.cause_code(), "invalid_churn");
        let err = SimBuilder::new(devices(1), config(1))
            .faults(FaultConfig::none(), 4)
            .churn(ChurnConfig::symmetric(0.05, 0.0))
            .build_event_sim()
            .err()
            .unwrap();
        assert_eq!(err.cause_code(), "invalid_churn");
    }

    #[test]
    fn selection_gating_and_validation_are_typed() {
        use fedsched_bandit::{PolicyKind, SelectionConfig};
        use fedsched_core::FedLbap;
        let ucb = SelectionConfig::new(PolicyKind::Ucb1 { c: 1.0 }, 2);

        // The plain sim has no selection machinery: typed rejection.
        let err = SimBuilder::new(devices(1), config(1))
            .selection(Selection::Bandit(ucb))
            .build_sim()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("selection"));

        // Selection::Off is the default, not a chaos trigger.
        assert!(SimBuilder::new(devices(1), config(1))
            .selection(Selection::Off)
            .build_sim()
            .is_ok());

        // Malformed knobs map to invalid_selection on every chaos target.
        let zero_k = SelectionConfig::new(PolicyKind::ThompsonSampling, 0);
        let err = SimBuilder::new(devices(1), config(1))
            .selection(Selection::Bandit(zero_k))
            .build_resilient()
            .err()
            .unwrap();
        assert_eq!(err.cause_code(), "invalid_selection");
        let bad_eps = SelectionConfig::new(PolicyKind::EpsilonGreedy { epsilon: 1.5 }, 2);
        let err = SimBuilder::new(devices(1), config(1))
            .selection(Selection::Bandit(bad_eps))
            .build_engine()
            .err()
            .unwrap();
        assert_eq!(err.cause_code(), "invalid_selection");

        // Selection owns the per-round re-plan; a periodic rescheduler
        // alongside it is a contradiction.
        let err = SimBuilder::new(devices(1), config(1))
            .selection(Selection::Bandit(ucb))
            .rescheduler(Box::new(FedLbap), 2)
            .build_resilient()
            .err()
            .unwrap();
        assert_eq!(err.cause_code(), "invalid_selection");

        // Every chaos-capable target accepts a valid config.
        assert!(SimBuilder::new(devices(1), config(1))
            .selection(Selection::Bandit(ucb))
            .build_resilient()
            .is_ok());
        assert!(SimBuilder::new(devices(1), config(1))
            .selection(Selection::Bandit(ucb))
            .build_event_sim()
            .is_ok());
        assert!(SimBuilder::new(devices(1), config(1))
            .selection(Selection::Bandit(ucb))
            .build_engine()
            .is_ok());
        assert!(SimBuilder::new(devices(1), config(1))
            .selection(Selection::Bandit(ucb))
            .build_coordinator()
            .is_ok());
        assert!(SimBuilder::new(devices(1), config(1))
            .selection(Selection::Bandit(ucb))
            .build_hier()
            .is_ok());
    }

    #[test]
    fn hier_knobs_are_rejected_off_the_hier_target() {
        let err = SimBuilder::new(devices(1), config(1))
            .edges(2)
            .build_sim()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("edges"));

        let err = SimBuilder::new(devices(1), config(1))
            .edge_link(Link::lte_tmobile())
            .build_resilient()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("edge_link"));

        let err = SimBuilder::new(devices(1), config(1))
            .edge_aggregator(AggregatorKind::Median)
            .build_engine()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("edge_aggregator"));

        let err = SimBuilder::new(devices(1), config(1))
            .server_aggregator(AggregatorKind::Median)
            .build_coordinator()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("server_aggregator"));

        let err = SimBuilder::new(devices(1), config(1))
            .edges(1)
            .build_event_sim()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("edges"));
    }

    #[test]
    fn malformed_topologies_are_typed() {
        let err = SimBuilder::new(devices(1), config(1))
            .edges(0)
            .build_hier()
            .err()
            .unwrap();
        assert_eq!(err.cause_code(), "invalid_topology");

        // testbed_1 has 3 devices => 1 cohort at the default cohort size.
        let err = SimBuilder::new(devices(1), config(1))
            .edges(2)
            .build_hier()
            .err()
            .unwrap();
        assert_eq!(
            err,
            ConfigError::InvalidTopology("more edge aggregators than cohorts")
        );

        // Hier still rejects knobs the engine core cannot honour.
        let err = SimBuilder::new(devices(1), config(1))
            .buffered_async(2, 0.5)
            .build_hier()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::UnsupportedOption("buffered_async"));

        // Tier aggregators are validated like the device-tier one.
        let err = SimBuilder::new(devices(1), config(1))
            .edge_aggregator(AggregatorKind::MultiKrum { f: 1, k: 0 })
            .build_hier()
            .err()
            .unwrap();
        assert_eq!(err.cause_code(), "invalid_aggregator");
    }

    #[test]
    fn hier_defaults_build_and_report_parity_shape() {
        let mut hier = SimBuilder::new(devices(3), config(3)).build_hier().unwrap();
        assert_eq!(hier.n_edges(), hier.n_cohorts());
        let report = hier.run(&schedule(), 2);
        let mut flat = SimBuilder::new(devices(3), config(3))
            .build_engine()
            .unwrap();
        let flat_report = flat.run(&schedule(), 2);
        assert_eq!(report.timing, flat_report.timing);
        assert_eq!(report.rounds, flat_report.rounds);
        assert_eq!(report.cohorts, flat_report.cohorts);
        assert_eq!(report.edge_rejections, 0);
        assert_eq!(report.server_rejections, 0);
    }

    #[test]
    fn configure_after_run_is_typed() {
        let mut engine = SimBuilder::new(devices(3), config(3))
            .build_engine()
            .unwrap();
        let _ = engine.run(&schedule(), 1);
        let err = engine.try_with_cohort_size(2).err().unwrap();
        assert_eq!(err, ConfigError::ConfiguredAfterRun("cohort size"));
        assert_eq!(err.cause_code(), "configured_after_run");
    }

    #[test]
    fn display_and_cause_codes_are_stable() {
        let cases: Vec<(ConfigError, &str)> = vec![
            (ConfigError::ZeroCohortSize, "zero_cohort_size"),
            (ConfigError::ZeroThreads, "zero_threads"),
            (
                ConfigError::ConfiguredAfterRun("probe"),
                "configured_after_run",
            ),
            (ConfigError::EmptyAssignment, "empty_assignment"),
            (ConfigError::InvalidDeadline("x"), "invalid_deadline"),
            (ConfigError::InvalidSocFloor(2.0), "invalid_soc_floor"),
            (ConfigError::InvalidRetry("x"), "invalid_retry"),
            (ConfigError::InvalidAsync("x"), "invalid_async"),
            (ConfigError::UnsupportedOption("x"), "unsupported_option"),
            (
                ConfigError::ArityMismatch {
                    what: "priors",
                    expected: 3,
                    got: 1,
                },
                "arity_mismatch",
            ),
            (
                ConfigError::ZeroRescheduleInterval,
                "zero_reschedule_interval",
            ),
            (ConfigError::InvalidAggregator("x"), "invalid_aggregator"),
            (ConfigError::InvalidAdversary("x"), "invalid_adversary"),
            (ConfigError::InvalidChurn("x"), "invalid_churn"),
            (ConfigError::InvalidTopology("x"), "invalid_topology"),
            (ConfigError::NotSerializable("x"), "not_serializable"),
            (ConfigError::InvalidSpec("bad".to_string()), "invalid_spec"),
            (ConfigError::InvalidSelection("x"), "invalid_selection"),
        ];
        for (err, code) in cases {
            assert_eq!(err.cause_code(), code);
            assert!(!err.to_string().is_empty());
            let _: &dyn std::error::Error = &err;
        }
    }

    #[test]
    fn builder_deadline_matches_post_hoc_policy_setter() {
        // The builder's .deadline(..) and the sim-level
        // with_deadline_policy(..) are the same configuration — pinned
        // here since the positional shims that used to pin it are gone.
        let mut new_style = SimBuilder::new(devices(5), config(5))
            .deadline(DeadlinePolicy::Fixed(60.0))
            .build_resilient()
            .unwrap();
        let mut setter_style = SimBuilder::new(devices(5), config(5))
            .build_resilient()
            .unwrap()
            .with_deadline_policy(DeadlinePolicy::Fixed(60.0));
        assert_eq!(
            new_style.run(&schedule(), 4),
            setter_style.run(&schedule(), 4)
        );
    }
}
