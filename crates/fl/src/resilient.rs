//! A resilient round controller: [`RoundSim`](crate::RoundSim) semantics
//! under injected faults, with retries, deadlines, straggler rescue and
//! between-round rescheduling.
//!
//! Production federated learning loses clients constantly — phones crash,
//! churn out of the cohort, drop packets and slow down under background
//! load. [`ResilientRoundSim`] replays a schedule against the device
//! simulator while a [`FaultInjector`] decrees per-round fates, and models
//! the server-side countermeasures:
//!
//! * **Retries** — every model push/pull goes through
//!   [`LossyLink::transfer`] under a [`RetryPolicy`] (capped exponential
//!   backoff, per-attempt timeout), all simulated in round time;
//! * **Deadlines** — an optional per-round deadline cuts stragglers off
//!   with partial credit for the shards they finished;
//! * **Rescue** — once failures are detected, the failed users' unfinished
//!   shards are greedily reassigned (LPT) to the round's survivors, who
//!   receive an extra transfer and compute the remainder;
//! * **Rescheduling** — an optional scheduler re-plans the shard allocation
//!   every few rounds from [`OnlineProfiler`] estimates fitted to what the
//!   faulted cohort actually delivered.
//!
//! Determinism contract: with a quiet injector and the default
//! configuration, `ResilientRoundSim` consumes the main RNG stream exactly
//! like `RoundSim` (one comm sample + one compute call per participating
//! device, in device-index order) and produces a bit-identical
//! [`TimingReport`]. All fault-only randomness (loss decisions, backoff
//! jitter) comes from counter-based [`DrawStream`](fedsched_faults::DrawStream)s.

use fedsched_bandit::{selection_stream, SelectionConfig, SelectionPolicy};
use fedsched_core::{CostMatrix, DeadlinePolicy, FedLbap, Schedule, Scheduler};
use fedsched_device::{Device, TrainingWorkload};
use fedsched_faults::{AdversaryPlan, DeviceFate, FaultInjector};
use fedsched_net::{Link, LossyLink, RetryPolicy};
use fedsched_profiler::{LinearProfile, OnlineProfiler};
use fedsched_robust::AggregatorKind;
use fedsched_telemetry::{Event, Probe};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::clock;
use crate::roundsim::{predict_round_times, TimingReport};

/// Cost profile assigned to devices the server knows nothing about (never
/// observed) or knows to be gone: large but finite, so cost matrices stay
/// valid while schedulers starve the device of work.
const PENALTY_FIXED_S: f64 = 1e6;
/// Per-sample slope of the penalty profile.
const PENALTY_PER_SAMPLE_S: f64 = 1e3;
/// Forgetting factor for the per-device online profilers: recent rounds
/// dominate, so estimates track thermal drift and contention.
const PROFILER_LAMBDA: f64 = 0.9;
/// Dimension of the proxy update vectors the timing simulator feeds the
/// robust aggregator (the real training engine aggregates full parameter
/// vectors; the timing path only needs enough coordinates to score).
const PROXY_DIM: usize = 8;

/// What one simulated round delivered under faults.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RoundOutcome {
    /// Global round index.
    pub round: usize,
    /// Shards scheduled this round.
    pub scheduled: usize,
    /// Shards completed by their originally assigned user (including
    /// partial credit for deadline-cut stragglers).
    pub completed: usize,
    /// Shards recovered by reassignment to survivors.
    pub rescued: usize,
    /// Shards lost outright (crashes, failed transfers, no rescue target).
    pub lost_shards: usize,
    /// Shards handed to mid-round-admitted arrivals (event engine with
    /// `AdmissionPolicy::MidRoundFill` only; 0 everywhere else).
    pub admitted: usize,
    /// Admitted shards the arrival actually completed (`<= admitted`).
    pub admit_done: usize,
    /// Admitted shards the arrival did *not* complete this round (its
    /// transfer failed); the device keeps the data, so they are carried,
    /// not lost twice: `carried = admitted - admit_done`.
    pub carried: usize,
    /// Fraction of planned-plus-admitted work aggregated:
    /// `(completed + rescued + admit_done) / (scheduled + admitted)`.
    /// Admitted work joins the *denominator* too, so mid-round joiners can
    /// never push coverage above 1.
    pub coverage: f64,
    /// Synchronous round time including any rescue phase.
    pub makespan_s: f64,
    /// Users that lost at least one shard in the primary phase.
    pub failed_users: usize,
    /// Users cut off by the round deadline.
    pub timed_out: usize,
    /// Updates the robust aggregator excluded this round (0 unless an
    /// adversary is configured).
    pub rejected_updates: usize,
}

/// Full report of a chaos run: plain timing plus per-round fault outcomes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChaosReport {
    /// Timing statistics, shape-compatible with [`RoundSim`](crate::RoundSim)
    /// output.
    pub timing: TimingReport,
    /// One outcome per simulated round.
    pub rounds: Vec<RoundOutcome>,
}

impl ChaosReport {
    /// Total shards lost across all rounds.
    pub fn total_lost(&self) -> usize {
        self.rounds.iter().map(|r| r.lost_shards).sum()
    }

    /// Total shards rescued across all rounds.
    pub fn total_rescued(&self) -> usize {
        self.rounds.iter().map(|r| r.rescued).sum()
    }

    /// Mean per-round coverage.
    pub fn mean_coverage(&self) -> f64 {
        if self.rounds.is_empty() {
            return 1.0;
        }
        self.rounds.iter().map(|r| r.coverage).sum::<f64>() / self.rounds.len() as f64
    }
}

/// Between-round rescheduling configuration.
struct Rescheduler {
    scheduler: Box<dyn Scheduler>,
    every: usize,
}

/// Online bandit-driven client-selection state (see
/// [`ResilientRoundSim::with_selection`]).
struct SelectionState {
    config: SelectionConfig,
    policy: Box<dyn SelectionPolicy>,
    /// Resolved selection-stream seed (config override or master seed).
    seed: u64,
    /// Battery SoC snapshot per device at selection time, for the reward's
    /// energy discount.
    soc_at_select: Vec<f64>,
    /// Arms picked for the round in flight (ascending device indices).
    last_selected: Vec<usize>,
}

/// Phase-1 result for one participating device.
///
/// Produced by [`ResilientRoundSim::phase1_device`] and consumed by both
/// execution paths (the lockstep sweep here and
/// [`EventRoundSim`](crate::EventRoundSim)'s queue drain).
pub(crate) enum Phase1 {
    /// Delivered all its shards.
    Survivor {
        finish: f64,
        comm: f64,
        compute: f64,
        shards: usize,
    },
    /// Alive but cut off by the deadline; delivered `done` shards.
    Cut {
        comm: f64,
        done: usize,
        at_risk: usize,
    },
    /// Transfer never went through (retries exhausted).
    CommFail { elapsed: f64, shards: usize },
    /// Crashed or churned mid-compute at `t_fail`.
    Fail { t_fail: f64, shards: usize },
    /// Offline the whole round.
    Offline { shards: usize },
    /// Departed mid-round at `t` via the continuous churn process (event
    /// engine only — the lockstep path never constructs this variant).
    /// Delivered `done` shards of partial credit before leaving; the
    /// remaining `at_risk` shards are orphaned and rescueable from `t`.
    Departed {
        t: f64,
        comm: f64,
        done: usize,
        at_risk: usize,
    },
}

impl Phase1 {
    /// This entry's contribution to crash detection, as
    /// `(responder candidate, failure candidate)` maxima feeding
    /// [`clock::crash_detection`](crate::clock::crash_detection).
    pub(crate) fn detection_bounds(&self, deadline_s: Option<f64>) -> (f64, f64) {
        match self {
            Phase1::Survivor { finish, .. } => (*finish, 0.0),
            Phase1::Cut { .. } => (deadline_s.unwrap_or(0.0), 0.0),
            Phase1::CommFail { elapsed, .. } => (0.0, *elapsed),
            Phase1::Fail { t_fail, .. } => (0.0, *t_fail),
            Phase1::Offline { .. } => (0.0, 0.0),
            // The server heard from the device until `t` (partial credit
            // was delivered), so a departure bounds detection like a
            // responder, not like a silent crash.
            Phase1::Departed { t, .. } => (*t, 0.0),
        }
    }
}

/// Order-independent per-round accumulators over phase-1 entries.
///
/// Everything in here is a sum, count or max, so absorbing entries in any
/// order yields the same tally — except [`RoundTally::pool`], which is
/// built in *absorption order* and therefore must be fed entries in device
/// index order (the rescue LPT ledger and its telemetry depend on pool
/// order). Both execution paths absorb in index order.
pub(crate) struct RoundTally {
    /// Shards completed by their originally assigned user.
    pub(crate) completed: usize,
    /// Users that lost at least one shard in phase 1.
    pub(crate) failed_users: usize,
    /// Users cut off by the round deadline.
    pub(crate) timed_out: usize,
    /// Unfinished shards awaiting rescue: `(original user, count)`.
    pub(crate) pool: Vec<(usize, usize)>,
    /// When the server has detected every failure and can reassign.
    pub(crate) detection: f64,
}

impl RoundTally {
    pub(crate) fn new() -> Self {
        RoundTally {
            completed: 0,
            failed_users: 0,
            timed_out: 0,
            pool: Vec::new(),
            detection: 0.0,
        }
    }

    /// Account one phase-1 entry. Returns `(total, busy, comm)`: `total`
    /// is what the server waits on, `busy` the user's own occupied time
    /// (they differ for crashed users, whose absence is only *noticed* at
    /// `crash_det`), `comm` the straggler's communication share if this
    /// entry ends up being the straggler.
    pub(crate) fn absorb(
        &mut self,
        user: usize,
        entry: &Phase1,
        deadline_s: Option<f64>,
        crash_det: f64,
    ) -> (f64, f64, f64) {
        match entry {
            Phase1::Survivor {
                finish,
                comm,
                shards,
                ..
            } => {
                self.completed += shards;
                (*finish, *finish, *comm)
            }
            Phase1::Cut {
                comm,
                done,
                at_risk,
            } => {
                self.completed += done;
                self.pool.push((user, *at_risk));
                let d = deadline_s.unwrap_or(0.0);
                self.detection = self.detection.max(d);
                self.failed_users += 1;
                self.timed_out += 1;
                (d, d, *comm)
            }
            Phase1::CommFail { elapsed, shards } => {
                self.pool.push((user, *shards));
                self.detection = self.detection.max(*elapsed);
                self.failed_users += 1;
                (*elapsed, *elapsed, *elapsed)
            }
            Phase1::Fail { t_fail, shards } => {
                self.pool.push((user, *shards));
                self.detection = self.detection.max(crash_det);
                self.failed_users += 1;
                (crash_det, *t_fail, 0.0)
            }
            Phase1::Offline { shards } => {
                self.pool.push((user, *shards));
                self.failed_users += 1;
                (0.0, 0.0, 0.0)
            }
            Phase1::Departed {
                t,
                comm,
                done,
                at_risk,
            } => {
                self.completed += done;
                self.pool.push((user, *at_risk));
                self.detection = self.detection.max(*t);
                self.failed_users += 1;
                (*t, *t, comm.min(*t))
            }
        }
    }

    /// Shards awaiting rescue.
    pub(crate) fn pool_total(&self) -> usize {
        self.pool.iter().map(|(_, s)| s).sum()
    }
}

/// Running straggler selection: strictly-greater comparison, so among
/// equal-time finishers the *first observed* wins. The lockstep sweep
/// observes in device index order; the event path observes in `(time,
/// seq)` pop order with sequence numbers assigned in index order — the
/// same winner either way.
pub(crate) struct StragglerTrack {
    pub(crate) worst: f64,
    pub(crate) worst_comm: f64,
    pub(crate) straggler: usize,
}

impl StragglerTrack {
    pub(crate) fn new() -> Self {
        StragglerTrack {
            worst: 0.0,
            worst_comm: 0.0,
            straggler: 0,
        }
    }

    pub(crate) fn observe(&mut self, user: usize, total: f64, comm: f64) {
        if total > self.worst {
            self.worst = total;
            self.worst_comm = comm;
            self.straggler = user;
        }
    }
}

/// [`RoundSim`](crate::RoundSim) with a fault model and recovery controls.
pub struct ResilientRoundSim {
    devices: Vec<Device>,
    workload: TrainingWorkload,
    link: Link,
    model_bytes: f64,
    rng: StdRng,
    probe: Probe,
    rounds_done: usize,
    injector: FaultInjector,
    retry: RetryPolicy,
    deadline: DeadlinePolicy,
    rescue: bool,
    rescue_soc_floor: f64,
    rescheduler: Option<Rescheduler>,
    profilers: Vec<OnlineProfiler>,
    has_prior: bool,
    /// Devices the server has observed leaving for good.
    known_gone: Vec<bool>,
    aggregator: AggregatorKind,
    adversary: Option<AdversaryPlan>,
    /// Master seed, kept so the selection stream can inherit it.
    seed: u64,
    selection: Option<SelectionState>,
}

impl ResilientRoundSim {
    /// Positional constructor backing the
    /// [`SimBuilder`](crate::SimBuilder), the only public construction
    /// path (the `new` shim was removed with the job-spec API).
    ///
    /// # Panics
    /// Panics if the injector was planned for a different cohort size.
    pub(crate) fn from_parts(
        devices: Vec<Device>,
        workload: TrainingWorkload,
        link: Link,
        model_bytes: f64,
        seed: u64,
        injector: FaultInjector,
    ) -> Self {
        assert_eq!(
            injector.plan().n_devices(),
            devices.len(),
            "fault plan/cohort size mismatch"
        );
        let n = devices.len();
        ResilientRoundSim {
            devices,
            workload,
            link,
            model_bytes,
            rng: StdRng::seed_from_u64(seed),
            probe: Probe::disabled(),
            rounds_done: 0,
            injector,
            retry: RetryPolicy::single_attempt(),
            deadline: DeadlinePolicy::Off,
            rescue: true,
            rescue_soc_floor: 0.0,
            rescheduler: None,
            profilers: vec![OnlineProfiler::new(PROFILER_LAMBDA); n],
            has_prior: false,
            known_gone: vec![false; n],
            aggregator: AggregatorKind::FedAvg,
            adversary: None,
            seed,
            selection: None,
        }
    }

    /// Attach a telemetry probe (builder form). Emits the same
    /// `round_start` / `user_span` / `round_end` timeline as
    /// [`RoundSim`](crate::RoundSim), plus the fault vocabulary
    /// (`fault_injected`, `transfer_retry`, `user_timeout`,
    /// `shards_reassigned`, `round_degraded`).
    pub fn with_probe(mut self, probe: Probe) -> Self {
        for d in &mut self.devices {
            d.set_probe(probe.clone());
        }
        self.probe = probe;
        self
    }

    /// Set the retry policy applied to every transfer.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        retry.validate();
        self.retry = retry;
        self
    }

    /// Set the per-round deadline policy. `Fixed` applies a constant cutoff;
    /// `MeanFactor` / `Quantile` re-resolve the cutoff **every round** from
    /// side-effect-free predicted per-user times
    /// ([`predict_round_times`](crate::roundsim::predict_round_times)) on
    /// the *current* schedule and thermal state, so the deadline tightens
    /// or relaxes as the cohort drifts.
    ///
    /// # Panics
    /// Panics on a malformed policy (non-positive fixed deadline or mean
    /// factor, quantile outside `[0, 1]`) — the fallible path is
    /// [`SimBuilder::deadline`](crate::SimBuilder::deadline).
    pub fn with_deadline_policy(mut self, policy: DeadlinePolicy) -> Self {
        if let Err(rule) = policy.check() {
            panic!("{rule}");
        }
        self.deadline = policy;
        self
    }

    /// Overwrite the deadline for the *next* rounds with an
    /// already-resolved cutoff (or clear it). This is the coordination
    /// hook: [`Coordinator`](crate::Coordinator) resolves one global
    /// deadline from population-pooled predictions and pushes it into every
    /// cohort before the cohorts run.
    pub fn set_deadline(&mut self, deadline_s: Option<f64>) {
        if let Some(d) = deadline_s {
            assert!(d > 0.0 && d.is_finite(), "deadline must be positive");
        }
        self.deadline = match deadline_s {
            Some(d) => DeadlinePolicy::Fixed(d),
            None => DeadlinePolicy::Off,
        };
    }

    /// The deadline resolved for the coming round: `Fixed` passes through,
    /// adaptive policies pool the cohort's predicted per-user times.
    fn round_deadline(&self, current: &Schedule) -> Option<f64> {
        match self.deadline {
            DeadlinePolicy::Off => None,
            DeadlinePolicy::Fixed(d) => Some(d),
            _ => {
                let predicted = predict_round_times(
                    &self.devices,
                    &self.workload,
                    &self.link,
                    self.model_bytes,
                    current,
                );
                self.deadline.resolve(&predicted)
            }
        }
    }

    /// [`ResilientRoundSim::round_deadline`] restricted to an active set:
    /// the event-driven path predicts only the users it will actually
    /// touch. Identical result — idle users predict `0.0` and
    /// [`DeadlinePolicy::resolve`] ignores non-positive entries, so
    /// dropping them from the pool never changes the resolved cutoff.
    pub(crate) fn round_deadline_active(
        &self,
        current: &Schedule,
        active: &[usize],
    ) -> Option<f64> {
        match self.deadline {
            DeadlinePolicy::Off => None,
            DeadlinePolicy::Fixed(d) => Some(d),
            _ => {
                let comm = self.link.round_seconds(self.model_bytes);
                let predicted: Vec<f64> = active
                    .iter()
                    .map(|&j| {
                        let samples = (current.shards[j] as f64 * current.shard_size) as usize;
                        crate::roundsim::predict_user_time(
                            &self.devices[j],
                            &self.workload,
                            comm,
                            samples,
                        )
                    })
                    .collect();
                self.deadline.resolve(&predicted)
            }
        }
    }

    /// Disable mid-round straggler rescue (failed users' shards are lost).
    pub fn without_rescue(mut self) -> Self {
        self.rescue = false;
        self
    }

    /// Select the robust aggregation rule the server scores deliveries with.
    ///
    /// With the default [`AggregatorKind::FedAvg`] (or with no adversary
    /// configured) the robust layer is entirely inert: no extra telemetry,
    /// no RNG consumption, bit-identical traces. The fallible counterpart is
    /// [`SimBuilder::aggregator`](crate::SimBuilder::aggregator).
    ///
    /// # Panics
    /// Panics on an invalid kind (e.g. Multi-Krum with `k == 0`).
    pub fn with_aggregator(mut self, kind: AggregatorKind) -> Self {
        if let Err(rule) = kind.validate() {
            panic!("{rule}");
        }
        self.aggregator = kind;
        self
    }

    /// Attach an adversary plan: compromised devices submit attacked proxy
    /// updates which the configured aggregator scores every round
    /// (`update_rejected` / `robust_aggregate` telemetry, plus the
    /// [`RoundOutcome::rejected_updates`] counter). A quiet plan (zero
    /// attacker fraction) leaves the run byte-identical to no plan at all.
    ///
    /// # Panics
    /// Panics if the plan was generated for a different cohort size.
    pub fn with_adversary(mut self, plan: AdversaryPlan) -> Self {
        assert_eq!(
            plan.n_devices(),
            self.devices.len(),
            "adversary plan/cohort size mismatch"
        );
        self.adversary = Some(plan);
        self
    }

    /// Energy-aware rescue: never reassign orphaned shards to a survivor
    /// whose battery state of charge is below `floor` (in `[0, 1]`).
    ///
    /// Rescue work is *extra* drain a device's owner never signed up for;
    /// piling it onto a nearly-empty phone trades one lost allocation this
    /// round for a depleted (hence permanently lost) device in the next.
    /// The floor is checked against each survivor's SoC at rescue time —
    /// after this round's own training drain. The default floor of `0.0`
    /// accepts every survivor, preserving the pre-existing behaviour bit
    /// for bit.
    ///
    /// # Panics
    /// Panics if `floor` is outside `[0, 1]`.
    pub fn with_rescue_soc_floor(mut self, floor: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&floor) && floor.is_finite(),
            "rescue SoC floor must be in [0, 1], got {floor}"
        );
        self.rescue_soc_floor = floor;
        self
    }

    /// Re-plan the shard allocation with `scheduler` every `every` rounds,
    /// using online profiles fitted to observed (faulted) round behaviour.
    ///
    /// # Panics
    /// Panics if `every == 0`.
    pub fn with_rescheduler(mut self, scheduler: Box<dyn Scheduler>, every: usize) -> Self {
        assert!(every > 0, "rescheduling interval must be positive");
        self.rescheduler = Some(Rescheduler { scheduler, every });
        self
    }

    /// Warm-start the per-device online profilers from offline profiles, so
    /// the first reschedule has an estimate even for devices that have not
    /// been observed yet.
    ///
    /// # Panics
    /// Panics if `priors` does not match the cohort size.
    pub fn with_priors(mut self, priors: &[LinearProfile]) -> Self {
        assert_eq!(
            priors.len(),
            self.devices.len(),
            "priors/cohort size mismatch"
        );
        self.profilers = priors
            .iter()
            .map(|p| OnlineProfiler::with_prior(PROFILER_LAMBDA, p))
            .collect();
        self.has_prior = true;
        self
    }

    /// Enable online bandit-driven client selection: before every round a
    /// [`SelectionPolicy`] picks a `k`-device cohort among devices not
    /// known gone, the full shard load is re-split among the picked
    /// devices, and after the round each picked arm is credited a reward —
    /// observed throughput (samples per second) discounted by the round's
    /// battery drain, `0.0` for picked devices that delivered nothing.
    ///
    /// All selection randomness comes from a dedicated salted
    /// [`selection_stream`] keyed by `(selection seed, round)`, so runs
    /// replay byte-identically and never perturb the main RNG.
    ///
    /// # Panics
    /// Panics on an invalid config, or if a rescheduler is attached —
    /// selection owns the per-round re-plan. The fallible path is
    /// [`SimBuilder::selection`](crate::SimBuilder::selection).
    pub fn with_selection(mut self, config: SelectionConfig) -> Self {
        if let Err(rule) = config.validate() {
            panic!("{rule}");
        }
        assert!(
            self.rescheduler.is_none(),
            "selection re-plans the split every round; drop the rescheduler"
        );
        let n = self.devices.len();
        self.selection = Some(SelectionState {
            policy: config.policy.build(),
            seed: config.seed.resolve(self.seed),
            config,
            soc_at_select: vec![1.0; n],
            last_selected: Vec::new(),
        });
        self
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Borrow the devices (e.g. to inspect battery drain afterwards).
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The fault injector driving this run.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Reset every device's thermal state (between experiment arms).
    pub fn cool_down(&mut self) {
        for d in &mut self.devices {
            d.cool_down();
        }
    }

    /// Simulate `rounds` synchronous rounds under faults, starting from
    /// `schedule` (which a configured rescheduler may replace between
    /// rounds). Device thermal state persists across rounds.
    ///
    /// # Panics
    /// Panics if the schedule's user count differs from the cohort size.
    pub fn run(&mut self, schedule: &Schedule, rounds: usize) -> ChaosReport {
        assert_eq!(
            schedule.shards.len(),
            self.devices.len(),
            "schedule/cohort size mismatch"
        );
        let n = self.devices.len();
        let orig_total = schedule.total_shards();
        let mut current = schedule.clone();
        let mut per_round = Vec::with_capacity(rounds);
        let mut user_totals = vec![0.0f64; n];
        let mut straggler_comm = 0.0f64;
        let mut outcomes = Vec::with_capacity(rounds);

        for _ in 0..rounds {
            let round = self.rounds_done;
            // Bandit selection re-splits the load before anything else
            // looks at the schedule; without selection this is a no-op.
            self.selection_begin(&mut current, orig_total);
            // Resolve the deadline for this round *before* anything draws
            // from the RNG: adaptive policies predict on clones, so the
            // resolution is invisible to the simulation proper.
            let deadline_s = self.round_deadline(&current);
            let participants = current.shards.iter().filter(|&&k| k > 0).count();
            self.probe.emit(|| Event::RoundStart {
                round,
                n_users: participants,
            });

            let lossy = self.emit_round_faults(round);

            // Phase 1: every scheduled device attempts its round. Device
            // iteration order and main-RNG consumption match `RoundSim`
            // exactly when no fault fires.
            let mut entries: Vec<(usize, Phase1)> = Vec::new();
            // Profiler observations `(device, samples, seconds)` gathered
            // from everything the server actually received this round.
            let mut observed: Vec<(usize, f64, f64)> = Vec::new();
            for j in 0..n {
                let samples = (current.shards[j] as f64 * current.shard_size) as usize;
                if samples == 0 {
                    continue;
                }
                let entry =
                    self.phase1_device(round, j, &current, &lossy, deadline_s, None, &mut observed);
                entries.push((j, entry));
            }

            // Crashed users are detected at the deadline when one is set;
            // otherwise the server only notices once everyone who will
            // respond has responded.
            let mut responder_max = 0.0f64;
            let mut fail_max = 0.0f64;
            for (_, e) in &entries {
                let (r, f) = e.detection_bounds(deadline_s);
                responder_max = responder_max.max(r);
                fail_max = fail_max.max(f);
            }
            let crash_det = clock::crash_detection(deadline_s, responder_max, fail_max);

            // Aggregate phase 1: makespan/straggler selection runs in device
            // index order with the same tie-breaking as `RoundSim`.
            let mut tally = RoundTally::new();
            let mut track = StragglerTrack::new();
            for (j, e) in &entries {
                let (total, busy, comm_v) = tally.absorb(*j, e, deadline_s, crash_det);
                user_totals[*j] += busy;
                track.observe(*j, total, comm_v);
            }

            // Phase 2: rescue. Reassign the pool per-shard (LPT greedy) to
            // survivors; each rescuer pays an extra transfer plus the
            // reassigned compute, simulated on the real device model.
            let mut rescued = 0usize;
            if self.rescue && tally.pool_total() > 0 {
                rescued = self.rescue_phase(
                    round,
                    &lossy,
                    current.shard_size,
                    &entries,
                    &tally,
                    &mut track,
                    &mut user_totals,
                    &mut observed,
                );
            }

            let rejected_updates = self.robust_overlay(round, &entries);

            // Selection rewards settle after the round closes; the clone
            // exists only while a policy is attached.
            let observed_for_reward = if self.selection.is_some() {
                observed.clone()
            } else {
                Vec::new()
            };
            let outcome = self.close_round(
                round,
                current.total_shards(),
                &tally,
                &track,
                rescued,
                0,
                0,
                rejected_updates,
                observed,
            );
            per_round.push(track.worst);
            straggler_comm += if track.worst > 0.0 {
                track.worst_comm / track.worst
            } else {
                0.0
            };
            outcomes.push(outcome);

            self.selection_settle(round, &observed_for_reward);
            self.maybe_reschedule(&mut current, orig_total);
        }

        assemble_report(per_round, outcomes, &user_totals, straggler_comm, rounds)
    }

    /// Emit this round's injected-fault telemetry (outage windows, group
    /// outages) and build the lossy link every transfer goes through.
    pub(crate) fn emit_round_faults(&self, round: usize) -> LossyLink {
        let outage_windows = self.injector.outages(round).to_vec();
        for &(s, e) in &outage_windows {
            self.probe.emit(|| Event::FaultInjected {
                round,
                device: None,
                kind: "outage".to_string(),
                magnitude: e - s,
            });
        }
        for &(group, duration_rounds) in self.injector.group_outages(round) {
            let members = self.injector.plan().group_members(group).len();
            self.probe.emit(|| Event::GroupOutage {
                round,
                group,
                members,
                duration_rounds,
            });
        }
        LossyLink::new(self.link, self.injector.loss_prob()).with_outages(outage_windows)
    }

    /// Phase 1 for one scheduled device: fate check, transfer under the
    /// retry policy, compute, deadline cut — with all per-user telemetry
    /// and profiler observations. Main-RNG consumption matches `RoundSim`
    /// exactly when no fault fires, so callers must invoke this in device
    /// index order over the scheduled (non-idle) users.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn phase1_device(
        &mut self,
        round: usize,
        j: usize,
        current: &Schedule,
        lossy: &LossyLink,
        deadline_s: Option<f64>,
        depart_at: Option<f64>,
        observed: &mut Vec<(usize, f64, f64)>,
    ) -> Phase1 {
        let k = current.shards[j];
        let samples = (k as f64 * current.shard_size) as usize;
        debug_assert!(samples > 0, "idle devices never enter phase 1");
        let fate = self.injector.fate(round, j);
        if !fate.is_online() {
            if matches!(fate, DeviceFate::Departed) {
                self.known_gone[j] = true;
            }
            self.probe.emit(|| Event::UserTimeout {
                round,
                user: j,
                cause: "offline".to_string(),
                shards_at_risk: k,
            });
            return Phase1::Offline { shards: k };
        }
        let cont = self.injector.contention(round, j);
        if cont > 1.0 {
            self.probe.emit(|| Event::FaultInjected {
                round,
                device: Some(j),
                kind: "contention".to_string(),
                magnitude: cont,
            });
        }
        let mut ds = self.injector.draw_stream(round, j);
        let transfer = lossy.transfer(
            self.model_bytes,
            0.0,
            &self.retry,
            &mut self.rng,
            &mut || ds.next_u01(),
        );
        for (i, &(el, cause)) in transfer.failures.iter().enumerate() {
            self.probe.emit(|| Event::TransferRetry {
                round,
                user: j,
                attempt: i + 1,
                cause: cause.as_str().to_string(),
                elapsed_s: el,
            });
        }
        if !transfer.delivered {
            self.probe.emit(|| Event::UserTimeout {
                round,
                user: j,
                cause: "comm".to_string(),
                shards_at_risk: k,
            });
            return Phase1::CommFail {
                elapsed: transfer.elapsed_s,
                shards: k,
            };
        }
        let comm = transfer.elapsed_s;
        let compute = self.devices[j].train_samples(&self.workload, samples)
            * cont
            * self.injector.slowdown(round, j);
        match fate {
            DeviceFate::Crash { at_frac } | DeviceFate::Depart { at_frac } => {
                let kind = if matches!(fate, DeviceFate::Depart { .. }) {
                    self.known_gone[j] = true;
                    "churn"
                } else {
                    "crash"
                };
                self.probe.emit(|| Event::FaultInjected {
                    round,
                    device: Some(j),
                    kind: kind.to_string(),
                    magnitude: at_frac,
                });
                self.probe.emit(|| Event::UserTimeout {
                    round,
                    user: j,
                    cause: kind.to_string(),
                    shards_at_risk: k,
                });
                Phase1::Fail {
                    t_fail: comm + at_frac * compute,
                    shards: k,
                }
            }
            _ => {
                let finish = comm + compute;
                // Mid-round process departure (event engine only — the
                // lockstep call site always passes `None`). Legacy fates
                // take precedence above; a departure fires only on the
                // otherwise healthy path, and only if it *strictly*
                // precedes both the device's own finish and any deadline
                // (on a tie the deadline cut wins).
                if let Some(t_dep) = depart_at {
                    if t_dep < finish && deadline_s.is_none_or(|d| t_dep < d) {
                        self.known_gone[j] = true;
                        let cut = clock::deadline_cut(k, comm, compute, t_dep);
                        let done = if t_dep <= comm { 0 } else { cut.done };
                        if done > 0 {
                            self.probe.emit(|| Event::UserSpan {
                                round,
                                user: j,
                                compute_s: cut.span_compute,
                                comm_s: comm,
                            });
                            observed.push((j, done as f64 * current.shard_size, cut.span_compute));
                        }
                        self.probe.emit(|| Event::DeviceDepart {
                            round,
                            t_s: t_dep,
                            user: j,
                        });
                        self.probe.emit(|| Event::ShardsOrphaned {
                            round,
                            user: j,
                            shards: k - done,
                        });
                        return Phase1::Departed {
                            t: t_dep,
                            comm,
                            done,
                            at_risk: k - done,
                        };
                    }
                }
                match deadline_s {
                    Some(d) if finish > d => {
                        let cut = clock::deadline_cut(k, comm, compute, d);
                        self.probe.emit(|| Event::UserSpan {
                            round,
                            user: j,
                            compute_s: cut.span_compute,
                            comm_s: comm,
                        });
                        self.probe.emit(|| Event::UserTimeout {
                            round,
                            user: j,
                            cause: "deadline".to_string(),
                            shards_at_risk: k - cut.done,
                        });
                        observed.push((j, cut.done as f64 * current.shard_size, cut.span_compute));
                        Phase1::Cut {
                            comm,
                            done: cut.done,
                            at_risk: k - cut.done,
                        }
                    }
                    _ => {
                        self.probe.emit(|| Event::UserSpan {
                            round,
                            user: j,
                            compute_s: compute,
                            comm_s: comm,
                        });
                        observed.push((j, samples as f64, compute));
                        Phase1::Survivor {
                            finish,
                            comm,
                            compute,
                            shards: k,
                        }
                    }
                }
            }
        }
    }

    /// Phase 2: LPT-reassign the tally's unfinished pool to eligible
    /// survivors; each rescuer pays an extra transfer plus the reassigned
    /// compute, simulated on the real device model. Mutates the straggler
    /// track / per-user totals / profiler observations in place and
    /// returns the number of rescued shards.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rescue_phase(
        &mut self,
        round: usize,
        lossy: &LossyLink,
        shard_size: f64,
        entries: &[(usize, Phase1)],
        tally: &RoundTally,
        track: &mut StragglerTrack,
        user_totals: &mut [f64],
        observed: &mut Vec<(usize, f64, f64)>,
    ) -> usize {
        let n = self.devices.len();
        struct Target {
            j: usize,
            avail: f64,
            per_shard: f64,
            assigned: usize,
        }
        let mut targets: Vec<Target> = entries
            .iter()
            .filter_map(|(j, e)| match e {
                Phase1::Survivor {
                    finish,
                    compute,
                    shards,
                    ..
                } if self.devices[*j].battery_soc() >= self.rescue_soc_floor => Some(Target {
                    j: *j,
                    avail: clock::rescue_available(*finish, tally.detection),
                    per_shard: compute / *shards as f64,
                    assigned: 0,
                }),
                _ => None,
            })
            .collect();
        if targets.is_empty() {
            return 0;
        }
        // `(from, to, shards)` reassignment ledger for telemetry.
        let mut ledger: Vec<(usize, usize, usize)> = Vec::new();
        for &(from, count) in &tally.pool {
            for _ in 0..count {
                let ti = targets
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let ca = a.avail + (a.assigned + 1) as f64 * a.per_shard;
                        let cb = b.avail + (b.assigned + 1) as f64 * b.per_shard;
                        ca.partial_cmp(&cb).expect("finite rescue costs")
                    })
                    .map(|(i, _)| i)
                    .expect("targets non-empty");
                targets[ti].assigned += 1;
                let to = targets[ti].j;
                match ledger.iter_mut().find(|l| l.0 == from && l.1 == to) {
                    Some(l) => l.2 += 1,
                    None => ledger.push((from, to, 1)),
                }
            }
        }
        for &(from_user, to_user, shards) in &ledger {
            self.probe.emit(|| Event::ShardsReassigned {
                round,
                from_user,
                to_user,
                shards,
            });
        }
        // Execute in target index order so main-RNG consumption is a pure
        // function of the plan.
        let mut rescued = 0usize;
        for t in &targets {
            if t.assigned == 0 {
                continue;
            }
            let mut ds = self.injector.draw_stream(round, n + t.j);
            let transfer = lossy.transfer(
                self.model_bytes,
                t.avail,
                &self.retry,
                &mut self.rng,
                &mut || ds.next_u01(),
            );
            for (i, &(el, cause)) in transfer.failures.iter().enumerate() {
                self.probe.emit(|| Event::TransferRetry {
                    round,
                    user: t.j,
                    attempt: i + 1,
                    cause: cause.as_str().to_string(),
                    elapsed_s: el,
                });
            }
            if !transfer.delivered {
                self.probe.emit(|| Event::UserTimeout {
                    round,
                    user: t.j,
                    cause: "comm".to_string(),
                    shards_at_risk: t.assigned,
                });
                user_totals[t.j] += transfer.elapsed_s;
                track.observe(t.j, t.avail + transfer.elapsed_s, transfer.elapsed_s);
                continue;
            }
            let extra_samples = (t.assigned as f64 * shard_size) as usize;
            let cont = self.injector.contention(round, t.j);
            let compute = self.devices[t.j].train_samples(&self.workload, extra_samples)
                * cont
                * self.injector.slowdown(round, t.j);
            rescued += t.assigned;
            observed.push((t.j, extra_samples as f64, compute));
            user_totals[t.j] += transfer.elapsed_s + compute;
            track.observe(
                t.j,
                t.avail + transfer.elapsed_s + compute,
                transfer.elapsed_s,
            );
        }
        rescued
    }

    /// Robust aggregation overlay: when a (non-quiet) adversary is
    /// attached, the server scores every primary-phase delivery with the
    /// configured aggregator over low-dimensional proxy updates. The
    /// timing path has no parameter vectors, so deliveries are synthesized
    /// as a shared per-round direction plus per-user jitter — both from
    /// the plan's scoped draw streams — and the plan's attack transform is
    /// applied on top for compromised users. Nothing here touches the main
    /// RNG or round timing, and the whole block is skipped (zero events,
    /// zero draws) without an adversary, preserving trace byte-identity.
    pub(crate) fn robust_overlay(&self, round: usize, entries: &[(usize, Phase1)]) -> usize {
        let n = self.devices.len();
        let Some(plan) = &self.adversary else {
            return 0;
        };
        if plan.is_quiet() {
            return 0;
        }
        // `(user, shards delivered)` for phase-1 deliveries.
        let deliverers: Vec<(usize, usize)> = entries
            .iter()
            .filter_map(|(j, e)| match e {
                Phase1::Survivor { shards, .. } => Some((*j, *shards)),
                Phase1::Cut { done, .. } if *done > 0 => Some((*j, *done)),
                Phase1::Departed { done, .. } if *done > 0 => Some((*j, *done)),
                _ => None,
            })
            .collect();
        if deliverers.is_empty() {
            return 0;
        }
        let zeros = vec![0.0f32; PROXY_DIM];
        // Channels below `2 * n` are reserved for the plan's own attack
        // noise; proxy synthesis starts past them.
        let mut dir = plan.draw_stream(round, 2 * n);
        let direction: Vec<f32> = (0..PROXY_DIM)
            .map(|_| (dir.next_u01() * 2.0 - 1.0) as f32)
            .collect();
        let updates: Vec<(Vec<f32>, usize)> = deliverers
            .iter()
            .map(|&(j, shards)| {
                let mut jitter = plan.draw_stream(round, 2 * n + 1 + j);
                let mut u: Vec<f32> = direction
                    .iter()
                    .map(|&d| d + 0.1 * (jitter.next_u01() * 2.0 - 1.0) as f32)
                    .collect();
                plan.apply(round, j, &zeros, &mut u);
                (u, shards)
            })
            .collect();
        let agg = self.aggregator.build();
        let outcome = agg.aggregate(&updates);
        for &idx in &outcome.rejected {
            let user = deliverers[idx].0;
            let score = outcome.scores[idx];
            self.probe.emit(|| Event::UpdateRejected {
                round,
                user,
                aggregator: agg.name().to_string(),
                score,
            });
        }
        let rejected_updates = outcome.rejected.len();
        let mean_score = outcome.mean_score();
        self.probe.emit(|| Event::RobustAggregate {
            round,
            aggregator: agg.name().to_string(),
            n_updates: updates.len(),
            rejected: rejected_updates,
            mean_score,
        });
        rejected_updates
    }

    /// Close the round: degradation + round-end telemetry, advance the
    /// global round counter, fold `observed` into the online profilers,
    /// and produce the round's [`RoundOutcome`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn close_round(
        &mut self,
        round: usize,
        scheduled: usize,
        tally: &RoundTally,
        track: &StragglerTrack,
        rescued: usize,
        admitted: usize,
        admit_done: usize,
        rejected_updates: usize,
        observed: Vec<(usize, f64, f64)>,
    ) -> RoundOutcome {
        debug_assert!(admit_done <= admitted, "admission credit exceeds grant");
        let completed = tally.completed;
        let lost = tally.pool_total() - rescued;
        // Admitted work joins the denominator as well as the numerator, so
        // mid-round joiners can never push coverage above 1. With no churn
        // (`admitted == 0`) this is exactly the legacy formula.
        let coverage = if scheduled == 0 {
            1.0
        } else {
            (completed + rescued + admit_done) as f64 / (scheduled + admitted) as f64
        };
        if completed < scheduled {
            self.probe.emit(|| Event::RoundDegraded {
                round,
                scheduled,
                completed,
                rescued,
                lost,
                coverage,
            });
        }
        self.probe.emit(|| Event::RoundEnd {
            round,
            makespan_s: track.worst,
            straggler: track.straggler,
        });
        self.rounds_done += 1;
        for (j, samples, seconds) in observed {
            self.profilers[j].observe(samples, seconds);
        }
        RoundOutcome {
            round,
            scheduled,
            completed,
            rescued,
            lost_shards: lost,
            admitted,
            admit_done,
            carried: admitted - admit_done,
            coverage,
            makespan_s: track.worst,
            failed_users: tally.failed_users,
            timed_out: tally.timed_out,
            rejected_updates,
        }
    }

    /// Between-round rescheduling: re-plan the *next* round from the
    /// online profiles fitted this round. Returns whether `current` was
    /// replaced — the event path rebuilds its active set when it was.
    pub(crate) fn maybe_reschedule(&mut self, current: &mut Schedule, orig_total: usize) -> bool {
        let n = self.devices.len();
        if let Some(rs) = &self.rescheduler {
            if self.rounds_done.is_multiple_of(rs.every) && orig_total > 0 {
                let comm_est = self.link.round_seconds(self.model_bytes);
                let profiles: Vec<LinearProfile> = (0..n)
                    .map(|j| {
                        if self.known_gone[j]
                            || (self.profilers[j].observations() == 0 && !self.has_prior)
                        {
                            LinearProfile::new(PENALTY_FIXED_S, PENALTY_PER_SAMPLE_S)
                        } else {
                            self.profilers[j].profile()
                        }
                    })
                    .collect();
                let costs = CostMatrix::from_profiles(
                    &profiles,
                    orig_total,
                    current.shard_size,
                    &vec![comm_est; n],
                );
                if let Ok(next) = rs.scheduler.schedule_traced(&costs, &self.probe) {
                    *current = next;
                    return true;
                }
            }
        }
        false
    }

    /// Bandit selection for the coming round: pick the cohort from devices
    /// not known gone, snapshot their SoC, emit `bandit_select`, and
    /// re-split the full shard load among the picked devices. Returns
    /// whether `current` was replaced — the event path rebuilds its active
    /// set when it was. A no-op without a policy attached, with nothing
    /// scheduled, or with every device known gone.
    pub(crate) fn selection_begin(&mut self, current: &mut Schedule, orig_total: usize) -> bool {
        let n = self.devices.len();
        let round = self.rounds_done;
        let Some(sel) = &mut self.selection else {
            return false;
        };
        if orig_total == 0 {
            return false;
        }
        let eligible: Vec<bool> = self.known_gone.iter().map(|&g| !g).collect();
        let avail = eligible.iter().filter(|&&e| e).count();
        if avail == 0 {
            return false;
        }
        let k = sel.config.k.min(avail);
        let mut stream = selection_stream(sel.seed, round as u64);
        let selected = sel.policy.select(&eligible, k, &mut stream);
        debug_assert!(!selected.is_empty(), "k >= 1 with an eligible device");
        for &j in &selected {
            sel.soc_at_select[j] = self.devices[j].battery_soc();
        }
        sel.last_selected = selected.clone();
        let policy_name = sel.policy.name();
        self.probe.emit(|| Event::BanditSelect {
            round,
            policy: policy_name.to_string(),
            k,
            selected: selected.clone(),
        });
        // Re-split the full load among the picked devices. Before any
        // profiler evidence exists the split is a plain equal division
        // (index-order remainder); afterwards the inner Fed-LBAP plans
        // over observed profiles, with unpicked/gone devices priced out
        // by the penalty profile and picked-but-unobserved devices given
        // the observed mean ("neutral") profile so exploration targets
        // are not starved before their first pull.
        let observed_profiles: Vec<LinearProfile> = selected
            .iter()
            .filter(|&&j| self.profilers[j].observations() > 0 || self.has_prior)
            .map(|&j| self.profilers[j].profile())
            .collect();
        if observed_profiles.is_empty() {
            let mut shards = vec![0usize; n];
            let base = orig_total / selected.len();
            let rem = orig_total % selected.len();
            for (i, &j) in selected.iter().enumerate() {
                shards[j] = base + usize::from(i < rem);
            }
            *current = Schedule::new(shards, current.shard_size);
            return true;
        }
        let m = observed_profiles.len() as f64;
        let neutral = LinearProfile::new(
            observed_profiles.iter().map(|p| p.fixed).sum::<f64>() / m,
            observed_profiles.iter().map(|p| p.per_sample).sum::<f64>() / m,
        );
        let comm_est = self.link.round_seconds(self.model_bytes);
        let profiles: Vec<LinearProfile> = (0..n)
            .map(|j| {
                if !selected.contains(&j) || self.known_gone[j] {
                    LinearProfile::new(PENALTY_FIXED_S, PENALTY_PER_SAMPLE_S)
                } else if self.profilers[j].observations() == 0 && !self.has_prior {
                    neutral.clone()
                } else {
                    self.profilers[j].profile()
                }
            })
            .collect();
        let costs = CostMatrix::from_profiles(
            &profiles,
            orig_total,
            current.shard_size,
            &vec![comm_est; n],
        );
        if let Ok(next) = FedLbap.schedule_traced(&costs, &self.probe) {
            *current = next;
            return true;
        }
        false
    }

    /// Credit this round's picked arms: observed throughput (samples per
    /// second over everything the server received from the device this
    /// round) discounted by the battery drawn since selection; picked
    /// devices that delivered nothing earn `0.0`. Emits one
    /// `bandit_reward` event per picked arm, in device-index order.
    pub(crate) fn selection_settle(&mut self, round: usize, observed: &[(usize, f64, f64)]) {
        let Some(sel) = &mut self.selection else {
            return;
        };
        if sel.last_selected.is_empty() {
            return;
        }
        let selected = std::mem::take(&mut sel.last_selected);
        for &j in &selected {
            let (mut samples, mut seconds) = (0.0f64, 0.0f64);
            for &(dev, s, t) in observed {
                if dev == j {
                    samples += s;
                    seconds += t;
                }
            }
            let soc_drop = (sel.soc_at_select[j] - self.devices[j].battery_soc()).max(0.0);
            let reward = if samples > 0.0 && seconds > 0.0 {
                (samples / seconds) / (1.0 + soc_drop)
            } else {
                0.0
            };
            sel.policy.update(j, reward);
            let mean = sel.policy.mean(j);
            let pulls = sel.policy.pulls(j) as usize;
            self.probe.emit(|| Event::BanditReward {
                round,
                user: j,
                reward,
                mean,
                pulls,
            });
        }
    }

    /// Whether a selection policy is attached (the event path clones the
    /// observation list for reward settlement only when one is).
    pub(crate) fn selection_active(&self) -> bool {
        self.selection.is_some()
    }

    /// Round index the next per-round primitive call will use.
    pub(crate) fn current_round(&self) -> usize {
        self.rounds_done
    }

    /// Whether mid-round straggler rescue is enabled.
    pub(crate) fn rescue_enabled(&self) -> bool {
        self.rescue
    }

    /// Clone of the attached probe — the event path emits round framing
    /// (`round_start`) itself before delegating to the shared primitives.
    pub(crate) fn probe_handle(&self) -> Probe {
        self.probe.clone()
    }

    /// Flip the server's "gone for good" flag for a device. The event path
    /// sets it on a process departure (the rescheduler then starves the
    /// device exactly like a legacy `DeviceFate::Departed`) and clears it
    /// when the device re-arrives under a non-`Reject` admission policy.
    pub(crate) fn set_known_gone(&mut self, j: usize, gone: bool) {
        self.known_gone[j] = gone;
    }

    /// Mid-round admission: hand `shards` orphaned shards to an arrived
    /// `joiner`, starting at `start` (its arrival clamped by failure
    /// detection — [`clock::admission_start`]). The joiner pays a model
    /// transfer plus the assigned compute on the real device model, on
    /// fault channel `3n + 1 + joiner` (disjoint from phase-1 `0..n` and
    /// rescue `n..2n`). Honors the rescue SoC floor.
    ///
    /// Returns `None` when the joiner is ineligible (below the SoC floor:
    /// nothing is granted, nothing emitted), otherwise `Some(done)` — the
    /// shards actually completed (`0` when the transfer failed; the grant
    /// itself is then *carried*, not lost twice).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn admission_phase(
        &mut self,
        round: usize,
        lossy: &LossyLink,
        shard_size: f64,
        joiner: usize,
        start: f64,
        shards: usize,
        track: &mut StragglerTrack,
        user_totals: &mut [f64],
        observed: &mut Vec<(usize, f64, f64)>,
    ) -> Option<usize> {
        if self.devices[joiner].battery_soc() < self.rescue_soc_floor {
            return None;
        }
        self.probe.emit(|| Event::MidRoundAdmit {
            round,
            t_s: start,
            user: joiner,
            shards,
        });
        let n = self.devices.len();
        let mut ds = self.injector.draw_stream(round, 3 * n + 1 + joiner);
        let transfer = lossy.transfer(
            self.model_bytes,
            start,
            &self.retry,
            &mut self.rng,
            &mut || ds.next_u01(),
        );
        for (i, &(el, cause)) in transfer.failures.iter().enumerate() {
            self.probe.emit(|| Event::TransferRetry {
                round,
                user: joiner,
                attempt: i + 1,
                cause: cause.as_str().to_string(),
                elapsed_s: el,
            });
        }
        if !transfer.delivered {
            self.probe.emit(|| Event::UserTimeout {
                round,
                user: joiner,
                cause: "comm".to_string(),
                shards_at_risk: shards,
            });
            user_totals[joiner] += transfer.elapsed_s;
            track.observe(joiner, start + transfer.elapsed_s, transfer.elapsed_s);
            return Some(0);
        }
        let samples = (shards as f64 * shard_size) as usize;
        let cont = self.injector.contention(round, joiner);
        let compute = self.devices[joiner].train_samples(&self.workload, samples)
            * cont
            * self.injector.slowdown(round, joiner);
        observed.push((joiner, samples as f64, compute));
        user_totals[joiner] += transfer.elapsed_s + compute;
        track.observe(
            joiner,
            start + transfer.elapsed_s + compute,
            transfer.elapsed_s,
        );
        Some(shards)
    }
}

/// Fold run-level accumulators into the final [`ChaosReport`]. Shared by
/// the lockstep and event-driven paths so the report arithmetic lives in
/// exactly one place.
pub(crate) fn assemble_report(
    per_round: Vec<f64>,
    outcomes: Vec<RoundOutcome>,
    user_totals: &[f64],
    straggler_comm: f64,
    rounds: usize,
) -> ChaosReport {
    ChaosReport {
        timing: TimingReport {
            per_round_makespan: per_round,
            per_user_mean: user_totals.iter().map(|t| t / rounds as f64).collect(),
            comm_fraction: if rounds == 0 {
                0.0
            } else {
                straggler_comm / rounds as f64
            },
        },
        rounds: outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roundsim::RoundSim;
    use fedsched_device::Testbed;
    use fedsched_faults::FaultConfig;

    fn devices(seed: u64) -> Vec<Device> {
        Testbed::testbed_1(seed).devices().to_vec()
    }

    fn link() -> Link {
        Link::new(100.0, 100.0, 0.0, 0.05)
    }

    fn schedule() -> Schedule {
        Schedule::new(vec![10, 10, 10], 100.0)
    }

    #[test]
    fn quiet_run_is_bit_identical_to_roundsim() {
        let mut plain =
            RoundSim::from_parts(devices(11), TrainingWorkload::lenet(), link(), 2.5e6, 11);
        let mut resilient = ResilientRoundSim::from_parts(
            devices(11),
            TrainingWorkload::lenet(),
            link(),
            2.5e6,
            11,
            FaultInjector::quiet(3),
        );
        let a = plain.run(&schedule(), 4);
        let b = resilient.run(&schedule(), 4);
        assert_eq!(a, b.timing, "quiet chaos must not perturb the simulation");
        for r in &b.rounds {
            assert_eq!(r.completed, 30);
            assert_eq!(r.lost_shards, 0);
            assert_eq!(r.coverage, 1.0);
        }
    }

    #[test]
    fn same_seed_replays_identically() {
        let config = FaultConfig::none()
            .with_crash_prob(0.3)
            .with_loss_prob(0.1)
            .with_contention(0.2, 1.5);
        let run = || {
            let inj = FaultInjector::from_config(config.clone(), 3, 10, 77);
            let mut sim = ResilientRoundSim::from_parts(
                devices(7),
                TrainingWorkload::lenet(),
                link(),
                2.5e6,
                7,
                inj,
            )
            .with_retry(RetryPolicy::default_chaos())
            .with_deadline_policy(DeadlinePolicy::Fixed(60.0));
            sim.run(&schedule(), 10)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn shard_accounting_is_conserved_every_round() {
        let config = FaultConfig::none()
            .with_crash_prob(0.4)
            .with_churn_prob(0.05)
            .with_loss_prob(0.2)
            .with_outages(0.3, 40.0, 10.0);
        let inj = FaultInjector::from_config(config, 3, 12, 5);
        let mut sim = ResilientRoundSim::from_parts(
            devices(5),
            TrainingWorkload::lenet(),
            link(),
            2.5e6,
            5,
            inj,
        )
        .with_retry(RetryPolicy::default_chaos())
        .with_deadline_policy(DeadlinePolicy::Fixed(45.0));
        let report = sim.run(&schedule(), 12);
        for r in &report.rounds {
            assert_eq!(
                r.completed + r.rescued + r.lost_shards,
                r.scheduled,
                "round {}: {} + {} + {} != {}",
                r.round,
                r.completed,
                r.rescued,
                r.lost_shards,
                r.scheduled
            );
            assert!((0.0..=1.0).contains(&r.coverage));
        }
    }

    #[test]
    fn rescue_recovers_shards_lost_without_it() {
        let config = FaultConfig::none().with_crash_prob(0.35);
        let run = |rescue: bool| {
            let inj = FaultInjector::from_config(config.clone(), 3, 15, 21);
            let mut sim = ResilientRoundSim::from_parts(
                devices(21),
                TrainingWorkload::lenet(),
                link(),
                2.5e6,
                21,
                inj,
            )
            .with_deadline_policy(DeadlinePolicy::Fixed(60.0));
            if !rescue {
                sim = sim.without_rescue();
            }
            sim.run(&schedule(), 15)
        };
        let with = run(true);
        let without = run(false);
        assert!(without.total_lost() > 0, "chaos config should cause losses");
        assert!(
            with.total_lost() < without.total_lost(),
            "rescue {} !< no-rescue {}",
            with.total_lost(),
            without.total_lost()
        );
        assert_eq!(
            with.total_rescued() + with.total_lost(),
            without.total_lost()
        );
    }

    #[test]
    fn deadline_caps_phase_one_makespan() {
        let mut sim = ResilientRoundSim::from_parts(
            devices(9),
            TrainingWorkload::lenet(),
            link(),
            2.5e6,
            9,
            FaultInjector::quiet(3),
        )
        .with_deadline_policy(DeadlinePolicy::Fixed(5.0))
        .without_rescue();
        let report = sim.run(&schedule(), 3);
        for r in &report.rounds {
            assert!(r.makespan_s <= 5.0 + 1e-9, "makespan {}", r.makespan_s);
            assert!(r.timed_out > 0);
            assert!(r.lost_shards > 0);
        }
    }

    #[test]
    fn rescheduler_starves_departed_devices() {
        use fedsched_core::lbap::FedLbap;
        // Device 0 churns out in round 0 with certainty.
        let config = FaultConfig::none().with_churn_prob(1.0);
        let inj = FaultInjector::from_config(config, 3, 1, 2);
        let mut sim = ResilientRoundSim::from_parts(
            devices(13),
            TrainingWorkload::lenet(),
            link(),
            2.5e6,
            13,
            inj,
        )
        .with_rescheduler(Box::new(FedLbap), 1);
        let report = sim.run(&schedule(), 4);
        // After round 0 every device is known gone... all three churn in
        // round 0, so later rounds keep the old schedule only if the
        // scheduler fails; coverage must collapse to zero from round 1 on
        // (everyone is Departed).
        assert!(report.rounds[1..].iter().all(|r| r.completed == 0));
    }

    #[test]
    fn rescue_respects_battery_soc_floor() {
        // Find a seed whose plan crashes device 1 in round 0 and leaves
        // device 0 healthy, so device 0 is the round's only rescue target.
        let config = FaultConfig::none().with_crash_prob(0.5);
        let seed = (0..200u64)
            .find(|&s| {
                let inj = FaultInjector::from_config(config.clone(), 2, 1, s);
                matches!(inj.fate(0, 0), DeviceFate::Healthy)
                    && matches!(inj.fate(0, 1), DeviceFate::Crash { .. })
            })
            .expect("some seed crashes exactly device 1");
        let run = |floor: Option<f64>| {
            let mut devs = devices(31);
            devs.truncate(2);
            // The only survivor enters the round nearly empty.
            devs[0].set_battery_soc(0.05);
            let inj = FaultInjector::from_config(config.clone(), 2, 1, seed);
            let mut sim = ResilientRoundSim::from_parts(
                devs,
                TrainingWorkload::lenet(),
                link(),
                2.5e6,
                31,
                inj,
            );
            if let Some(f) = floor {
                sim = sim.with_rescue_soc_floor(f);
            }
            sim.run(&Schedule::new(vec![5, 5], 100.0), 1)
        };

        // Without a floor the critical device absorbs the orphaned shards.
        let greedy = run(None);
        assert_eq!(greedy.total_rescued(), 5);
        assert_eq!(greedy.total_lost(), 0);

        // With the floor it is protected: the shards are lost instead.
        let guarded = run(Some(0.3));
        assert_eq!(guarded.total_rescued(), 0);
        assert_eq!(guarded.total_lost(), 5);
        assert_eq!(guarded.rounds[0].completed, 5);

        // A floor below the survivor's SoC changes nothing.
        let permissive = run(Some(0.01));
        assert_eq!(permissive.total_rescued(), 5);
    }

    #[test]
    fn zero_soc_floor_is_bit_identical_to_default() {
        let config = FaultConfig::none().with_crash_prob(0.3).with_loss_prob(0.1);
        let run = |explicit_floor: bool| {
            let inj = FaultInjector::from_config(config.clone(), 3, 8, 17);
            let mut sim = ResilientRoundSim::from_parts(
                devices(17),
                TrainingWorkload::lenet(),
                link(),
                2.5e6,
                17,
                inj,
            )
            .with_retry(RetryPolicy::default_chaos());
            if explicit_floor {
                sim = sim.with_rescue_soc_floor(0.0);
            }
            sim.run(&schedule(), 8)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "rescue SoC floor must be in [0, 1]")]
    fn out_of_range_soc_floor_panics() {
        let _ = ResilientRoundSim::from_parts(
            devices(1),
            TrainingWorkload::lenet(),
            link(),
            2.5e6,
            1,
            FaultInjector::quiet(3),
        )
        .with_rescue_soc_floor(1.5);
    }

    #[test]
    fn probed_and_unprobed_chaos_runs_agree() {
        use fedsched_telemetry::EventLog;
        use std::sync::Arc;
        let config = FaultConfig::none()
            .with_crash_prob(0.3)
            .with_loss_prob(0.15);
        let run = |probe: Option<Probe>| {
            let inj = FaultInjector::from_config(config.clone(), 3, 8, 3);
            let mut sim = ResilientRoundSim::from_parts(
                devices(3),
                TrainingWorkload::lenet(),
                link(),
                2.5e6,
                3,
                inj,
            )
            .with_retry(RetryPolicy::default_chaos())
            .with_deadline_policy(DeadlinePolicy::Fixed(50.0));
            if let Some(p) = probe {
                sim = sim.with_probe(p);
            }
            sim.run(&schedule(), 8)
        };
        let log = Arc::new(EventLog::new());
        let plain = run(None);
        let probed = run(Some(Probe::attached(log.clone())));
        assert_eq!(plain, probed, "observation must not perturb the run");
        assert!(!log.is_empty());
    }

    #[test]
    fn quiet_adversary_is_bit_identical_to_no_adversary() {
        use fedsched_faults::{AdversaryConfig, AdversaryPlan};
        use fedsched_telemetry::EventLog;
        use std::sync::Arc;
        let config = FaultConfig::none().with_crash_prob(0.2).with_loss_prob(0.1);
        let run = |adversary: Option<AdversaryPlan>, kind: AggregatorKind| {
            let log = Arc::new(EventLog::new());
            let inj = FaultInjector::from_config(config.clone(), 3, 6, 41);
            let mut sim = ResilientRoundSim::from_parts(
                devices(41),
                TrainingWorkload::lenet(),
                link(),
                2.5e6,
                41,
                inj,
            )
            .with_probe(Probe::attached(log.clone()))
            .with_aggregator(kind);
            if let Some(plan) = adversary {
                sim = sim.with_adversary(plan);
            }
            let report = sim.run(&schedule(), 6);
            (report, log.to_jsonl())
        };
        let baseline = run(None, AggregatorKind::FedAvg);
        for kind in [
            AggregatorKind::FedAvg,
            AggregatorKind::TrimmedMean { trim: 1 },
            AggregatorKind::Median,
            AggregatorKind::Krum { f: 1 },
        ] {
            let quiet = AdversaryPlan::generate(AdversaryConfig::none(), 3, 6, 41);
            let got = run(Some(quiet), kind);
            assert_eq!(
                baseline,
                got,
                "{}: quiet adversary must be invisible",
                kind.name()
            );
        }
    }

    #[test]
    fn attacked_round_scores_and_rejects_updates() {
        use fedsched_faults::{AdversaryConfig, AdversaryPlan, AttackKind};
        use fedsched_telemetry::EventLog;
        use std::sync::Arc;
        let adv = AdversaryConfig::none().with_attackers(0.34, AttackKind::Boost { factor: 50.0 });
        // Find a seed whose plan compromises exactly one of the 3 devices,
        // so honest updates outnumber attacked ones and Krum can isolate it.
        let seed = (0..200u64)
            .find(|&s| {
                let p = AdversaryPlan::generate(adv, 3, 6, s);
                (0..3).filter(|&j| p.is_compromised(j)).count() == 1
            })
            .expect("some seed compromises exactly one device");
        let plan = AdversaryPlan::generate(adv, 3, 6, seed);
        let log = Arc::new(EventLog::new());
        let mut sim = ResilientRoundSim::from_parts(
            devices(9),
            TrainingWorkload::lenet(),
            link(),
            2.5e6,
            9,
            FaultInjector::quiet(3),
        )
        .with_probe(Probe::attached(log.clone()))
        .with_aggregator(AggregatorKind::MultiKrum { f: 1, k: 2 })
        .with_adversary(plan);
        let report = sim.run(&schedule(), 6);
        let total_rejected: usize = report.rounds.iter().map(|r| r.rejected_updates).sum();
        assert!(
            total_rejected > 0,
            "multi-krum must exclude boosted updates"
        );
        let events = log.events();
        assert!(events.iter().any(|e| e.kind() == "update_rejected"));
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind() == "robust_aggregate")
                .count(),
            6,
            "one robust_aggregate per round"
        );
    }

    #[test]
    fn group_outage_downs_the_domain_and_emits_events() {
        use fedsched_telemetry::EventLog;
        use std::sync::Arc;
        let config = FaultConfig::none().with_group_outages(1.0, 3, 1);
        let inj = FaultInjector::from_config(config, 6, 2, 23);
        let log = Arc::new(EventLog::new());
        let mut devs = devices(23);
        devs.extend(devices(24));
        devs.truncate(6);
        let mut sim =
            ResilientRoundSim::from_parts(devs, TrainingWorkload::lenet(), link(), 2.5e6, 23, inj)
                .with_probe(Probe::attached(log.clone()));
        let report = sim.run(&Schedule::new(vec![5; 6], 100.0), 2);
        // Probability 1 downs every domain every round: nothing completes.
        assert!(report.rounds.iter().all(|r| r.completed == 0));
        let outages: Vec<_> = log
            .events()
            .into_iter()
            .filter(|e| e.kind() == "group_outage")
            .collect();
        assert_eq!(outages.len(), 6, "3 groups x 2 rounds");
    }

    #[test]
    #[should_panic(expected = "adversary plan/cohort size mismatch")]
    fn wrong_adversary_arity_panics() {
        use fedsched_faults::{AdversaryConfig, AdversaryPlan};
        let plan = AdversaryPlan::generate(AdversaryConfig::none(), 5, 2, 1);
        let _ = ResilientRoundSim::from_parts(
            devices(1),
            TrainingWorkload::lenet(),
            link(),
            2.5e6,
            1,
            FaultInjector::quiet(3),
        )
        .with_adversary(plan);
    }

    #[test]
    #[should_panic(expected = "multi_krum needs k >= 1")]
    fn invalid_aggregator_kind_panics() {
        let _ = ResilientRoundSim::from_parts(
            devices(1),
            TrainingWorkload::lenet(),
            link(),
            2.5e6,
            1,
            FaultInjector::quiet(3),
        )
        .with_aggregator(AggregatorKind::MultiKrum { f: 1, k: 0 });
    }

    #[test]
    #[should_panic(expected = "fault plan/cohort size mismatch")]
    fn wrong_injector_arity_panics() {
        let _ = ResilientRoundSim::from_parts(
            devices(1),
            TrainingWorkload::lenet(),
            link(),
            2.5e6,
            1,
            FaultInjector::quiet(2),
        );
    }
}
