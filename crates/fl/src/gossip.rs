//! Decentralized (gossip) federated learning — the server-free topology the
//! paper says its framework "is amenable to" (Section IV-A, citing Lian et
//! al.'s decentralized parallel SGD).
//!
//! Instead of a parameter server, each user keeps its own model replica and,
//! after every local epoch, averages it with its neighbours' replicas under
//! a doubly-stochastic mixing matrix. With a connected topology, replicas
//! contract toward consensus while SGD drives the consensus toward a
//! minimizer.

use fedsched_data::Dataset;
use fedsched_nn::ModelKind;
use fedsched_parallel::{parallel_map, recommended_threads};
use fedsched_telemetry::{Event, Probe};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Communication topology for gossip averaging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Ring: user `i` averages with `i-1` and `i+1` (Metropolis weights).
    Ring,
    /// Complete graph: uniform averaging with everyone (equals FedAvg with
    /// equal weights every round).
    Complete,
}

impl Topology {
    /// Display name used in telemetry and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Ring => "ring",
            Topology::Complete => "complete",
        }
    }

    /// Row `i` of the mixing matrix for `n` users.
    fn weights(&self, i: usize, n: usize) -> Vec<f64> {
        let mut w = vec![0.0; n];
        match self {
            Topology::Complete => {
                for v in w.iter_mut() {
                    *v = 1.0 / n as f64;
                }
            }
            Topology::Ring => {
                if n == 1 {
                    w[0] = 1.0;
                } else if n == 2 {
                    w = vec![0.5, 0.5];
                } else {
                    // Metropolis: 1/3 to each ring neighbour, rest to self.
                    w[i] = 1.0 / 3.0;
                    w[(i + 1) % n] = 1.0 / 3.0;
                    w[(i + n - 1) % n] = 1.0 / 3.0;
                }
            }
        }
        w
    }
}

/// Configuration for a decentralized run.
#[derive(Debug, Clone)]
pub struct GossipSetup<'a> {
    /// Training pool.
    pub train: &'a Dataset,
    /// Held-out evaluation data.
    pub test: &'a Dataset,
    /// Per-user training indices.
    pub assignment: Vec<Vec<usize>>,
    /// Model to train.
    pub model: ModelKind,
    /// Gossip topology.
    pub topology: Topology,
    /// Rounds (local epoch + one gossip exchange each).
    pub rounds: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed.
    pub seed: u64,
}

/// Outcome of a gossip run.
#[derive(Debug, Clone, Serialize)]
pub struct GossipOutcome {
    /// Test accuracy of the *consensus* (average of replicas).
    pub consensus_accuracy: f64,
    /// Test accuracy of each user's own replica.
    pub replica_accuracies: Vec<f64>,
    /// Mean L2 distance of replicas from the consensus (0 = full consensus).
    pub consensus_gap: f64,
}

impl<'a> GossipSetup<'a> {
    /// Run decentralized training.
    ///
    /// # Panics
    /// Panics if no user has data.
    pub fn run(&self) -> GossipOutcome {
        self.run_traced(&Probe::disabled())
    }

    /// [`GossipSetup::run`], emitting one `gossip_mix` event per mixing
    /// round (with the post-mix consensus gap) through `probe`. The gap is
    /// computed lazily inside the emission closure, so a disabled probe
    /// pays nothing.
    ///
    /// # Panics
    /// Panics if no user has data.
    pub fn run_traced(&self, probe: &Probe) -> GossipOutcome {
        assert!(
            self.assignment.iter().any(|a| !a.is_empty()),
            "gossip run needs at least one user with data"
        );
        let dims = self.train.kind().dims();
        let n = self.assignment.len();
        let init = self
            .model
            .build_with_threads(dims, self.seed, 1)
            .flat_params();
        let mut replicas: Vec<Vec<f32>> = vec![init; n];
        let threads = recommended_threads();

        for round in 0..self.rounds {
            // Local epoch on every replica (parallel, deterministic).
            let trained: Vec<Vec<f32>> = parallel_map(n, threads, |user| {
                let indices = &self.assignment[user];
                if indices.is_empty() {
                    return replicas[user].clone();
                }
                let mut net = self.model.build_with_threads(dims, self.seed, 1);
                net.set_flat_params(&replicas[user]);
                let mut rng = StdRng::seed_from_u64(self.seed ^ (round as u64) << 24 ^ user as u64);
                let mut order = indices.clone();
                for i in (1..order.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    order.swap(i, j);
                }
                for chunk in order.chunks(self.batch_size) {
                    let (x, y) = self.train.batch(chunk);
                    net.train_batch(&x, &y);
                }
                net.flat_params()
            });

            // Gossip mixing.
            let dim = trained[0].len();
            replicas = (0..n)
                .map(|i| {
                    let w = self.topology.weights(i, n);
                    let mut out = vec![0.0f64; dim];
                    for (j, replica) in trained.iter().enumerate() {
                        if w[j] == 0.0 {
                            continue;
                        }
                        for (o, &v) in out.iter_mut().zip(replica) {
                            *o += w[j] * f64::from(v);
                        }
                    }
                    out.into_iter().map(|v| v as f32).collect()
                })
                .collect();

            probe.emit(|| Event::GossipMix {
                round,
                topology: self.topology.name().to_string(),
                consensus_gap: consensus_gap_of(&replicas),
            });
        }

        // Consensus statistics.
        let consensus = consensus_mean(&replicas);
        let consensus_f32: Vec<f32> = consensus.iter().map(|&v| v as f32).collect();
        let consensus_gap = consensus_gap_of(&replicas);

        let evaluate = |params: &[f32]| -> f64 {
            let mut net = self.model.build_with_threads(dims, self.seed, 1);
            net.set_flat_params(params);
            let idx: Vec<usize> = (0..self.test.len()).collect();
            let mut correct = 0usize;
            for chunk in idx.chunks(256) {
                let (x, y) = self.test.batch(chunk);
                let preds = net.predict(&x, y.len());
                correct += preds.iter().zip(&y).filter(|(p, l)| p == l).count();
            }
            correct as f64 / self.test.len().max(1) as f64
        };

        GossipOutcome {
            consensus_accuracy: evaluate(&consensus_f32),
            replica_accuracies: replicas.iter().map(|r| evaluate(r)).collect(),
            consensus_gap,
        }
    }
}

/// Element-wise mean of all replicas (the consensus model), in f64.
fn consensus_mean(replicas: &[Vec<f32>]) -> Vec<f64> {
    let n = replicas.len();
    let mut consensus = vec![0.0f64; replicas[0].len()];
    for r in replicas {
        for (c, &v) in consensus.iter_mut().zip(r) {
            *c += f64::from(v) / n as f64;
        }
    }
    consensus
}

/// Mean L2 distance of replicas from their consensus (0 = full consensus).
fn consensus_gap_of(replicas: &[Vec<f32>]) -> f64 {
    let consensus = consensus_mean(replicas);
    replicas
        .iter()
        .map(|r| {
            r.iter()
                .zip(&consensus)
                .map(|(&a, &c)| (f64::from(a) - c).powi(2))
                .sum::<f64>()
                .sqrt()
        })
        .sum::<f64>()
        / replicas.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_data::{iid_equal, DatasetKind};

    fn datasets() -> (Dataset, Dataset) {
        Dataset::generate_split(DatasetKind::MnistLike, 500, 250, 3)
    }

    fn setup<'a>(train: &'a Dataset, test: &'a Dataset, topology: Topology) -> GossipSetup<'a> {
        let p = iid_equal(train, 4, 5);
        GossipSetup {
            train,
            test,
            assignment: p.users,
            model: ModelKind::Mlp,
            topology,
            rounds: 6,
            batch_size: 20,
            seed: 11,
        }
    }

    #[test]
    fn ring_gossip_learns_and_approaches_consensus() {
        let (train, test) = datasets();
        let out = setup(&train, &test, Topology::Ring).run();
        assert!(
            out.consensus_accuracy > 0.8,
            "accuracy {}",
            out.consensus_accuracy
        );
        for (i, acc) in out.replica_accuracies.iter().enumerate() {
            assert!(*acc > 0.6, "replica {i} accuracy {acc}");
        }
    }

    #[test]
    fn complete_graph_reaches_exact_consensus_each_round() {
        let (train, test) = datasets();
        let out = setup(&train, &test, Topology::Complete).run();
        assert!(out.consensus_gap < 1e-4, "gap {}", out.consensus_gap);
        assert!(out.consensus_accuracy > 0.8);
    }

    #[test]
    fn ring_has_larger_consensus_gap_than_complete() {
        let (train, test) = datasets();
        let ring = setup(&train, &test, Topology::Ring).run();
        let complete = setup(&train, &test, Topology::Complete).run();
        assert!(ring.consensus_gap >= complete.consensus_gap);
    }

    #[test]
    fn mixing_weights_are_stochastic() {
        for topo in [Topology::Ring, Topology::Complete] {
            for n in [1usize, 2, 3, 7] {
                for i in 0..n {
                    let w = topo.weights(i, n);
                    let sum: f64 = w.iter().sum();
                    assert!((sum - 1.0).abs() < 1e-12, "{topo:?} n={n} i={i}: {w:?}");
                    assert!(w.iter().all(|&x| x >= 0.0));
                }
            }
        }
    }

    #[test]
    fn traced_run_logs_one_mix_per_round() {
        use fedsched_telemetry::{Event, EventLog, Probe};
        use std::sync::Arc;
        let (train, test) = datasets();
        let log = Arc::new(EventLog::new());
        let out = setup(&train, &test, Topology::Ring).run_traced(&Probe::attached(log.clone()));
        let gaps: Vec<(usize, f64)> = log
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::GossipMix {
                    round,
                    topology,
                    consensus_gap,
                } => {
                    assert_eq!(topology, "ring");
                    Some((*round, *consensus_gap))
                }
                _ => None,
            })
            .collect();
        assert_eq!(gaps.len(), 6);
        assert_eq!(gaps.last().unwrap().1, out.consensus_gap);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn empty_cohort_panics() {
        let (train, test) = datasets();
        let mut s = setup(&train, &test, Topology::Ring);
        s.assignment = vec![Vec::new(); 4];
        let _ = s.run();
    }
}
