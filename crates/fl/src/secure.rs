//! Secure aggregation by pairwise additive masking (Bonawitz et al.,
//! CCS'17 — the paper's reference [13]: "we can always resort to security
//! protocols to protect the intermediate gradients").
//!
//! Each ordered pair of users `(i, j)` with `i < j` derives a shared mask
//! vector from a common seed; user `i` *adds* it and user `j` *subtracts*
//! it before upload. Individual uploads are statistically masked, but the
//! masks cancel exactly in the server's sum, so FedAvg is unchanged. This
//! is the honest-but-curious, no-dropout variant (the full protocol's
//! secret-sharing recovery for dropped users is out of scope — dropped
//! users here simply abort the round before masking).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derive the shared pairwise mask for users `(i, j)`, `i < j`.
fn pair_mask(round_seed: u64, i: usize, j: usize, dim: usize) -> Vec<f32> {
    debug_assert!(i < j);
    let seed = round_seed ^ ((i as u64) << 32 | j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(seed);
    // Uniform masks in [-8, 8): large enough to hide typical deltas.
    (0..dim).map(|_| rng.gen::<f32>() * 16.0 - 8.0).collect()
}

/// Mask user `user`'s update for a cohort of `n_users` (all participating).
///
/// # Panics
/// Panics if `user >= n_users`.
pub fn mask_update(update: &[f32], user: usize, n_users: usize, round_seed: u64) -> Vec<f32> {
    assert!(user < n_users, "user index out of range");
    let mut out = update.to_vec();
    for other in 0..n_users {
        if other == user {
            continue;
        }
        let (lo, hi) = (user.min(other), user.max(other));
        let mask = pair_mask(round_seed, lo, hi, update.len());
        if user == lo {
            for (o, m) in out.iter_mut().zip(&mask) {
                *o += m;
            }
        } else {
            for (o, m) in out.iter_mut().zip(&mask) {
                *o -= m;
            }
        }
    }
    out
}

/// Sum masked updates: the pairwise masks cancel, recovering the exact sum
/// of the plaintext updates (up to float round-off).
pub fn unmask_sum(masked: &[Vec<f32>]) -> Vec<f32> {
    assert!(!masked.is_empty(), "no masked updates");
    let dim = masked[0].len();
    let mut sum = vec![0.0f64; dim];
    for m in masked {
        assert_eq!(m.len(), dim, "masked update dimension mismatch");
        for (s, &v) in sum.iter_mut().zip(m) {
            *s += f64::from(v);
        }
    }
    sum.into_iter().map(|v| v as f32).collect()
}

/// Securely aggregate a round: mask every update, sum on the "server", and
/// divide by the total weight. Returns the same result as plain weighted
/// FedAvg would — secure aggregation is transparency-checked in tests.
/// When every weight is zero the result is the zero vector, matching
/// [`crate::server::fedavg_aggregate`] (previously this divided by zero).
pub fn secure_fedavg(updates: &[(Vec<f32>, usize)], round_seed: u64) -> Vec<f32> {
    assert!(!updates.is_empty(), "secure_fedavg: no updates");
    let n = updates.len();
    let total: usize = updates.iter().map(|&(_, w)| w).sum();
    if total == 0 {
        return vec![0.0; updates[0].0.len()];
    }
    // Weight before masking (weights are public metadata in the protocol).
    let weighted: Vec<Vec<f32>> = updates
        .iter()
        .map(|&(ref u, w)| {
            let scale = w as f32 / total as f32;
            u.iter().map(|&v| v * scale).collect()
        })
        .collect();
    let masked: Vec<Vec<f32>> = weighted
        .iter()
        .enumerate()
        .map(|(i, u)| mask_update(u, i, n, round_seed))
        .collect();
    unmask_sum(&masked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::fedavg_aggregate;

    #[test]
    fn masks_cancel_exactly_in_the_sum() {
        let updates = [
            vec![1.0f32, -2.0, 3.0],
            vec![0.5, 0.5, 0.5],
            vec![-1.0, 1.0, 0.0],
        ];
        let masked: Vec<Vec<f32>> = updates
            .iter()
            .enumerate()
            .map(|(i, u)| mask_update(u, i, 3, 99))
            .collect();
        let sum = unmask_sum(&masked);
        for (k, s) in sum.iter().enumerate() {
            let plain: f32 = updates.iter().map(|u| u[k]).sum();
            assert!((s - plain).abs() < 1e-4, "component {k}: {s} vs {plain}");
        }
    }

    #[test]
    fn individual_masked_updates_hide_the_plaintext() {
        let update = vec![0.25f32; 64];
        let masked = mask_update(&update, 0, 4, 7);
        // The mask must actually perturb every component (u.a.r. masks have
        // measure-zero chance of being ~0 everywhere).
        let moved = masked
            .iter()
            .zip(&update)
            .filter(|(m, u)| (*m - *u).abs() > 0.01)
            .count();
        assert!(moved > 60, "only {moved}/64 components masked");
    }

    #[test]
    fn secure_fedavg_matches_plain_fedavg() {
        let updates = vec![
            (vec![1.0f32, 2.0, 3.0, 4.0], 10usize),
            (vec![5.0, 6.0, 7.0, 8.0], 30),
            (vec![-1.0, 0.0, 1.0, 2.0], 5),
        ];
        let plain = fedavg_aggregate(&updates);
        let secure = secure_fedavg(&updates, 1234);
        for (a, b) in plain.iter().zip(&secure) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn all_zero_weights_yield_zero_vector_not_nans() {
        // Regression: mirrors fedavg_aggregate — a fully-dropped round must
        // not divide by zero.
        let updates = vec![(vec![1.0f32, 2.0], 0usize), (vec![3.0, 4.0], 0)];
        let out = secure_fedavg(&updates, 42);
        assert_eq!(out, vec![0.0, 0.0]);
        assert_eq!(out, fedavg_aggregate(&updates));
    }

    #[test]
    fn different_rounds_use_different_masks() {
        let update = vec![0.0f32; 8];
        let a = mask_update(&update, 0, 2, 1);
        let b = mask_update(&update, 0, 2, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn single_user_is_unmasked() {
        let update = vec![1.0f32, 2.0];
        assert_eq!(mask_update(&update, 0, 1, 5), update);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_user_index_panics() {
        let _ = mask_update(&[1.0], 2, 2, 0);
    }
}
