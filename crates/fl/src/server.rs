//! The parameter server: FedAvg aggregation.

/// Weighted FedAvg: `global = sum_j (n_j / sum n) * w_j` (McMahan et al.,
/// AISTATS 2017). Updates with zero weight are ignored. When *every*
/// weight is zero (all users dropped this round) the result is the zero
/// vector — the server keeps its previous model by adding a zero delta,
/// instead of dividing by zero and poisoning the model with NaNs.
///
/// # Panics
/// Panics on an empty update set or mismatched lengths.
pub fn fedavg_aggregate(updates: &[(Vec<f32>, usize)]) -> Vec<f32> {
    assert!(!updates.is_empty(), "fedavg: no updates to aggregate");
    let dim = updates[0].0.len();
    assert!(
        updates.iter().all(|(w, _)| w.len() == dim),
        "fedavg: update dimensions differ"
    );
    let total: usize = updates.iter().map(|&(_, n)| n).sum();

    let mut out = vec![0.0f64; dim];
    if total > 0 {
        for (w, n) in updates {
            if *n == 0 {
                continue;
            }
            let scale = *n as f64 / total as f64;
            for (o, &v) in out.iter_mut().zip(w) {
                *o += scale * f64::from(v);
            }
        }
    }
    out.into_iter().map(|v| v as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_give_plain_mean() {
        let a = (vec![1.0, 2.0], 10);
        let b = (vec![3.0, 4.0], 10);
        assert_eq!(fedavg_aggregate(&[a, b]), vec![2.0, 3.0]);
    }

    #[test]
    fn weights_bias_towards_larger_cohorts() {
        let a = (vec![0.0], 1);
        let b = (vec![10.0], 9);
        let g = fedavg_aggregate(&[a, b]);
        assert!((g[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn zero_weight_updates_are_ignored() {
        let a = (vec![5.0], 4);
        let b = (vec![100.0], 0);
        assert_eq!(fedavg_aggregate(&[a, b]), vec![5.0]);
    }

    #[test]
    fn single_update_is_identity() {
        let w = vec![0.25, -1.5, 3.0];
        assert_eq!(fedavg_aggregate(&[(w.clone(), 7)]), w);
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn mismatched_dims_panic() {
        let _ = fedavg_aggregate(&[(vec![1.0], 1), (vec![1.0, 2.0], 1)]);
    }

    #[test]
    fn all_zero_weights_yield_zero_vector_not_nans() {
        // Regression: this used to divide by zero. All users dropping out
        // must leave the global model unchanged (zero delta), not NaN.
        let out = fedavg_aggregate(&[(vec![1.0, -2.0], 0), (vec![3.0, 4.0], 0)]);
        assert_eq!(out, vec![0.0, 0.0]);
        assert!(out.iter().all(|v| v.is_finite()));
    }
}
