//! The FedAvg training engine: actually learns a global model over a
//! partitioned synthetic dataset.
//!
//! Each round, every user with data (1) downloads the global parameters,
//! (2) runs one local epoch of mini-batch SGD over its assigned samples,
//! and (3) uploads the result; the server computes the sample-weighted
//! FedAvg and the next round begins. Clients execute in parallel on scoped
//! threads (one intra-model thread each, so a 10-user cohort uses ~10
//! cores); the aggregation order is fixed by user index, so results are
//! deterministic for a given seed regardless of the thread count.

use fedsched_data::{flip_labels, Dataset};
use fedsched_faults::AdversaryPlan;
use fedsched_nn::ModelKind;
use fedsched_parallel::{parallel_map, recommended_threads};
use fedsched_robust::AggregatorKind;
use fedsched_telemetry::{Event, Probe};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::builder::ConfigError;
use crate::metrics::analyze_round;
use crate::server::fedavg_aggregate;

/// Everything a federated training run needs.
#[derive(Debug, Clone)]
pub struct FlSetup<'a> {
    /// The training pool.
    pub train: &'a Dataset,
    /// Held-out evaluation data.
    pub test: &'a Dataset,
    /// Per-user training indices into `train` (empty vec = idle user).
    pub assignment: Vec<Vec<usize>>,
    /// Which model to train.
    pub model: ModelKind,
    /// Number of synchronous rounds (global epochs).
    pub rounds: usize,
    /// Local mini-batch size (the paper uses 20).
    pub batch_size: usize,
    /// Local epochs per round (`E` in FedAvg; the paper uses 1). Larger
    /// values amplify client drift under non-IID data.
    pub local_epochs: usize,
    /// Evaluate on the test set every `eval_every` rounds (0 = final only).
    pub eval_every: usize,
    /// Master seed: init, shuffling and evaluation all derive from it.
    pub seed: u64,
    /// Telemetry handle; disabled by default. When attached, the engine
    /// emits `round_start`, `round_divergence` (computed from the client
    /// updates, which costs extra work only while recording) and
    /// `round_accuracy` events.
    pub probe: Probe,
    /// Robust aggregation rule. Engaged only while `adversary` is present
    /// and non-quiet — without an adversary every kind is byte-identical to
    /// plain FedAvg, preserving the baseline experiments bit for bit.
    pub aggregator: AggregatorKind,
    /// Adversary plan: compromised users corrupt their training (label
    /// flips happen at the data level, vector attacks transform the
    /// uploaded parameters). `None` = everyone honest.
    pub adversary: Option<AdversaryPlan>,
}

impl<'a> FlSetup<'a> {
    /// A setup with the paper's defaults (batch 20, eval at the end).
    pub fn new(
        train: &'a Dataset,
        test: &'a Dataset,
        assignment: Vec<Vec<usize>>,
        model: ModelKind,
        rounds: usize,
        seed: u64,
    ) -> Self {
        FlSetup {
            train,
            test,
            assignment,
            model,
            rounds,
            batch_size: 20,
            local_epochs: 1,
            eval_every: 0,
            seed,
            probe: Probe::disabled(),
            aggregator: AggregatorKind::FedAvg,
            adversary: None,
        }
    }

    /// Run federated training.
    ///
    /// # Panics
    /// Panics if no user has any data.
    pub fn run(&self) -> FlOutcome {
        assert!(
            self.assignment.iter().any(|a| !a.is_empty()),
            "federated run needs at least one user with data"
        );
        match self.try_run() {
            Ok(out) => out,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible form of [`FlSetup::run`]: a setup where every user is idle
    /// yields [`ConfigError::EmptyAssignment`] instead of panicking.
    pub fn try_run(&self) -> Result<FlOutcome, ConfigError> {
        if !self.assignment.iter().any(|a| !a.is_empty()) {
            return Err(ConfigError::EmptyAssignment);
        }
        self.aggregator
            .validate()
            .map_err(ConfigError::InvalidAggregator)?;
        if let Some(plan) = &self.adversary {
            if plan.n_devices() != self.assignment.len() {
                return Err(ConfigError::ArityMismatch {
                    what: "adversary plan",
                    expected: self.assignment.len(),
                    got: plan.n_devices(),
                });
            }
        }
        // The robust layer engages only under a live adversary; otherwise
        // the run is byte-identical to the historical FedAvg path.
        let adversary = self.adversary.as_ref().filter(|p| !p.is_quiet());
        let n_classes = self.train.n_classes();
        let dims = self.train.kind().dims();
        let template = self.model.build_with_threads(dims, self.seed, 1);
        let mut global = template.flat_params();
        drop(template);

        let threads = recommended_threads();
        let mut round_losses = Vec::with_capacity(self.rounds);
        let mut round_accuracies = Vec::new();

        let active_users = self.assignment.iter().filter(|a| !a.is_empty()).count();
        let mut rejected_updates = 0usize;
        for round in 0..self.rounds {
            self.probe.emit(|| Event::RoundStart {
                round,
                n_users: active_users,
            });
            let global_ref = &global;
            let results = parallel_map(self.assignment.len(), threads, |user| {
                let indices = &self.assignment[user];
                if indices.is_empty() {
                    return None;
                }
                let flip = adversary.is_some_and(|p| {
                    p.is_attacker(round, user) && p.config().attack.flips_labels()
                });
                let mut net = self.model.build_with_threads(dims, self.seed, 1);
                net.set_flat_params(global_ref);
                // Per-(round, user) deterministic shuffle.
                let mut rng = StdRng::seed_from_u64(self.seed ^ (round as u64) << 20 ^ user as u64);
                let mut order: Vec<usize> = indices.to_vec();
                for i in (1..order.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    order.swap(i, j);
                }
                let mut loss_sum = 0.0f64;
                let mut batches = 0usize;
                for _epoch in 0..self.local_epochs.max(1) {
                    for chunk in order.chunks(self.batch_size) {
                        let (x, mut y) = self.train.batch(chunk);
                        if flip {
                            flip_labels(&mut y, n_classes);
                        }
                        loss_sum += f64::from(net.train_batch(&x, &y));
                        batches += 1;
                    }
                }
                let mut params = net.flat_params();
                // Vector attacks transform the upload in place; honest
                // users and label-flippers pass through unchanged.
                if let Some(plan) = adversary {
                    plan.apply(round, user, global_ref, &mut params);
                }
                Some((params, indices.len(), loss_sum / batches.max(1) as f64))
            });

            let mut update_users: Vec<usize> = Vec::new();
            let updates: Vec<(Vec<f32>, usize)> = results
                .iter()
                .enumerate()
                .filter_map(|(user, r)| {
                    r.as_ref().map(|(p, n, _)| {
                        update_users.push(user);
                        (p.clone(), *n)
                    })
                })
                .collect();
            // Divergence is derived data; only pay for it while recording.
            if self.probe.is_enabled() && !updates.is_empty() {
                let params: Vec<&[f32]> = updates.iter().map(|(p, _)| p.as_slice()).collect();
                let divergence = analyze_round(&params, &global);
                self.probe.emit(|| divergence.to_event(round));
            }
            if adversary.is_some() && !self.aggregator.is_fedavg() && !updates.is_empty() {
                // Robust kinds aggregate *deltas* so norm-based scoring sees
                // the per-round movement, not the absolute parameter scale.
                let deltas: Vec<(Vec<f32>, usize)> = updates
                    .iter()
                    .map(|(p, w)| (p.iter().zip(&global).map(|(u, g)| u - g).collect(), *w))
                    .collect();
                let agg = self.aggregator.build();
                let outcome = agg.aggregate(&deltas);
                for &idx in &outcome.rejected {
                    let user = update_users[idx];
                    let score = outcome.scores[idx];
                    self.probe.emit(|| Event::UpdateRejected {
                        round,
                        user,
                        aggregator: agg.name().to_string(),
                        score,
                    });
                }
                rejected_updates += outcome.rejected.len();
                let mean_score = outcome.mean_score();
                self.probe.emit(|| Event::RobustAggregate {
                    round,
                    aggregator: agg.name().to_string(),
                    n_updates: deltas.len(),
                    rejected: outcome.rejected.len(),
                    mean_score,
                });
                for (g, d) in global.iter_mut().zip(&outcome.global) {
                    *g += d;
                }
            } else {
                global = fedavg_aggregate(&updates);
            }
            let mean_loss = {
                let ls: Vec<f64> = results.iter().flatten().map(|(_, _, l)| *l).collect();
                ls.iter().sum::<f64>() / ls.len().max(1) as f64
            };
            round_losses.push(mean_loss);

            if self.eval_every > 0 && (round + 1) % self.eval_every == 0 {
                let acc = self.evaluate(&global);
                self.probe.emit(|| Event::RoundAccuracy {
                    round: round + 1,
                    accuracy: acc,
                });
                round_accuracies.push((round + 1, acc));
            }
        }

        let final_accuracy = self.evaluate(&global);
        // Skip the final event when the last checkpoint already covered it.
        if self.eval_every == 0 || !self.rounds.is_multiple_of(self.eval_every) {
            self.probe.emit(|| Event::RoundAccuracy {
                round: self.rounds,
                accuracy: final_accuracy,
            });
        }
        Ok(FlOutcome {
            final_accuracy,
            round_accuracies,
            round_losses,
            global,
            rejected_updates,
        })
    }

    /// Test-set accuracy of a parameter vector.
    pub fn evaluate(&self, params: &[f32]) -> f64 {
        let dims = self.train.kind().dims();
        let mut net = self.model.build_with_threads(dims, self.seed, 1);
        net.set_flat_params(params);
        let n = self.test.len();
        let mut correct = 0usize;
        let all: Vec<usize> = (0..n).collect();
        for chunk in all.chunks(256) {
            let (x, y) = self.test.batch(chunk);
            let preds = net.predict(&x, y.len());
            correct += preds.iter().zip(&y).filter(|(p, l)| p == l).count();
        }
        correct as f64 / n.max(1) as f64
    }
}

/// The result of a federated run.
#[derive(Debug, Clone, Serialize)]
pub struct FlOutcome {
    /// Final test accuracy.
    pub final_accuracy: f64,
    /// `(round, accuracy)` checkpoints when `eval_every > 0`.
    pub round_accuracies: Vec<(usize, f64)>,
    /// Mean client training loss per round.
    pub round_losses: Vec<f64>,
    /// The final global parameters.
    pub global: Vec<f32>,
    /// Updates the robust aggregator excluded over the whole run (0 when no
    /// adversary is configured).
    pub rejected_updates: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_data::{iid_equal, n_class_noniid, Dataset, DatasetKind};

    fn datasets() -> (Dataset, Dataset) {
        Dataset::generate_split(DatasetKind::MnistLike, 600, 300, 1)
    }

    #[test]
    fn federated_mlp_learns_iid_data() {
        let (train, test) = datasets();
        let p = iid_equal(&train, 3, 5);
        let setup = FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 8, 42);
        let out = setup.run();
        assert!(
            out.final_accuracy > 0.8,
            "accuracy {} too low for separable data",
            out.final_accuracy
        );
        // Loss should broadly decrease.
        assert!(out.round_losses.last().unwrap() < &out.round_losses[0]);
    }

    #[test]
    fn runs_are_deterministic() {
        let (train, test) = datasets();
        let p = iid_equal(&train, 2, 7);
        let mk = || FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 3, 9).run();
        let a = mk();
        let b = mk();
        assert_eq!(a.final_accuracy, b.final_accuracy);
        assert_eq!(a.global, b.global);
    }

    #[test]
    fn idle_users_are_skipped() {
        let (train, test) = datasets();
        let p = iid_equal(&train, 2, 7);
        let mut assignment = p.users.clone();
        assignment.push(Vec::new()); // a third, idle user
        let out = FlSetup::new(&train, &test, assignment, ModelKind::Mlp, 2, 3).run();
        assert!(out.final_accuracy > 0.3);
    }

    #[test]
    fn eval_checkpoints_are_recorded() {
        let (train, test) = datasets();
        let p = iid_equal(&train, 2, 7);
        let mut setup = FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 4, 3);
        setup.eval_every = 2;
        let out = setup.run();
        assert_eq!(
            out.round_accuracies
                .iter()
                .map(|&(r, _)| r)
                .collect::<Vec<_>>(),
            vec![2, 4]
        );
    }

    #[test]
    fn probe_records_training_timeline() {
        use fedsched_telemetry::{EventLog, Probe};
        use std::sync::Arc;
        let (train, test) = datasets();
        let p = iid_equal(&train, 2, 7);
        let log = Arc::new(EventLog::new());
        let mut setup = FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 3, 9);
        setup.eval_every = 2;
        setup.probe = Probe::attached(log.clone());
        let out = setup.run();

        let events = log.events();
        let starts = events
            .iter()
            .filter(|e| matches!(e, fedsched_telemetry::Event::RoundStart { n_users: 2, .. }))
            .count();
        assert_eq!(starts, 3);
        let divergences = events
            .iter()
            .filter(|e| matches!(e, fedsched_telemetry::Event::RoundDivergence { .. }))
            .count();
        assert_eq!(divergences, 3);
        // One checkpoint (round 2) plus the final accuracy (round 3).
        let accuracies: Vec<(usize, f64)> = events
            .iter()
            .filter_map(|e| match e {
                fedsched_telemetry::Event::RoundAccuracy { round, accuracy } => {
                    Some((*round, *accuracy))
                }
                _ => None,
            })
            .collect();
        assert_eq!(accuracies.len(), 2);
        assert_eq!(accuracies[0].0, 2);
        assert_eq!(accuracies[1], (3, out.final_accuracy));

        // Recording must not change the learned model.
        let plain = FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 3, 9).run();
        assert_eq!(plain.global, out.global);
    }

    #[test]
    fn missing_classes_reduce_accuracy() {
        // The core Fig-3a phenomenon at smoke scale: training that never
        // sees classes 5..10 must do worse than full coverage.
        let (train, test) = datasets();
        let full = iid_equal(&train, 2, 3);
        let full_acc = FlSetup::new(&train, &test, full.users.clone(), ModelKind::Mlp, 8, 1)
            .run()
            .final_accuracy;

        let narrow: Vec<std::collections::BTreeSet<usize>> =
            vec![(0..3).collect(), (2..5).collect()];
        let part = fedsched_data::partition_by_classes(&train, &narrow, 0.0, 3);
        let narrow_acc = FlSetup::new(&train, &test, part.users.clone(), ModelKind::Mlp, 8, 1)
            .run()
            .final_accuracy;
        assert!(
            full_acc > narrow_acc + 0.2,
            "full {full_acc} should beat 5-class {narrow_acc} clearly"
        );
    }

    #[test]
    fn noniid_still_learns_with_full_coverage() {
        let (train, test) = datasets();
        let p = n_class_noniid(&train, 5, 4, 0.2, 11);
        let out = FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 10, 5).run();
        assert!(out.final_accuracy > 0.6, "accuracy {}", out.final_accuracy);
    }

    #[test]
    fn zero_adversary_robust_kinds_match_fedavg_bitwise() {
        use fedsched_faults::{AdversaryConfig, AdversaryPlan};
        use fedsched_robust::AggregatorKind;
        let (train, test) = datasets();
        let p = iid_equal(&train, 3, 5);
        let base = FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 4, 42).run();
        for kind in [
            AggregatorKind::FedAvg,
            AggregatorKind::TrimmedMean { trim: 1 },
            AggregatorKind::Median,
            AggregatorKind::NormClip { tau: 0.0 },
            AggregatorKind::MultiKrum { f: 1, k: 2 },
        ] {
            let mut setup = FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 4, 42);
            setup.aggregator = kind;
            setup.adversary = Some(AdversaryPlan::generate(AdversaryConfig::none(), 3, 4, 42));
            let out = setup.run();
            assert_eq!(
                out.global,
                base.global,
                "{}: quiet adversary must leave training bit-identical",
                kind.name()
            );
            assert_eq!(out.rejected_updates, 0);
        }
    }

    #[test]
    fn noisy_attackers_poison_fedavg_but_not_multi_krum() {
        use fedsched_faults::{AdversaryConfig, AdversaryPlan, AttackKind};
        use fedsched_robust::AggregatorKind;
        let (train, test) = datasets();
        let p = iid_equal(&train, 5, 5);
        // Heavy additive noise: the attacked update drowns the honest mean
        // (sigma ≫ typical delta), while staying trivially far from the
        // honest cluster for Krum distance scoring.
        let adv =
            AdversaryConfig::none().with_attackers(0.3, AttackKind::GaussianNoise { sigma: 30.0 });
        // A seed whose plan compromises exactly one of the 5 users.
        let seed = (0..200u64)
            .find(|&s| {
                let plan = AdversaryPlan::generate(adv, 5, 6, s);
                (0..5).filter(|&j| plan.is_compromised(j)).count() == 1
            })
            .expect("some seed compromises exactly one user");
        let run = |aggregator: AggregatorKind, attacked: bool| {
            let mut setup = FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 6, 42);
            setup.aggregator = aggregator;
            if attacked {
                setup.adversary = Some(AdversaryPlan::generate(adv, 5, 6, seed));
            }
            setup.run()
        };
        let clean = run(AggregatorKind::FedAvg, false);
        let poisoned = run(AggregatorKind::FedAvg, true);
        let robust = run(AggregatorKind::MultiKrum { f: 1, k: 3 }, true);
        assert!(
            poisoned.final_accuracy < clean.final_accuracy - 0.1,
            "noisy update must hurt FedAvg: clean {} vs poisoned {}",
            clean.final_accuracy,
            poisoned.final_accuracy
        );
        assert!(
            robust.final_accuracy > clean.final_accuracy - 0.05,
            "multi-krum must shrug the attack off: clean {} vs robust {}",
            clean.final_accuracy,
            robust.final_accuracy
        );
        assert!(robust.rejected_updates > 0);
    }

    #[test]
    fn label_flip_attack_happens_at_the_data_level() {
        use fedsched_faults::{AdversaryConfig, AdversaryPlan, AttackKind};
        let (train, test) = datasets();
        let p = iid_equal(&train, 4, 5);
        let adv = AdversaryConfig::none().with_attackers(1.0, AttackKind::LabelFlip);
        let mut setup = FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 6, 42);
        setup.adversary = Some(AdversaryPlan::generate(adv, 4, 6, 1));
        let flipped = setup.run();
        // Every client trains against mirrored labels: the model learns the
        // flipped task, so true-label accuracy collapses below chance-ish.
        assert!(
            flipped.final_accuracy < 0.3,
            "all-flipped training should not learn the true labels, got {}",
            flipped.final_accuracy
        );
    }

    #[test]
    fn mismatched_adversary_plan_is_a_typed_error() {
        use fedsched_faults::{AdversaryConfig, AdversaryPlan};
        let (train, test) = datasets();
        let p = iid_equal(&train, 2, 7);
        let mut setup = FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 1, 1);
        setup.adversary = Some(AdversaryPlan::generate(AdversaryConfig::none(), 5, 1, 1));
        let err = setup.try_run().err().unwrap();
        assert_eq!(err.cause_code(), "arity_mismatch");
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn all_idle_panics() {
        let (train, test) = datasets();
        let setup = FlSetup::new(
            &train,
            &test,
            vec![Vec::new(), Vec::new()],
            ModelKind::Mlp,
            1,
            1,
        );
        let _ = setup.run();
    }
}
