//! The FedAvg training engine: actually learns a global model over a
//! partitioned synthetic dataset.
//!
//! Each round, every user with data (1) downloads the global parameters,
//! (2) runs one local epoch of mini-batch SGD over its assigned samples,
//! and (3) uploads the result; the server computes the sample-weighted
//! FedAvg and the next round begins. Clients execute in parallel on scoped
//! threads (one intra-model thread each, so a 10-user cohort uses ~10
//! cores); the aggregation order is fixed by user index, so results are
//! deterministic for a given seed regardless of the thread count.

use fedsched_data::Dataset;
use fedsched_nn::ModelKind;
use fedsched_parallel::{parallel_map, recommended_threads};
use fedsched_telemetry::{Event, Probe};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::builder::ConfigError;
use crate::metrics::analyze_round;
use crate::server::fedavg_aggregate;

/// Everything a federated training run needs.
#[derive(Debug, Clone)]
pub struct FlSetup<'a> {
    /// The training pool.
    pub train: &'a Dataset,
    /// Held-out evaluation data.
    pub test: &'a Dataset,
    /// Per-user training indices into `train` (empty vec = idle user).
    pub assignment: Vec<Vec<usize>>,
    /// Which model to train.
    pub model: ModelKind,
    /// Number of synchronous rounds (global epochs).
    pub rounds: usize,
    /// Local mini-batch size (the paper uses 20).
    pub batch_size: usize,
    /// Local epochs per round (`E` in FedAvg; the paper uses 1). Larger
    /// values amplify client drift under non-IID data.
    pub local_epochs: usize,
    /// Evaluate on the test set every `eval_every` rounds (0 = final only).
    pub eval_every: usize,
    /// Master seed: init, shuffling and evaluation all derive from it.
    pub seed: u64,
    /// Telemetry handle; disabled by default. When attached, the engine
    /// emits `round_start`, `round_divergence` (computed from the client
    /// updates, which costs extra work only while recording) and
    /// `round_accuracy` events.
    pub probe: Probe,
}

impl<'a> FlSetup<'a> {
    /// A setup with the paper's defaults (batch 20, eval at the end).
    pub fn new(
        train: &'a Dataset,
        test: &'a Dataset,
        assignment: Vec<Vec<usize>>,
        model: ModelKind,
        rounds: usize,
        seed: u64,
    ) -> Self {
        FlSetup {
            train,
            test,
            assignment,
            model,
            rounds,
            batch_size: 20,
            local_epochs: 1,
            eval_every: 0,
            seed,
            probe: Probe::disabled(),
        }
    }

    /// Run federated training.
    ///
    /// # Panics
    /// Panics if no user has any data.
    pub fn run(&self) -> FlOutcome {
        assert!(
            self.assignment.iter().any(|a| !a.is_empty()),
            "federated run needs at least one user with data"
        );
        match self.try_run() {
            Ok(out) => out,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible form of [`FlSetup::run`]: a setup where every user is idle
    /// yields [`ConfigError::EmptyAssignment`] instead of panicking.
    pub fn try_run(&self) -> Result<FlOutcome, ConfigError> {
        if !self.assignment.iter().any(|a| !a.is_empty()) {
            return Err(ConfigError::EmptyAssignment);
        }
        let dims = self.train.kind().dims();
        let template = self.model.build_with_threads(dims, self.seed, 1);
        let mut global = template.flat_params();
        drop(template);

        let threads = recommended_threads();
        let mut round_losses = Vec::with_capacity(self.rounds);
        let mut round_accuracies = Vec::new();

        let active_users = self.assignment.iter().filter(|a| !a.is_empty()).count();
        for round in 0..self.rounds {
            self.probe.emit(|| Event::RoundStart {
                round,
                n_users: active_users,
            });
            let global_ref = &global;
            let results = parallel_map(self.assignment.len(), threads, |user| {
                let indices = &self.assignment[user];
                if indices.is_empty() {
                    return None;
                }
                let mut net = self.model.build_with_threads(dims, self.seed, 1);
                net.set_flat_params(global_ref);
                // Per-(round, user) deterministic shuffle.
                let mut rng = StdRng::seed_from_u64(self.seed ^ (round as u64) << 20 ^ user as u64);
                let mut order: Vec<usize> = indices.to_vec();
                for i in (1..order.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    order.swap(i, j);
                }
                let mut loss_sum = 0.0f64;
                let mut batches = 0usize;
                for _epoch in 0..self.local_epochs.max(1) {
                    for chunk in order.chunks(self.batch_size) {
                        let (x, y) = self.train.batch(chunk);
                        loss_sum += f64::from(net.train_batch(&x, &y));
                        batches += 1;
                    }
                }
                Some((
                    net.flat_params(),
                    indices.len(),
                    loss_sum / batches.max(1) as f64,
                ))
            });

            let updates: Vec<(Vec<f32>, usize)> = results
                .iter()
                .flatten()
                .map(|(p, n, _)| (p.clone(), *n))
                .collect();
            // Divergence is derived data; only pay for it while recording.
            if self.probe.is_enabled() && !updates.is_empty() {
                let params: Vec<&[f32]> = updates.iter().map(|(p, _)| p.as_slice()).collect();
                let divergence = analyze_round(&params, &global);
                self.probe.emit(|| divergence.to_event(round));
            }
            global = fedavg_aggregate(&updates);
            let mean_loss = {
                let ls: Vec<f64> = results.iter().flatten().map(|(_, _, l)| *l).collect();
                ls.iter().sum::<f64>() / ls.len().max(1) as f64
            };
            round_losses.push(mean_loss);

            if self.eval_every > 0 && (round + 1) % self.eval_every == 0 {
                let acc = self.evaluate(&global);
                self.probe.emit(|| Event::RoundAccuracy {
                    round: round + 1,
                    accuracy: acc,
                });
                round_accuracies.push((round + 1, acc));
            }
        }

        let final_accuracy = self.evaluate(&global);
        // Skip the final event when the last checkpoint already covered it.
        if self.eval_every == 0 || !self.rounds.is_multiple_of(self.eval_every) {
            self.probe.emit(|| Event::RoundAccuracy {
                round: self.rounds,
                accuracy: final_accuracy,
            });
        }
        Ok(FlOutcome {
            final_accuracy,
            round_accuracies,
            round_losses,
            global,
        })
    }

    /// Test-set accuracy of a parameter vector.
    pub fn evaluate(&self, params: &[f32]) -> f64 {
        let dims = self.train.kind().dims();
        let mut net = self.model.build_with_threads(dims, self.seed, 1);
        net.set_flat_params(params);
        let n = self.test.len();
        let mut correct = 0usize;
        let all: Vec<usize> = (0..n).collect();
        for chunk in all.chunks(256) {
            let (x, y) = self.test.batch(chunk);
            let preds = net.predict(&x, y.len());
            correct += preds.iter().zip(&y).filter(|(p, l)| p == l).count();
        }
        correct as f64 / n.max(1) as f64
    }
}

/// The result of a federated run.
#[derive(Debug, Clone, Serialize)]
pub struct FlOutcome {
    /// Final test accuracy.
    pub final_accuracy: f64,
    /// `(round, accuracy)` checkpoints when `eval_every > 0`.
    pub round_accuracies: Vec<(usize, f64)>,
    /// Mean client training loss per round.
    pub round_losses: Vec<f64>,
    /// The final global parameters.
    pub global: Vec<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_data::{iid_equal, n_class_noniid, Dataset, DatasetKind};

    fn datasets() -> (Dataset, Dataset) {
        Dataset::generate_split(DatasetKind::MnistLike, 600, 300, 1)
    }

    #[test]
    fn federated_mlp_learns_iid_data() {
        let (train, test) = datasets();
        let p = iid_equal(&train, 3, 5);
        let setup = FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 8, 42);
        let out = setup.run();
        assert!(
            out.final_accuracy > 0.8,
            "accuracy {} too low for separable data",
            out.final_accuracy
        );
        // Loss should broadly decrease.
        assert!(out.round_losses.last().unwrap() < &out.round_losses[0]);
    }

    #[test]
    fn runs_are_deterministic() {
        let (train, test) = datasets();
        let p = iid_equal(&train, 2, 7);
        let mk = || FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 3, 9).run();
        let a = mk();
        let b = mk();
        assert_eq!(a.final_accuracy, b.final_accuracy);
        assert_eq!(a.global, b.global);
    }

    #[test]
    fn idle_users_are_skipped() {
        let (train, test) = datasets();
        let p = iid_equal(&train, 2, 7);
        let mut assignment = p.users.clone();
        assignment.push(Vec::new()); // a third, idle user
        let out = FlSetup::new(&train, &test, assignment, ModelKind::Mlp, 2, 3).run();
        assert!(out.final_accuracy > 0.3);
    }

    #[test]
    fn eval_checkpoints_are_recorded() {
        let (train, test) = datasets();
        let p = iid_equal(&train, 2, 7);
        let mut setup = FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 4, 3);
        setup.eval_every = 2;
        let out = setup.run();
        assert_eq!(
            out.round_accuracies
                .iter()
                .map(|&(r, _)| r)
                .collect::<Vec<_>>(),
            vec![2, 4]
        );
    }

    #[test]
    fn probe_records_training_timeline() {
        use fedsched_telemetry::{EventLog, Probe};
        use std::sync::Arc;
        let (train, test) = datasets();
        let p = iid_equal(&train, 2, 7);
        let log = Arc::new(EventLog::new());
        let mut setup = FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 3, 9);
        setup.eval_every = 2;
        setup.probe = Probe::attached(log.clone());
        let out = setup.run();

        let events = log.events();
        let starts = events
            .iter()
            .filter(|e| matches!(e, fedsched_telemetry::Event::RoundStart { n_users: 2, .. }))
            .count();
        assert_eq!(starts, 3);
        let divergences = events
            .iter()
            .filter(|e| matches!(e, fedsched_telemetry::Event::RoundDivergence { .. }))
            .count();
        assert_eq!(divergences, 3);
        // One checkpoint (round 2) plus the final accuracy (round 3).
        let accuracies: Vec<(usize, f64)> = events
            .iter()
            .filter_map(|e| match e {
                fedsched_telemetry::Event::RoundAccuracy { round, accuracy } => {
                    Some((*round, *accuracy))
                }
                _ => None,
            })
            .collect();
        assert_eq!(accuracies.len(), 2);
        assert_eq!(accuracies[0].0, 2);
        assert_eq!(accuracies[1], (3, out.final_accuracy));

        // Recording must not change the learned model.
        let plain = FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 3, 9).run();
        assert_eq!(plain.global, out.global);
    }

    #[test]
    fn missing_classes_reduce_accuracy() {
        // The core Fig-3a phenomenon at smoke scale: training that never
        // sees classes 5..10 must do worse than full coverage.
        let (train, test) = datasets();
        let full = iid_equal(&train, 2, 3);
        let full_acc = FlSetup::new(&train, &test, full.users.clone(), ModelKind::Mlp, 8, 1)
            .run()
            .final_accuracy;

        let narrow: Vec<std::collections::BTreeSet<usize>> =
            vec![(0..3).collect(), (2..5).collect()];
        let part = fedsched_data::partition_by_classes(&train, &narrow, 0.0, 3);
        let narrow_acc = FlSetup::new(&train, &test, part.users.clone(), ModelKind::Mlp, 8, 1)
            .run()
            .final_accuracy;
        assert!(
            full_acc > narrow_acc + 0.2,
            "full {full_acc} should beat 5-class {narrow_acc} clearly"
        );
    }

    #[test]
    fn noniid_still_learns_with_full_coverage() {
        let (train, test) = datasets();
        let p = n_class_noniid(&train, 5, 4, 0.2, 11);
        let out = FlSetup::new(&train, &test, p.users.clone(), ModelKind::Mlp, 10, 5).run();
        assert!(out.final_accuracy > 0.6, "accuracy {}", out.final_accuracy);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn all_idle_panics() {
        let (train, test) = datasets();
        let setup = FlSetup::new(
            &train,
            &test,
            vec![Vec::new(), Vec::new()],
            ModelKind::Mlp,
            1,
            1,
        );
        let _ = setup.run();
    }
}
