//! Asynchronous federated learning — the alternative the paper rejects.
//!
//! Section II-B: "A promising way of addressing staleness ... is using
//! asynchronous updates, which resumes computation on those faster nodes
//! without waiting for the stragglers. However, inconsistent gradients could
//! easily lead to divergence and amortize the savings in computation time."
//! This module implements that alternative so the claim can be measured:
//! clients train continuously at their own (simulated) pace and the server
//! merges each arriving update with a staleness-discounted mixing weight
//! (`eta / (1 + staleness)`, as in FedAsync). An event-driven simulation
//! orders arrivals by simulated device time; training itself is real.

use fedsched_data::Dataset;
use fedsched_device::{Device, TrainingWorkload};
use fedsched_net::Link;
use fedsched_nn::ModelKind;
use fedsched_telemetry::{Event, Probe};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// FedAsync staleness discount: the effective mixing weight of an update
/// that is `staleness` server versions old, given base rate `eta`. Shared
/// by [`AsyncFlSetup`] and the coordinator's buffered-async merge
/// ([`Coordinator`](crate::Coordinator)) so both paths discount identically.
pub fn staleness_weight(eta: f64, staleness: usize) -> f64 {
    eta / (1.0 + staleness as f64)
}

/// Configuration for an asynchronous run.
#[derive(Debug, Clone)]
pub struct AsyncFlSetup<'a> {
    /// Training pool.
    pub train: &'a Dataset,
    /// Held-out evaluation data.
    pub test: &'a Dataset,
    /// Per-user training indices (empty = idle user).
    pub assignment: Vec<Vec<usize>>,
    /// Model to train.
    pub model: ModelKind,
    /// Simulated devices (one per user) providing local-epoch durations.
    pub devices: Vec<Device>,
    /// The uplink/downlink model.
    pub link: Link,
    /// Transfer payload per direction, bytes.
    pub model_bytes: f64,
    /// Device-side training workload (for timing only).
    pub workload: TrainingWorkload,
    /// Stop after this much simulated time (seconds).
    pub sim_duration_s: f64,
    /// Base mixing rate `eta` (effective weight is `eta / (1 + staleness)`).
    pub eta: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed.
    pub seed: u64,
}

/// Outcome of an asynchronous run.
#[derive(Debug, Clone, Serialize)]
pub struct AsyncFlOutcome {
    /// Final test accuracy.
    pub final_accuracy: f64,
    /// Total updates merged.
    pub merged_updates: usize,
    /// Mean staleness (server versions elapsed between a client's download
    /// and its upload).
    pub mean_staleness: f64,
    /// `(sim_time, accuracy)` checkpoints.
    pub timeline: Vec<(f64, f64)>,
    /// The final global parameters.
    pub global: Vec<f32>,
}

impl<'a> AsyncFlSetup<'a> {
    /// Run the event-driven asynchronous simulation.
    ///
    /// # Panics
    /// Panics if `assignment`/`devices` lengths differ or nobody has data.
    pub fn run(&self) -> AsyncFlOutcome {
        self.run_traced(&Probe::disabled())
    }

    /// [`AsyncFlSetup::run`], emitting one `async_merge` event per merged
    /// update (the staleness-discount decision point) through `probe`.
    /// Telemetry never perturbs the simulation: a disabled probe makes this
    /// exactly `run`.
    ///
    /// # Panics
    /// Panics if `assignment`/`devices` lengths differ or nobody has data.
    pub fn run_traced(&self, probe: &Probe) -> AsyncFlOutcome {
        assert_eq!(
            self.assignment.len(),
            self.devices.len(),
            "assignment/devices mismatch"
        );
        assert!(
            self.assignment.iter().any(|a| !a.is_empty()),
            "async run needs at least one user with data"
        );
        let dims = self.train.kind().dims();
        let template = self.model.build_with_threads(dims, self.seed, 1);
        let mut global = template.flat_params();
        drop(template);

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut devices = self.devices.clone();

        // Per-client in-flight state: (arrival_time, version_downloaded).
        // Kick off every client at t = download time.
        let n = self.assignment.len();
        let mut next_arrival: Vec<Option<(f64, usize)>> = vec![None; n];
        let mut server_version = 0usize;
        let mut merged = 0usize;
        let mut staleness_sum = 0usize;
        let mut timeline = Vec::new();

        let schedule_client = |j: usize,
                               now: f64,
                               version: usize,
                               devices: &mut [Device],
                               rng: &mut StdRng|
         -> Option<(f64, usize)> {
            if self.assignment[j].is_empty() {
                return None;
            }
            let comm = self.link.sample_round_seconds(self.model_bytes, rng);
            let compute = devices[j].train_samples(&self.workload, self.assignment[j].len());
            Some((now + comm + compute, version))
        };

        for (j, slot) in next_arrival.iter_mut().enumerate() {
            *slot = schedule_client(j, 0.0, 0, &mut devices, &mut rng);
        }

        let mut eval_at = self.sim_duration_s / 5.0;
        // Event loop over the earliest pending arrival.
        while let Some((j, (t, version))) = next_arrival
            .iter()
            .enumerate()
            .filter_map(|(j, a)| a.map(|x| (j, x)))
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite times"))
        {
            if t > self.sim_duration_s {
                break;
            }

            // The client trains from the version it downloaded: replay its
            // local epoch against that *historical* global. We keep only
            // the latest global (FedAsync-style state): the client's local
            // run is recomputed from the current global minus staleness
            // discount — approximated by training from the stale snapshot
            // we stored implicitly via mixing. For fidelity at modest cost
            // we train from the *current* global (standard semi-async
            // approximation) and discount by staleness.
            let staleness = server_version - version;
            let mut net = self.model.build_with_threads(dims, self.seed, 1);
            net.set_flat_params(&global);
            let mut order: Vec<usize> = self.assignment[j].clone();
            for i in (1..order.len()).rev() {
                let k = rng.gen_range(0..=i);
                order.swap(i, k);
            }
            for chunk in order.chunks(self.batch_size) {
                let (x, y) = self.train.batch(chunk);
                net.train_batch(&x, &y);
            }
            let update = net.flat_params();

            let weight = staleness_weight(self.eta, staleness) as f32;
            probe.emit(|| Event::AsyncMerge {
                t_s: t,
                user: j,
                staleness,
                weight: f64::from(weight),
            });
            for (g, &u) in global.iter_mut().zip(&update) {
                *g = (1.0 - weight) * *g + weight * u;
            }
            server_version += 1;
            merged += 1;
            staleness_sum += staleness;

            // Requeue the client.
            next_arrival[j] = schedule_client(j, t, server_version, &mut devices, &mut rng);

            if t >= eval_at {
                timeline.push((t, self.evaluate(&global)));
                eval_at += self.sim_duration_s / 5.0;
            }
        }

        let final_accuracy = self.evaluate(&global);
        AsyncFlOutcome {
            final_accuracy,
            merged_updates: merged,
            mean_staleness: if merged == 0 {
                0.0
            } else {
                staleness_sum as f64 / merged as f64
            },
            timeline,
            global,
        }
    }

    fn evaluate(&self, params: &[f32]) -> f64 {
        let dims = self.train.kind().dims();
        let mut net = self.model.build_with_threads(dims, self.seed, 1);
        net.set_flat_params(params);
        let idx: Vec<usize> = (0..self.test.len()).collect();
        let mut correct = 0usize;
        for chunk in idx.chunks(256) {
            let (x, y) = self.test.batch(chunk);
            let preds = net.predict(&x, y.len());
            correct += preds.iter().zip(&y).filter(|(p, l)| p == l).count();
        }
        correct as f64 / self.test.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_data::{iid_equal, DatasetKind};
    use fedsched_device::DeviceModel;
    use fedsched_net::Link;

    fn setup<'a>(train: &'a Dataset, test: &'a Dataset, duration: f64) -> AsyncFlSetup<'a> {
        let p = iid_equal(train, 3, 5);
        AsyncFlSetup {
            train,
            test,
            assignment: p.users,
            model: ModelKind::Mlp,
            devices: vec![
                Device::from_model(DeviceModel::Pixel2, 1),
                Device::from_model(DeviceModel::Nexus6, 2),
                Device::from_model(DeviceModel::Nexus6P, 3),
            ],
            link: Link::wifi_campus(),
            model_bytes: 2.5e6,
            workload: TrainingWorkload::lenet(),
            sim_duration_s: duration,
            eta: 0.6,
            batch_size: 20,
            seed: 9,
        }
    }

    #[test]
    fn async_run_merges_updates_and_learns() {
        let (train, test) = Dataset::generate_split(DatasetKind::MnistLike, 450, 200, 1);
        let out = setup(&train, &test, 120.0).run();
        assert!(out.merged_updates >= 3, "merged {}", out.merged_updates);
        assert!(out.final_accuracy > 0.5, "accuracy {}", out.final_accuracy);
    }

    #[test]
    fn fast_devices_contribute_more_updates() {
        let (train, test) = Dataset::generate_split(DatasetKind::MnistLike, 300, 100, 2);
        let out = setup(&train, &test, 200.0).run();
        // Pixel2 outpaces Nexus6P: with ~150 samples each, Pixel2's round is
        // ~1.5 s vs the 6P's (eventually) ~7 s, so total updates must exceed
        // 3x the slowest client's possible count... indirectly: staleness
        // must be nonzero because arrival orders interleave.
        assert!(out.merged_updates > 10);
        assert!(out.mean_staleness > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, test) = Dataset::generate_split(DatasetKind::MnistLike, 200, 100, 3);
        let a = setup(&train, &test, 60.0).run();
        let b = setup(&train, &test, 60.0).run();
        assert_eq!(a.final_accuracy, b.final_accuracy);
        assert_eq!(a.merged_updates, b.merged_updates);
        assert_eq!(a.global, b.global);
    }

    #[test]
    fn zero_duration_merges_nothing() {
        let (train, test) = Dataset::generate_split(DatasetKind::MnistLike, 100, 50, 4);
        let out = setup(&train, &test, 0.5).run();
        assert_eq!(out.merged_updates, 0);
        assert_eq!(out.mean_staleness, 0.0);
    }

    #[test]
    fn traced_run_logs_merges_without_perturbing_them() {
        use fedsched_telemetry::{Event, EventLog, Probe};
        use std::sync::Arc;
        let (train, test) = Dataset::generate_split(DatasetKind::MnistLike, 200, 100, 5);
        let plain = setup(&train, &test, 60.0).run();
        let log = Arc::new(EventLog::new());
        let traced = setup(&train, &test, 60.0).run_traced(&Probe::attached(log.clone()));
        assert_eq!(plain.global, traced.global);
        assert_eq!(plain.merged_updates, traced.merged_updates);
        let merges: Vec<(usize, f64)> = log
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::AsyncMerge {
                    staleness, weight, ..
                } => Some((*staleness, *weight)),
                _ => None,
            })
            .collect();
        assert_eq!(merges.len(), traced.merged_updates);
        for (staleness, weight) in merges {
            assert!((weight - 0.6 / (1.0 + staleness as f64)).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn all_idle_panics() {
        let (train, test) = Dataset::generate_split(DatasetKind::MnistLike, 100, 50, 4);
        let mut s = setup(&train, &test, 10.0);
        s.assignment = vec![Vec::new(); 3];
        let _ = s.run();
    }
}
