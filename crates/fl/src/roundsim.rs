//! Time-only round simulation: replay a schedule on the device simulator.
//!
//! Used by the computation-time experiments (Figs. 5 and 7, Table II), where
//! no actual ML needs to run — the round time of a synchronous FL epoch is
//! `max_j (T_j^c(D_j) + T_j^u(M) + T_j^d(M))`, with computation produced by
//! the thermal-aware device model and communication by the link model.

use fedsched_core::Schedule;
use fedsched_device::{Device, TrainingWorkload};
use fedsched_net::Link;
use fedsched_telemetry::{Event, Probe};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Timing statistics over simulated rounds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TimingReport {
    /// Synchronous round time (straggler) for every round.
    pub per_round_makespan: Vec<f64>,
    /// Mean per-user total time across rounds (computation + comm).
    pub per_user_mean: Vec<f64>,
    /// Mean fraction of the makespan spent on communication by the
    /// straggler.
    pub comm_fraction: f64,
}

impl TimingReport {
    /// Mean makespan across rounds.
    pub fn mean_makespan(&self) -> f64 {
        if self.per_round_makespan.is_empty() {
            return 0.0;
        }
        self.per_round_makespan.iter().sum::<f64>() / self.per_round_makespan.len() as f64
    }

    /// Total synchronous time over all rounds.
    pub fn total_time(&self) -> f64 {
        self.per_round_makespan.iter().sum()
    }
}

/// Replays schedules against a device cohort.
#[derive(Debug)]
pub struct RoundSim {
    devices: Vec<Device>,
    workload: TrainingWorkload,
    link: Link,
    model_bytes: f64,
    rng: StdRng,
    probe: Probe,
    /// Rounds simulated so far, across `run` calls — keeps event round
    /// indices globally monotone on one timeline.
    rounds_done: usize,
}

impl RoundSim {
    /// Positional constructor backing the
    /// [`SimBuilder`](crate::SimBuilder), the only public construction
    /// path (the `new` shim was removed with the job-spec API).
    pub(crate) fn from_parts(
        devices: Vec<Device>,
        workload: TrainingWorkload,
        link: Link,
        model_bytes: f64,
        seed: u64,
    ) -> Self {
        RoundSim {
            devices,
            workload,
            link,
            model_bytes,
            rng: StdRng::seed_from_u64(seed),
            probe: Probe::disabled(),
            rounds_done: 0,
        }
    }

    /// Attach a telemetry probe (builder form). The simulator emits
    /// `round_start` / `user_span` / `round_end` events, and every device
    /// in the cohort emits its own thermal/battery events through the same
    /// probe.
    pub fn with_probe(mut self, probe: Probe) -> Self {
        for d in &mut self.devices {
            d.set_probe(probe.clone());
        }
        self.probe = probe;
        self
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Borrow the devices (e.g. to inspect battery drain afterwards).
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Simulate `rounds` synchronous rounds under `schedule`. Device
    /// thermal state persists across rounds (continuous training); call
    /// [`RoundSim::cool_down`] between experiments.
    ///
    /// # Panics
    /// Panics if the schedule's user count differs from the cohort size.
    pub fn run(&mut self, schedule: &Schedule, rounds: usize) -> TimingReport {
        assert_eq!(
            schedule.shards.len(),
            self.devices.len(),
            "schedule/cohort size mismatch"
        );
        let n = self.devices.len();
        let mut per_round = Vec::with_capacity(rounds);
        let mut user_totals = vec![0.0f64; n];
        let mut straggler_comm = 0.0f64;

        let participants = schedule.shards.iter().filter(|&&k| k > 0).count();
        for _ in 0..rounds {
            let round = self.rounds_done;
            self.probe.emit(|| Event::RoundStart {
                round,
                n_users: participants,
            });
            let mut worst = 0.0f64;
            let mut worst_comm = 0.0f64;
            let mut straggler = 0usize;
            for (j, device) in self.devices.iter_mut().enumerate() {
                let samples = (schedule.shards[j] as f64 * schedule.shard_size) as usize;
                if samples == 0 {
                    continue;
                }
                let comm = self
                    .link
                    .sample_round_seconds(self.model_bytes, &mut self.rng);
                let compute = device.train_samples(&self.workload, samples);
                self.probe.emit(|| Event::UserSpan {
                    round,
                    user: j,
                    compute_s: compute,
                    comm_s: comm,
                });
                let total = comm + compute;
                user_totals[j] += total;
                if total > worst {
                    worst = total;
                    worst_comm = comm;
                    straggler = j;
                }
            }
            self.probe.emit(|| Event::RoundEnd {
                round,
                makespan_s: worst,
                straggler,
            });
            per_round.push(worst);
            straggler_comm += if worst > 0.0 { worst_comm / worst } else { 0.0 };
            self.rounds_done += 1;
        }

        TimingReport {
            per_round_makespan: per_round,
            per_user_mean: user_totals.iter().map(|t| t / rounds as f64).collect(),
            comm_fraction: if rounds == 0 {
                0.0
            } else {
                straggler_comm / rounds as f64
            },
        }
    }

    /// Reset every device's thermal state (between experiment arms).
    pub fn cool_down(&mut self) {
        for d in &mut self.devices {
            d.cool_down();
        }
    }
}

/// Predicted per-user round times for `schedule` on `devices`, with zero
/// side effects: communication is the link's deterministic expectation (no
/// jitter draw) and computation runs on *clones* of the devices with
/// telemetry detached, so neither the RNG stream, the thermal state, nor
/// the event log of the real simulation is perturbed. Idle users predict
/// `0.0`.
///
/// This is the pooling input for [`DeadlinePolicy`](fedsched_core::DeadlinePolicy)
/// resolution — both the per-cohort resolution inside
/// [`ResilientRoundSim`](crate::ResilientRoundSim) and the population-wide
/// pooling in [`Coordinator`](crate::Coordinator).
pub fn predict_round_times(
    devices: &[Device],
    workload: &TrainingWorkload,
    link: &Link,
    model_bytes: f64,
    schedule: &Schedule,
) -> Vec<f64> {
    debug_assert_eq!(devices.len(), schedule.shards.len());
    let comm = link.round_seconds(model_bytes);
    schedule
        .shards
        .iter()
        .zip(devices)
        .map(|(&k, device)| {
            let samples = (k as f64 * schedule.shard_size) as usize;
            predict_user_time(device, workload, comm, samples)
        })
        .collect()
}

/// Predicted round time for one user: `comm` (the link's deterministic
/// per-round expectation) plus speculative training of `samples` on a
/// clone of the device. Idle users (`samples == 0`) predict `0.0`.
///
/// Shared by [`predict_round_times`] and the event-driven engine's
/// active-set-only deadline resolution, so both resolve deadlines from
/// the same per-user predictor.
pub fn predict_user_time(
    device: &Device,
    workload: &TrainingWorkload,
    comm: f64,
    samples: usize,
) -> f64 {
    if samples == 0 {
        return 0.0;
    }
    // Clones share the Arc-backed probe with the original — detach it so
    // speculative training never reaches the event log.
    let mut scratch = device.clone();
    scratch.set_probe(Probe::disabled());
    comm + scratch.train_samples(workload, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_device::{DeviceModel, Testbed};

    fn sim(seed: u64) -> RoundSim {
        let tb = Testbed::testbed_1(seed);
        RoundSim::from_parts(
            tb.devices().to_vec(),
            TrainingWorkload::lenet(),
            Link::new(100.0, 100.0, 0.0, 0.0),
            2.5e6,
            seed,
        )
    }

    #[test]
    fn makespan_is_worst_user() {
        let mut s = sim(1);
        let schedule = Schedule::new(vec![10, 10, 10], 100.0);
        let report = s.run(&schedule, 2);
        assert_eq!(report.per_round_makespan.len(), 2);
        for &m in &report.per_round_makespan {
            assert!(m > 0.0);
        }
        // Per-user means never exceed the worst makespan.
        let max_makespan = report
            .per_round_makespan
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        for &t in &report.per_user_mean {
            assert!(t <= max_makespan * 1.01);
        }
    }

    #[test]
    fn idle_users_cost_nothing() {
        let mut s = sim(2);
        let schedule = Schedule::new(vec![30, 0, 0], 100.0);
        let report = s.run(&schedule, 1);
        assert_eq!(report.per_user_mean[1], 0.0);
        assert_eq!(report.per_user_mean[2], 0.0);
    }

    #[test]
    fn unbalanced_schedule_beats_equal_on_heterogeneous_cohort() {
        // Pixel2 is ~1.8x faster than Mate10: giving it more work must cut
        // the makespan vs an equal split.
        let equal = Schedule::new(vec![20, 20, 20], 100.0);
        let tilted = Schedule::new(vec![24, 14, 22], 100.0);
        let me = sim(3).run(&equal, 3).mean_makespan();
        let mt = sim(3).run(&tilted, 3).mean_makespan();
        assert!(mt < me, "tilted {mt} !< equal {me}");
    }

    #[test]
    fn comm_fraction_is_small_for_lenet_wifi() {
        // Paper Observation 3: ~5% average comm share.
        let mut s = RoundSim::from_parts(
            Testbed::testbed_1(4).devices().to_vec(),
            TrainingWorkload::lenet(),
            Link::wifi_campus(),
            2.5e6,
            4,
        );
        let report = s.run(&Schedule::new(vec![10, 10, 10], 100.0), 3);
        assert!(report.comm_fraction < 0.10, "{}", report.comm_fraction);
        assert!(report.comm_fraction > 0.0);
    }

    #[test]
    fn thermal_state_persists_across_rounds() {
        // A Nexus6P-only cohort slows down in later rounds as it heats.
        let mut s = RoundSim::from_parts(
            vec![Device::from_model(DeviceModel::Nexus6P, 5)],
            TrainingWorkload::lenet(),
            Link::new(1000.0, 1000.0, 0.0, 0.0),
            2.5e6,
            5,
        );
        let report = s.run(&Schedule::new(vec![20], 100.0), 5);
        let first = report.per_round_makespan[0];
        let last = *report.per_round_makespan.last().unwrap();
        assert!(last > first * 1.5, "first {first}, last {last}");
    }

    #[test]
    fn probe_records_round_timeline() {
        use fedsched_telemetry::EventLog;
        use std::sync::Arc;
        let log = Arc::new(EventLog::new());
        let mut s = sim(9).with_probe(Probe::attached(log.clone()));
        let report = s.run(&Schedule::new(vec![10, 0, 10], 100.0), 2);

        let events = log.events();
        let starts: Vec<(usize, usize)> = events
            .iter()
            .filter_map(|e| match e {
                Event::RoundStart { round, n_users } => Some((*round, *n_users)),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec![(0, 2), (1, 2)]);

        // Each round: spans only for participating users, and the round_end
        // makespan matches the worst span and the timing report.
        for round in 0..2usize {
            let spans: Vec<(usize, f64)> = events
                .iter()
                .filter_map(|e| match e {
                    Event::UserSpan {
                        round: r,
                        user,
                        compute_s,
                        comm_s,
                    } if *r == round => Some((*user, compute_s + comm_s)),
                    _ => None,
                })
                .collect();
            assert_eq!(
                spans.iter().map(|(u, _)| *u).collect::<Vec<_>>(),
                vec![0, 2]
            );
            let (makespan, straggler) = events
                .iter()
                .find_map(|e| match e {
                    Event::RoundEnd {
                        round: r,
                        makespan_s,
                        straggler,
                    } if *r == round => Some((*makespan_s, *straggler)),
                    _ => None,
                })
                .expect("round_end");
            let worst = spans
                .iter()
                .cloned()
                .fold((0usize, 0.0f64), |a, b| if b.1 > a.1 { b } else { a });
            assert_eq!(straggler, worst.0);
            assert!((makespan - worst.1).abs() < 1e-12);
            assert!((makespan - report.per_round_makespan[round]).abs() < 1e-12);
        }

        // A second run continues the round numbering.
        s.run(&Schedule::new(vec![5, 5, 5], 100.0), 1);
        assert!(log.events().iter().any(|e| matches!(
            e,
            Event::RoundStart {
                round: 2,
                n_users: 3
            }
        )));
    }

    #[test]
    fn probed_and_unprobed_runs_agree() {
        use fedsched_telemetry::EventLog;
        use std::sync::Arc;
        let schedule = Schedule::new(vec![10, 10, 10], 100.0);
        let plain = sim(12).run(&schedule, 2);
        let probed = sim(12)
            .with_probe(Probe::attached(Arc::new(EventLog::new())))
            .run(&schedule, 2);
        assert_eq!(plain, probed, "observation must not perturb timing");
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_schedule_arity_panics() {
        let mut s = sim(6);
        let _ = s.run(&Schedule::new(vec![1, 1], 100.0), 1);
    }
}
