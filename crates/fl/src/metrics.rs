//! Update-divergence metrics.
//!
//! The paper leans on two statistical notions: *gradient divergence* (local
//! updates pulling away from the global direction under non-IID data, the
//! mechanism behind Fig. 3's accuracy loss) and *gradient diversity* (Yin et
//! al., AISTATS'18 — the paper's reference [21]) which it invokes to explain
//! why random assignments sometimes win Table III. This module computes both
//! from a round's client updates.

use fedsched_telemetry::{Event, MetricsRegistry};
use serde::Serialize;

/// Divergence statistics for one round of client updates.
#[derive(Debug, Clone, Serialize)]
pub struct DivergenceReport {
    /// Mean pairwise cosine similarity between client *deltas* (update
    /// minus previous global). 1.0 = all clients agree; near 0 or negative
    /// = divergent (non-IID symptom).
    pub mean_pairwise_cosine: f64,
    /// Gradient diversity `sum ||d_i||^2 / ||sum d_i||^2` (Yin et al.);
    /// higher = more diverse updates. Equals `1/n` when all deltas are
    /// identical... scaled by n: we report the normalized variant in
    /// `[1/n, inf)`.
    pub gradient_diversity: f64,
    /// L2 norm of each client's delta.
    pub delta_norms: Vec<f64>,
}

impl DivergenceReport {
    /// The telemetry event summarizing this round's divergence.
    pub fn to_event(&self, round: usize) -> Event {
        Event::RoundDivergence {
            round,
            mean_cosine: self.mean_pairwise_cosine,
        }
    }

    /// Fold this report into a [`MetricsRegistry`]: cosine and per-client
    /// delta norms as histogram observations, diversity only when finite
    /// (opposing updates make it `inf`, which would poison the mean).
    pub fn record_into(&self, registry: &mut MetricsRegistry) {
        registry.observe("divergence_mean_cosine", self.mean_pairwise_cosine);
        if self.gradient_diversity.is_finite() {
            registry.observe("gradient_diversity", self.gradient_diversity);
        }
        for &norm in &self.delta_norms {
            registry.observe("client_delta_norm", norm);
        }
    }
}

/// Cosine similarity between two vectors (0 when either is zero).
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine: dimension mismatch");
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Analyze a round: `updates[i]` is client i's uploaded parameters and
/// `previous_global` the model they all started from.
///
/// # Panics
/// Panics on an empty update set or mismatched dimensions.
pub fn analyze_round<U: AsRef<[f32]>>(updates: &[U], previous_global: &[f32]) -> DivergenceReport {
    assert!(!updates.is_empty(), "analyze_round: no updates");
    let dim = previous_global.len();
    assert!(
        updates.iter().all(|u| u.as_ref().len() == dim),
        "update dimension mismatch"
    );

    let deltas: Vec<Vec<f64>> = updates
        .iter()
        .map(|u| {
            u.as_ref()
                .iter()
                .zip(previous_global)
                .map(|(&w, &g)| f64::from(w) - f64::from(g))
                .collect()
        })
        .collect();

    let delta_norms: Vec<f64> = deltas
        .iter()
        .map(|d| d.iter().map(|x| x * x).sum::<f64>().sqrt())
        .collect();

    // Pairwise cosine over f64 deltas.
    let n = deltas.len();
    let mut cos_sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let dot: f64 = deltas[i].iter().zip(&deltas[j]).map(|(a, b)| a * b).sum();
            let denom = delta_norms[i] * delta_norms[j];
            if denom > 0.0 {
                cos_sum += dot / denom;
                pairs += 1;
            }
        }
    }
    let mean_pairwise_cosine = if pairs == 0 {
        1.0
    } else {
        cos_sum / pairs as f64
    };

    // Gradient diversity: sum ||d_i||^2 / ||sum_i d_i||^2.
    let sum_sq: f64 = delta_norms.iter().map(|x| x * x).sum();
    let mut summed = vec![0.0f64; dim];
    for d in &deltas {
        for (s, &v) in summed.iter_mut().zip(d) {
            *s += v;
        }
    }
    let norm_sum_sq: f64 = summed.iter().map(|x| x * x).sum();
    let gradient_diversity = if norm_sum_sq == 0.0 {
        f64::INFINITY
    } else {
        sum_sq / norm_sum_sq
    };

    DivergenceReport {
        mean_pairwise_cosine,
        gradient_diversity,
        delta_norms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-9);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-9);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn identical_updates_have_cosine_one_and_diversity_one_over_n() {
        let global = vec![0.0f32; 4];
        let update = vec![1.0f32, 2.0, 3.0, 4.0];
        let report = analyze_round(&[update.clone(), update.clone(), update], &global);
        assert!((report.mean_pairwise_cosine - 1.0).abs() < 1e-9);
        // sum||d||^2 = 3 * 30 = 90; ||sum||^2 = 9 * 30 = 270 -> 1/3.
        assert!((report.gradient_diversity - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn orthogonal_updates_have_zero_cosine_and_diversity_one() {
        let global = vec![0.0f32; 2];
        let report = analyze_round(&[vec![1.0, 0.0], vec![0.0, 1.0]], &global);
        assert!(report.mean_pairwise_cosine.abs() < 1e-9);
        // sum||d||^2 = 2; ||d1+d2||^2 = 2 -> diversity 1.0.
        assert!((report.gradient_diversity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn opposing_updates_are_maximally_diverse() {
        let global = vec![0.0f32; 2];
        let report = analyze_round(&[vec![1.0, 0.0], vec![-1.0, 0.0]], &global);
        assert!((report.mean_pairwise_cosine + 1.0).abs() < 1e-9);
        assert!(report.gradient_diversity.is_infinite());
    }

    #[test]
    fn norms_are_reported_per_client() {
        let global = vec![1.0f32, 1.0];
        let report = analyze_round(&[vec![1.0, 1.0], vec![4.0, 5.0]], &global);
        assert_eq!(report.delta_norms[0], 0.0);
        assert!((report.delta_norms[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no updates")]
    fn empty_updates_panic() {
        let _ = analyze_round::<Vec<f32>>(&[], &[0.0]);
    }

    #[test]
    fn report_converts_to_event_and_registry() {
        let global = vec![0.0f32; 2];
        let report = analyze_round(&[vec![1.0, 0.0], vec![0.0, 1.0]], &global);
        match report.to_event(3) {
            Event::RoundDivergence { round, mean_cosine } => {
                assert_eq!(round, 3);
                assert!((mean_cosine - report.mean_pairwise_cosine).abs() < 1e-12);
            }
            other => panic!("wrong event {other:?}"),
        }
        let mut reg = MetricsRegistry::new();
        report.record_into(&mut reg);
        assert_eq!(reg.histogram("divergence_mean_cosine").unwrap().count(), 1);
        assert_eq!(reg.histogram("client_delta_norm").unwrap().count(), 2);
        assert_eq!(reg.histogram("gradient_diversity").unwrap().count(), 1);
    }

    #[test]
    fn infinite_diversity_is_not_recorded() {
        let global = vec![0.0f32; 2];
        let report = analyze_round(&[vec![1.0, 0.0], vec![-1.0, 0.0]], &global);
        let mut reg = MetricsRegistry::new();
        report.record_into(&mut reg);
        assert!(reg.histogram("gradient_diversity").is_none());
        assert_eq!(reg.histogram("divergence_mean_cosine").unwrap().count(), 1);
    }
}
