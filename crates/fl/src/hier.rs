//! Two-tier hierarchical aggregation: edge aggregators reduce their
//! cohorts locally, the server reduces edge aggregates.
//!
//! [`HierEngine`] wraps a [`ParallelRoundEngine`] without touching its
//! cohort geometry, seed derivation, or per-cohort sims — every cohort
//! still runs the exact [`RoundSim`](crate::RoundSim) /
//! [`ResilientRoundSim`](crate::ResilientRoundSim) /
//! [`EventRoundSim`](crate::EventRoundSim) code paths. The hierarchy is a
//! *reduction topology* layered on top: cohorts are grouped into
//! contiguous edge spans, each edge folds its cohorts' round results with
//! the same merge arithmetic the flat engine uses, and the server folds
//! the edge aggregates.
//!
//! # Determinism and parity contract
//!
//! The fold at both tiers reproduces the flat engine's merge semantics
//! *exactly*, including the single-item verbatim passthrough. Two
//! consequences, pinned by `tests/hier_identity.rs`:
//!
//! * **One edge per cohort** (the default topology): the edge tier is all
//!   passthroughs, so the server fold sees the same inputs in the same
//!   order as the flat merge — the report is **byte-identical** to the
//!   flat [`Coordinator`](crate::Coordinator) / engine at every thread
//!   count, and no hierarchy events are emitted, so traces match too.
//! * **One edge total**: the edge fold IS the flat merge and the server
//!   tier is a passthrough — byte-identical again.
//!
//! Intermediate geometries regroup floating-point reductions, so the
//! float fields (`comm_fraction`, merged `per_round_makespan` /
//! `coverage`) may differ in the last bits; every *integer* field and
//! every *max*-folded makespan is identical for **all** geometries
//! (max and integer addition are associative), which the topology
//! proptests assert.
//!
//! # Edge links and tier-level robust aggregation
//!
//! An optional edge→server backhaul [`Link`] adds one sampled transfer
//! per edge per round to that edge's makespan. Each edge draws from its
//! own persistent RNG stream seeded by [`derive_edge_seed`] — disjoint
//! from the master and every cohort stream by construction — so backhaul
//! sampling never perturbs device-tier results and is itself independent
//! of thread count and cohort geometry.
//!
//! [`AggregatorKind`] composes at either tier. Tier aggregation scores
//! deterministic proxy vectors built from the round outcomes (no RNG),
//! emits [`Event::RobustAggregate`] per reduction, and records rejection
//! counts as *additive bookkeeping* in the [`HierReport`] — it never
//! rewrites the shard/coverage accounting, so the conservation identities
//! the differential suite checks survive any tier aggregator.

use std::ops::Range;

use fedsched_core::Schedule;
use fedsched_device::Device;
use fedsched_net::Link;
use fedsched_robust::AggregatorKind;
use fedsched_telemetry::Event;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::cohorts::{CohortReport, EngineKind, EngineReport, ParallelRoundEngine};
use crate::resilient::RoundOutcome;
use crate::roundsim::TimingReport;

/// Derive the backhaul RNG seed for `edge` from the master seed.
///
/// Same splitmix64 finalizer as
/// [`derive_cohort_seed`](crate::derive_cohort_seed) but salted so edge
/// streams are disjoint from every cohort stream, and — unlike cohort 0 —
/// edge 0 does *not* pass the master through: backhaul sampling is a new
/// stream, never a continuation of a device-tier one.
pub fn derive_edge_seed(master: u64, edge: usize) -> u64 {
    let mut z =
        (master ^ 0xED6E_A66E_0000_0001) ^ (edge as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Balanced contiguous split of `n_cohorts` cohort indices across
/// `edges` edge aggregators: edge `i` covers
/// `[i*q + min(i, r), (i+1)*q + min(i+1, r))` where `q = n_cohorts /
/// edges`, `r = n_cohorts % edges` — the first `r` edges get one extra
/// cohort. Valid iff `1 <= edges <= n_cohorts` (or both are zero).
pub fn edge_cohort_ranges(n_cohorts: usize, edges: usize) -> Vec<Range<usize>> {
    assert!(
        edges <= n_cohorts,
        "edge layout needs edges <= n_cohorts ({edges} > {n_cohorts})"
    );
    let q = n_cohorts.checked_div(edges).unwrap_or(0);
    let r = n_cohorts.checked_rem(edges).unwrap_or(0);
    (0..edges)
        .map(|i| (i * q + i.min(r))..((i + 1) * q + (i + 1).min(r)))
        .collect()
}

/// One edge aggregator's reduced view of its cohorts, after any backhaul
/// link time is added.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EdgeReport {
    /// First cohort index this edge reduces (inclusive).
    pub cohort_start: usize,
    /// One past the last cohort index this edge reduces.
    pub cohort_end: usize,
    /// First population device index under this edge (inclusive).
    pub start: usize,
    /// One past the last population device index under this edge.
    pub end: usize,
    /// The edge's backhaul RNG seed (from [`derive_edge_seed`]).
    pub seed: u64,
    /// The edge's reduced timing (same merge arithmetic as the flat
    /// engine; backhaul seconds folded into each round's makespan).
    pub timing: TimingReport,
    /// The edge's reduced per-round outcomes.
    pub rounds: Vec<RoundOutcome>,
}

/// Aggregate result of one [`HierEngine::run`] call.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HierReport {
    /// Server-tier timing: the edge aggregates folded with the flat
    /// engine's merge arithmetic. Byte-identical to the flat
    /// [`EngineReport`](crate::EngineReport) timing in parity topologies.
    pub timing: TimingReport,
    /// Server-tier per-round outcomes.
    pub rounds: Vec<RoundOutcome>,
    /// Per-edge breakdowns, in edge order.
    pub edges: Vec<EdgeReport>,
    /// Per-cohort breakdowns, exactly as the flat engine reports them.
    pub cohorts: Vec<CohortReport>,
    /// Proxy updates the edge-tier aggregator excluded, summed over
    /// edges and rounds. Bookkeeping only — never folded back into the
    /// shard/coverage accounting.
    pub edge_rejections: usize,
    /// Proxy updates the server-tier aggregator excluded, summed over
    /// rounds. Bookkeeping only.
    pub server_rejections: usize,
}

/// Mirror of the flat engine's merge arithmetic over
/// `(timing, rounds, participants)` items — one per cohort at the edge
/// tier, one per edge at the server tier. Must stay operation-for-
/// operation identical to `cohorts::merge_runs`, single-item verbatim
/// passthrough included; the parity suite depends on it.
fn fold_tier(
    items: &[(&TimingReport, &[RoundOutcome], usize)],
    rounds: usize,
    first_round: usize,
) -> (TimingReport, Vec<RoundOutcome>) {
    let single = items.len() == 1;

    let mut per_round_makespan = vec![0.0f64; rounds];
    let mut per_user_mean = Vec::new();
    let mut comm_weighted = 0.0f64;
    let mut total_participants = 0usize;
    let mut merged_rounds: Vec<RoundOutcome> = (0..rounds)
        .map(|r| RoundOutcome {
            round: first_round + r,
            scheduled: 0,
            completed: 0,
            rescued: 0,
            lost_shards: 0,
            admitted: 0,
            admit_done: 0,
            carried: 0,
            coverage: 1.0,
            makespan_s: 0.0,
            failed_users: 0,
            timed_out: 0,
            rejected_updates: 0,
        })
        .collect();

    for (timing, item_rounds, participants) in items {
        for (r, &m) in timing.per_round_makespan.iter().enumerate() {
            if m > per_round_makespan[r] {
                per_round_makespan[r] = m;
            }
        }
        per_user_mean.extend_from_slice(&timing.per_user_mean);
        comm_weighted += timing.comm_fraction * *participants as f64;
        total_participants += participants;

        for (merged, outcome) in merged_rounds.iter_mut().zip(*item_rounds) {
            debug_assert_eq!(merged.round, outcome.round, "tier round indices diverged");
            merged.scheduled += outcome.scheduled;
            merged.completed += outcome.completed;
            merged.rescued += outcome.rescued;
            merged.lost_shards += outcome.lost_shards;
            merged.admitted += outcome.admitted;
            merged.admit_done += outcome.admit_done;
            merged.carried += outcome.carried;
            merged.failed_users += outcome.failed_users;
            merged.timed_out += outcome.timed_out;
            merged.rejected_updates += outcome.rejected_updates;
            if outcome.makespan_s > merged.makespan_s {
                merged.makespan_s = outcome.makespan_s;
            }
        }
    }

    for merged in &mut merged_rounds {
        merged.coverage = if merged.scheduled == 0 {
            1.0
        } else {
            (merged.completed + merged.rescued + merged.admit_done) as f64
                / (merged.scheduled + merged.admitted) as f64
        };
    }

    if single {
        (items[0].0.clone(), items[0].1.to_vec())
    } else {
        (
            TimingReport {
                per_round_makespan,
                per_user_mean,
                comm_fraction: if total_participants == 0 {
                    0.0
                } else {
                    comm_weighted / total_participants as f64
                },
            },
            merged_rounds,
        )
    }
}

/// Deterministic proxy update for tier-level robust scoring: an 8-dim
/// feature vector of the round outcome, weighted by participants (floored
/// at 1 so idle cohorts still count as an update). No RNG anywhere —
/// tier aggregation can never perturb device-tier streams.
fn proxy_update(outcome: &RoundOutcome, participants: usize) -> (Vec<f32>, usize) {
    (
        vec![
            outcome.makespan_s as f32,
            outcome.coverage as f32,
            outcome.completed as f32,
            outcome.rescued as f32,
            outcome.lost_shards as f32,
            (outcome.failed_users + outcome.timed_out) as f32,
            outcome.rejected_updates as f32,
            participants as f32,
        ],
        participants.max(1),
    )
}

/// Two-tier hierarchical round engine. Construct through
/// [`SimBuilder::build_hier`](crate::SimBuilder::build_hier).
pub struct HierEngine {
    engine: ParallelRoundEngine,
    edges: usize,
    edge_link: Option<Link>,
    edge_aggregator: AggregatorKind,
    server_aggregator: AggregatorKind,
    model_bytes: f64,
    seed: u64,
    /// One persistent backhaul RNG per edge, seeded by
    /// [`derive_edge_seed`]; streams continue across `run` calls exactly
    /// like the device-tier sim RNGs.
    edge_rngs: Vec<StdRng>,
}

impl HierEngine {
    pub(crate) fn from_parts(
        engine: ParallelRoundEngine,
        edges: usize,
        edge_link: Option<Link>,
        edge_aggregator: AggregatorKind,
        server_aggregator: AggregatorKind,
        model_bytes: f64,
        seed: u64,
    ) -> Self {
        let edge_rngs = (0..edges)
            .map(|e| StdRng::seed_from_u64(derive_edge_seed(seed, e)))
            .collect();
        HierEngine {
            engine,
            edges,
            edge_link,
            edge_aggregator,
            server_aggregator,
            model_bytes,
            seed,
            edge_rngs,
        }
    }

    /// Devices in the population.
    pub fn n_devices(&self) -> usize {
        self.engine.n_devices()
    }

    /// Cohorts the population partitions into.
    pub fn n_cohorts(&self) -> usize {
        self.engine.n_cohorts()
    }

    /// Edge aggregators in the topology.
    pub fn n_edges(&self) -> usize {
        self.edges
    }

    /// Worker threads used for the parallel phase.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// Rounds simulated so far across all `run` calls.
    pub fn rounds_done(&self) -> usize {
        self.engine.rounds_done()
    }

    /// Per-cohort engine kind.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine.engine_kind()
    }

    /// The edge→server backhaul link, if one is configured.
    pub fn edge_link(&self) -> Option<Link> {
        self.edge_link
    }

    /// The edge-tier aggregation rule.
    pub fn edge_aggregator(&self) -> AggregatorKind {
        self.edge_aggregator
    }

    /// The server-tier aggregation rule.
    pub fn server_aggregator(&self) -> AggregatorKind {
        self.server_aggregator
    }

    /// Cohort index span of every edge, in edge order.
    pub fn edge_layout(&self) -> Vec<Range<usize>> {
        edge_cohort_ranges(self.engine.n_cohorts(), self.edges)
    }

    /// Snapshot the population (cohort sims are flushed back first).
    pub fn devices(&self) -> Vec<Device> {
        self.engine.devices()
    }

    /// Idle the population between training sessions.
    pub fn cool_down(&mut self) {
        self.engine.cool_down();
    }

    /// True iff the topology adds nothing over the flat engine: one edge
    /// per cohort, no backhaul link, FedAvg at both tiers. In that case
    /// no hierarchy events are emitted, so traces — not just reports —
    /// stay byte-identical to the flat path.
    fn trivial_topology(&self) -> bool {
        self.edges == self.engine.n_cohorts()
            && self.edge_link.is_none()
            && self.edge_aggregator.is_fedavg()
            && self.server_aggregator.is_fedavg()
    }

    /// Simulate `rounds` rounds of `schedule`: run the flat engine
    /// unchanged, then reduce cohorts per edge and edges at the server.
    ///
    /// Emission order (non-trivial topologies only), per round in
    /// ascending edge order on the control thread — the single trace
    /// writer once the engine's parallel phase has been spliced:
    /// [`Event::EdgeReduce`] per edge, then an edge-tier
    /// [`Event::RobustAggregate`] per edge (non-FedAvg edge tier), then
    /// one server-tier [`Event::RobustAggregate`] (non-FedAvg server
    /// tier).
    ///
    /// # Panics
    ///
    /// Panics when `schedule` arity does not match the population (the
    /// flat engine's contract).
    pub fn run(&mut self, schedule: &Schedule, rounds: usize) -> HierReport {
        let first_round = self.engine.rounds_done();
        let flat = self.engine.run(schedule, rounds);
        let probe = self.engine.probe_handle();
        let trivial = self.trivial_topology();

        // Participants per cohort: active users in the cohort's schedule
        // slice — the same weights the flat merge uses.
        let participants: Vec<usize> = flat
            .cohorts
            .iter()
            .map(|c| {
                schedule.shards[c.start..c.end]
                    .iter()
                    .filter(|&&s| s > 0)
                    .count()
            })
            .collect();

        let layout = edge_cohort_ranges(flat.cohorts.len(), self.edges);
        let mut edge_reports = Vec::with_capacity(self.edges);
        let mut edge_links: Vec<Vec<f64>> = Vec::with_capacity(self.edges);
        for (e, span) in layout.iter().enumerate() {
            let items: Vec<(&TimingReport, &[RoundOutcome], usize)> = span
                .clone()
                .map(|c| {
                    let cohort = &flat.cohorts[c];
                    (&cohort.timing, cohort.rounds.as_slice(), participants[c])
                })
                .collect();
            let (mut timing, mut edge_rounds) = fold_tier(&items, rounds, first_round);

            // Backhaul: one sampled edge→server transfer per round, added
            // to the edge's makespan. Sampling only happens when a link is
            // configured, so parity topologies draw nothing (and dodge the
            // −0.0 + 0.0 bit hazard entirely).
            let links = if let Some(link) = self.edge_link {
                let rng = &mut self.edge_rngs[e];
                (0..rounds)
                    .map(|r| {
                        let s = link.sample_round_seconds(self.model_bytes, rng);
                        timing.per_round_makespan[r] += s;
                        edge_rounds[r].makespan_s += s;
                        s
                    })
                    .collect()
            } else {
                vec![0.0; rounds]
            };
            edge_links.push(links);

            let (start, end) = if span.is_empty() {
                (0, 0)
            } else {
                (
                    flat.cohorts[span.start].start,
                    flat.cohorts[span.end - 1].end,
                )
            };
            edge_reports.push(EdgeReport {
                cohort_start: span.start,
                cohort_end: span.end,
                start,
                end,
                seed: derive_edge_seed(self.engine_seed(), e),
                timing,
                rounds: edge_rounds,
            });
        }

        // Server tier: fold the edge aggregates with the same arithmetic.
        let edge_participants: Vec<usize> = layout
            .iter()
            .map(|span| span.clone().map(|c| participants[c]).sum())
            .collect();
        let server_items: Vec<(&TimingReport, &[RoundOutcome], usize)> = edge_reports
            .iter()
            .enumerate()
            .map(|(e, er)| (&er.timing, er.rounds.as_slice(), edge_participants[e]))
            .collect();
        let (timing, server_rounds) = fold_tier(&server_items, rounds, first_round);

        // Tier-level robust scoring + event emission, all on this thread.
        let mut edge_rejections = 0usize;
        let mut server_rejections = 0usize;
        let edge_rule = (!self.edge_aggregator.is_fedavg()).then(|| self.edge_aggregator.build());
        let server_rule =
            (!self.server_aggregator.is_fedavg()).then(|| self.server_aggregator.build());
        // `r` indexes several parallel per-round structures (edge timings,
        // backhaul draws, cohort outcomes), so a plain range is clearest.
        #[allow(clippy::needless_range_loop)]
        for r in 0..rounds {
            for (e, er) in edge_reports.iter().enumerate() {
                if !trivial {
                    probe.emit(|| Event::EdgeReduce {
                        round: first_round + r,
                        edge: e,
                        cohorts: er.cohort_end - er.cohort_start,
                        devices: er.end - er.start,
                        makespan_s: er.timing.per_round_makespan[r],
                        link_s: edge_links[e][r],
                    });
                }
                if let Some(rule) = &edge_rule {
                    let updates: Vec<(Vec<f32>, usize)> = (er.cohort_start..er.cohort_end)
                        .map(|c| proxy_update(&flat.cohorts[c].rounds[r], participants[c]))
                        .collect();
                    if !updates.is_empty() {
                        let outcome = rule.aggregate(&updates);
                        edge_rejections += outcome.rejected.len();
                        probe.emit(|| Event::RobustAggregate {
                            round: first_round + r,
                            aggregator: rule.name().to_string(),
                            n_updates: updates.len(),
                            rejected: outcome.rejected.len(),
                            mean_score: outcome.mean_score(),
                        });
                    }
                }
            }
            if let Some(rule) = &server_rule {
                let updates: Vec<(Vec<f32>, usize)> = edge_reports
                    .iter()
                    .enumerate()
                    .map(|(e, er)| proxy_update(&er.rounds[r], edge_participants[e]))
                    .collect();
                if !updates.is_empty() {
                    let outcome = rule.aggregate(&updates);
                    server_rejections += outcome.rejected.len();
                    probe.emit(|| Event::RobustAggregate {
                        round: first_round + r,
                        aggregator: rule.name().to_string(),
                        n_updates: updates.len(),
                        rejected: outcome.rejected.len(),
                        mean_score: outcome.mean_score(),
                    });
                }
            }
        }

        HierReport {
            timing,
            rounds: server_rounds,
            edges: edge_reports,
            cohorts: flat.cohorts,
            edge_rejections,
            server_rejections,
        }
    }

    /// The flat engine's view of the same run, for parity checks: the
    /// server-tier fold of a [`HierReport`] reshaped as an
    /// [`EngineReport`].
    pub fn as_engine_report(report: &HierReport) -> EngineReport {
        EngineReport {
            timing: report.timing.clone(),
            rounds: report.rounds.clone(),
            cohorts: report.cohorts.clone(),
        }
    }

    fn engine_seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_seed_has_no_passthrough_and_distinct_streams() {
        let master = 2020;
        assert_ne!(derive_edge_seed(master, 0), master);
        let seeds: Vec<u64> = (0..64).map(|e| derive_edge_seed(master, e)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
        // Disjoint from the cohort stream family on the same master.
        for e in 0..64usize {
            for c in 0..64usize {
                assert_ne!(
                    derive_edge_seed(master, e),
                    crate::derive_cohort_seed(master, c)
                );
            }
        }
    }

    #[test]
    fn edge_layout_is_balanced_contiguous_and_total() {
        for n_cohorts in 0..24usize {
            for edges in 0..=n_cohorts {
                let spans = edge_cohort_ranges(n_cohorts, edges);
                assert_eq!(spans.len(), edges);
                let mut next = 0;
                for span in &spans {
                    assert_eq!(span.start, next, "spans must be contiguous");
                    assert!(span.end >= span.start);
                    next = span.end;
                }
                if edges > 0 {
                    assert_eq!(next, n_cohorts, "spans must cover every cohort");
                    let sizes: Vec<usize> = spans.iter().map(|s| s.len()).collect();
                    let min = *sizes.iter().min().unwrap();
                    let max = *sizes.iter().max().unwrap();
                    assert!(max - min <= 1, "split must be balanced: {sizes:?}");
                    assert!(min >= 1, "every edge must own a cohort");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "edge layout needs edges <= n_cohorts")]
    fn edge_layout_rejects_more_edges_than_cohorts() {
        let _ = edge_cohort_ranges(2, 3);
    }

    #[test]
    fn fold_tier_single_item_is_verbatim_passthrough() {
        let timing = TimingReport {
            per_round_makespan: vec![3.5, 4.25],
            per_user_mean: vec![1.0, 2.0, 3.0],
            comm_fraction: 0.123456789,
        };
        let rounds = vec![
            RoundOutcome {
                round: 7,
                scheduled: 9,
                completed: 8,
                rescued: 1,
                lost_shards: 0,
                admitted: 0,
                admit_done: 0,
                carried: 0,
                coverage: 1.0,
                makespan_s: 3.5,
                failed_users: 0,
                timed_out: 0,
                rejected_updates: 0,
            },
            RoundOutcome {
                round: 8,
                scheduled: 9,
                completed: 7,
                rescued: 0,
                lost_shards: 2,
                admitted: 0,
                admit_done: 0,
                carried: 0,
                coverage: 7.0 / 9.0,
                makespan_s: 4.25,
                failed_users: 1,
                timed_out: 0,
                rejected_updates: 0,
            },
        ];
        let (t, r) = fold_tier(&[(&timing, rounds.as_slice(), 3)], 2, 7);
        assert_eq!(t, timing);
        assert_eq!(r, rounds);
    }

    #[test]
    fn proxy_updates_are_deterministic_and_weighted() {
        let outcome = RoundOutcome {
            round: 0,
            scheduled: 10,
            completed: 9,
            rescued: 1,
            lost_shards: 0,
            admitted: 0,
            admit_done: 0,
            carried: 0,
            coverage: 1.0,
            makespan_s: 12.5,
            failed_users: 0,
            timed_out: 0,
            rejected_updates: 0,
        };
        let (v1, w1) = proxy_update(&outcome, 4);
        let (v2, w2) = proxy_update(&outcome, 4);
        assert_eq!(v1, v2);
        assert_eq!(w1, 4);
        assert_eq!(v1.len(), 8);
        let (_, w0) = proxy_update(&outcome, 0);
        assert_eq!(w0, 1, "idle cohorts still count as one update");
        assert_eq!(w2, 4);
    }
}
