//! Parallel multi-cohort round engine: shard a large population into
//! cohorts, simulate cohorts concurrently, merge deterministically.
//!
//! [`RoundSim`] is inherently sequential: one RNG stream consumed in
//! device-index order. [`ParallelRoundEngine`] scales it out by making the
//! **cohort** the unit of parallelism instead of the device. The population
//! is partitioned into fixed, contiguous cohorts ([`fixed_chunks`]); each
//! cohort owns a self-contained [`RoundSim`] (or [`ResilientRoundSim`] when
//! chaos is configured) seeded from [`derive_cohort_seed`], so a cohort's
//! timeline depends only on the master seed and its index — never on which
//! worker thread simulated it or in what order.
//!
//! # Determinism contract
//!
//! * The engine's output is a pure function of (population, master seed,
//!   cohort size, chaos options). Thread count affects wall-clock only:
//!   results are collected into index-ordered slots and merged by a fold in
//!   cohort order, so every report and the spliced event log are
//!   bit-identical at 1 thread and at N threads.
//! * Cohort 0 continues the master RNG stream verbatim
//!   (`derive_cohort_seed(seed, 0) == seed`), so an engine whose cohort
//!   size covers the whole population produces byte-for-byte the output of
//!   a sequential [`RoundSim`] / [`ResilientRoundSim`] built with the same
//!   master seed. `tests/parallel_identity.rs` pins this differentially.
//! * Cohort sims live as long as the engine: repeated [`run`] calls
//!   continue each cohort's RNG stream, thermal state and round numbering
//!   exactly like repeated runs of a long-lived sequential sim.
//!
//! # Merge semantics
//!
//! With more than one cohort the aggregates are defined as: per-round
//! makespan is the max across cohorts (a synchronous server waits for the
//! slowest cohort); per-user means are concatenated in population order;
//! the comm fraction is the participant-weighted mean of cohort comm
//! fractions; chaos round outcomes sum their shard counts and recompute
//! coverage. Telemetry from each cohort is buffered per-cohort during the
//! parallel phase and spliced into the engine's probe in cohort order, with
//! user indices remapped to population indices
//! ([`Event::with_user_offset`]).
//!
//! [`run`]: ParallelRoundEngine::run

use std::ops::Range;
use std::sync::{Arc, Mutex};

use fedsched_bandit::SelectionConfig;
use fedsched_core::{DeadlinePolicy, Schedule};
use fedsched_device::{Device, TrainingWorkload};
use fedsched_faults::{AdversaryConfig, AdversaryPlan, FaultConfig, FaultInjector};
use fedsched_net::{Link, RetryPolicy};
use fedsched_parallel::{fixed_chunks, parallel_map_stealing, recommended_threads};
use fedsched_robust::AggregatorKind;
use fedsched_telemetry::{Event, EventLog, Probe};
use serde::Serialize;

use crate::builder::ConfigError;
use crate::eventsim::{AdmissionPolicy, EventRoundSim};
use crate::resilient::{ResilientRoundSim, RoundOutcome};
use crate::roundsim::{predict_round_times, RoundSim, TimingReport};

/// Which execution core each cohort runs on.
///
/// Both kinds produce byte-identical reports and telemetry for the same
/// configuration (pinned by `tests/event_identity.rs` and the golden
/// traces); they differ only in how the hot loop scales. Selected through
/// [`SimBuilder::engine_kind`](crate::SimBuilder::engine_kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Sweep every device every round ([`RoundSim`] /
    /// [`ResilientRoundSim`]): `O(devices × rounds)`.
    #[default]
    Lockstep,
    /// Discrete-event core ([`EventRoundSim`]): parked (idle) devices are
    /// never touched, so the hot loop is `O(active + events)` per round.
    EventDriven,
}

/// Default devices per cohort. Large enough that the per-cohort setup cost
/// is amortized, small enough that a 10k-device population spreads over
/// every worker of a typical pool.
pub const DEFAULT_COHORT_SIZE: usize = 64;

/// Environment variable overriding the engine's default thread count.
pub const THREADS_ENV: &str = "FEDSCHED_THREADS";

/// Seed for cohort `cohort` derived from `master`.
///
/// Cohort 0 continues the master stream unchanged — this is what makes a
/// single-cohort engine bit-identical to a sequential sim seeded with
/// `master`. Later cohorts get decorrelated streams via splitmix64 over
/// `master ⊕ (cohort · φ64)`.
pub fn derive_cohort_seed(master: u64, cohort: usize) -> u64 {
    if cohort == 0 {
        return master;
    }
    // splitmix64 finalizer over the (master, cohort) pair.
    let mut z = master ^ (cohort as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Default thread count for new engines: `FEDSCHED_THREADS` when set to a
/// positive integer, otherwise [`recommended_threads`]. The env override
/// lets CI force a multi-worker pool on single-core runners (and vice
/// versa) without touching call sites.
pub fn default_engine_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(recommended_threads)
}

/// Fault-model configuration for the engine's resilient path. Mirrors the
/// [`ResilientRoundSim`] builders; the engine instantiates one injector per
/// cohort from `config`, planned for that cohort's size and derived seed.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Fault probabilities (crash, loss, churn, contention, outages).
    pub config: FaultConfig,
    /// Rounds each cohort's fault plan is generated for. Running past this
    /// horizon is fault-free, exactly like `FaultPlan::generate`.
    pub planned_rounds: usize,
    /// Retry policy applied to every transfer.
    pub retry: RetryPolicy,
    /// Per-round deadline policy, resolved per cohort (adaptive policies
    /// pool *that cohort's* predicted times — for a population-wide pooled
    /// deadline, wrap the engine in a [`Coordinator`](crate::Coordinator)).
    pub deadline: DeadlinePolicy,
    /// Whether mid-round straggler rescue is enabled.
    pub rescue: bool,
    /// Battery SoC floor below which survivors are exempt from rescue work.
    pub rescue_soc_floor: f64,
    /// Robust aggregation rule every cohort scores deliveries with
    /// (cohort-local scoring; population-level filtering is rolled up by
    /// [`merge_runs`] into [`RoundOutcome::rejected_updates`]).
    pub aggregator: AggregatorKind,
    /// Adversary model and its planned horizon, instantiated per cohort:
    /// each cohort derives its own [`AdversaryPlan`] from the cohort's
    /// size and seed — exactly like fault plans. The horizon is separate
    /// from [`ChaosOptions::planned_rounds`] so attacks and faults can
    /// cover different spans.
    pub adversary: Option<(AdversaryConfig, usize)>,
    /// Mid-round arrival admission policy, applied to every event-driven
    /// cohort. Ignored by lockstep cohorts (the builder rejects churn on
    /// them before it ever reaches here).
    pub admission: AdmissionPolicy,
    /// Online bandit-driven client selection, applied per cohort: each
    /// cohort's policy picks its own `k`-device sub-cohort every round
    /// (arms are cohort-local, so selection composes with the per-cohort
    /// seed derivation exactly like fault plans).
    pub selection: Option<SelectionConfig>,
}

impl ChaosOptions {
    /// Chaos options with the resilient defaults: single-attempt transfers,
    /// no deadline, rescue enabled, no SoC floor.
    pub fn new(config: FaultConfig, planned_rounds: usize) -> Self {
        ChaosOptions {
            config,
            planned_rounds,
            retry: RetryPolicy::single_attempt(),
            deadline: DeadlinePolicy::Off,
            rescue: true,
            rescue_soc_floor: 0.0,
            aggregator: AggregatorKind::FedAvg,
            adversary: None,
            admission: AdmissionPolicy::default(),
            selection: None,
        }
    }

    /// Set the transfer retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Set the per-round deadline policy (see [`ChaosOptions::deadline`]).
    pub fn with_deadline_policy(mut self, policy: DeadlinePolicy) -> Self {
        self.deadline = policy;
        self
    }

    /// Disable straggler rescue.
    pub fn without_rescue(mut self) -> Self {
        self.rescue = false;
        self
    }

    /// Set the energy-aware rescue SoC floor.
    pub fn with_rescue_soc_floor(mut self, floor: f64) -> Self {
        self.rescue_soc_floor = floor;
        self
    }

    /// Select the robust aggregation rule (see [`ChaosOptions::aggregator`]).
    pub fn with_aggregator(mut self, kind: AggregatorKind) -> Self {
        self.aggregator = kind;
        self
    }

    /// Attach an adversary model planned for `planned_rounds` (see
    /// [`ChaosOptions::adversary`]).
    pub fn with_adversary(mut self, adversary: AdversaryConfig, planned_rounds: usize) -> Self {
        self.adversary = Some((adversary, planned_rounds));
        self
    }

    /// Set the mid-round arrival admission policy (see
    /// [`ChaosOptions::admission`]).
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Enable online bandit-driven client selection (see
    /// [`ChaosOptions::selection`]).
    pub fn with_selection(mut self, config: SelectionConfig) -> Self {
        self.selection = Some(config);
        self
    }
}

/// One cohort's contribution to an engine run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CohortReport {
    /// First population index of this cohort (inclusive).
    pub start: usize,
    /// One past the last population index of this cohort.
    pub end: usize,
    /// The cohort's derived RNG seed.
    pub seed: u64,
    /// The cohort's own timing report (user indices are cohort-local).
    pub timing: TimingReport,
    /// Per-round fault outcomes. On the quiet path these are synthesized
    /// (full coverage, no failures) so the report shape does not depend on
    /// whether chaos was configured.
    pub rounds: Vec<RoundOutcome>,
}

/// Aggregate result of one [`ParallelRoundEngine::run`] call.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EngineReport {
    /// Population-wide timing, shape-compatible with [`RoundSim`] output:
    /// per-round makespan is the max across cohorts, per-user means are in
    /// population order.
    pub timing: TimingReport,
    /// Population-wide per-round outcomes (shard counts summed across
    /// cohorts, coverage recomputed).
    pub rounds: Vec<RoundOutcome>,
    /// Per-cohort breakdowns, in cohort order.
    pub cohorts: Vec<CohortReport>,
}

impl EngineReport {
    /// Mean per-round coverage across the population.
    pub fn mean_coverage(&self) -> f64 {
        if self.rounds.is_empty() {
            return 1.0;
        }
        self.rounds.iter().map(|r| r.coverage).sum::<f64>() / self.rounds.len() as f64
    }

    /// Total shards lost across all rounds.
    pub fn total_lost(&self) -> usize {
        self.rounds.iter().map(|r| r.lost_shards).sum()
    }
}

/// A cohort's simulator: quiet or fault-injected lockstep, or the
/// event-driven core — chosen at engine build time for the whole
/// population.
enum CohortSim {
    Quiet(Box<RoundSim>),
    Chaos(Box<ResilientRoundSim>),
    /// Event-driven path. Hosts both quiet and chaotic configurations: a
    /// quiet one is an [`EventRoundSim`] over a quiet injector, which is
    /// bit-identical to [`RoundSim`] by the resilient determinism
    /// contract.
    Event(Box<EventRoundSim>),
}

/// A cohort and its long-lived simulator. The `Mutex` is never contended —
/// each work item touches exactly one slot — it exists to hand `&mut`
/// access to whichever worker claims the cohort.
struct CohortSlot {
    range: Range<usize>,
    seed: u64,
    sim: Mutex<CohortSim>,
    /// Per-cohort event buffer; `Some` iff the engine probe is enabled.
    log: Option<Arc<EventLog>>,
}

/// What one cohort returns from the parallel phase.
struct CohortRun {
    timing: TimingReport,
    rounds: Vec<RoundOutcome>,
    /// Events already remapped to population user indices.
    events: Vec<Event>,
}

/// Scales [`RoundSim`] / [`ResilientRoundSim`] to large populations by
/// simulating fixed cohorts concurrently. See the module docs for the
/// determinism contract and merge semantics.
pub struct ParallelRoundEngine {
    /// Population, held until the first run builds the cohort sims.
    pending_devices: Vec<Device>,
    workload: TrainingWorkload,
    link: Link,
    model_bytes: f64,
    seed: u64,
    n: usize,
    cohort_size: usize,
    threads: usize,
    probe: Probe,
    chaos: Option<ChaosOptions>,
    engine_kind: EngineKind,
    slots: Vec<CohortSlot>,
    rounds_done: usize,
}

impl ParallelRoundEngine {
    /// Positional constructor backing the
    /// [`SimBuilder`](crate::SimBuilder), the only public construction
    /// path (the `new` shim was removed with the job-spec API).
    pub(crate) fn from_parts(
        devices: Vec<Device>,
        workload: TrainingWorkload,
        link: Link,
        model_bytes: f64,
        seed: u64,
    ) -> Self {
        let n = devices.len();
        ParallelRoundEngine {
            pending_devices: devices,
            workload,
            link,
            model_bytes,
            seed,
            n,
            cohort_size: DEFAULT_COHORT_SIZE,
            threads: default_engine_threads(),
            probe: Probe::disabled(),
            chaos: None,
            engine_kind: EngineKind::default(),
            slots: Vec::new(),
            rounds_done: 0,
        }
    }

    /// Select the per-cohort execution core (see [`EngineKind`]). The
    /// default is [`EngineKind::Lockstep`].
    ///
    /// # Panics
    /// Panics if the engine has already run.
    pub fn with_engine_kind(self, kind: EngineKind) -> Self {
        match self.try_with_engine_kind(kind) {
            Ok(eng) => eng,
            Err(err) => panic!("configure the engine before its first run ({err})"),
        }
    }

    /// Fallible form of [`ParallelRoundEngine::with_engine_kind`].
    pub fn try_with_engine_kind(mut self, kind: EngineKind) -> Result<Self, ConfigError> {
        self.check_unbuilt("engine kind")?;
        self.engine_kind = kind;
        Ok(self)
    }

    /// The execution core cohorts run on.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine_kind
    }

    /// Set the cohort size (devices per parallel unit). Changing it changes
    /// the cohort seeds and therefore the simulated timeline; thread count
    /// does not.
    ///
    /// # Panics
    /// Panics if `size` is zero or the engine has already run.
    pub fn with_cohort_size(self, size: usize) -> Self {
        assert!(size > 0, "cohort size must be positive");
        match self.try_with_cohort_size(size) {
            Ok(eng) => eng,
            Err(err) => panic!("configure the engine before its first run ({err})"),
        }
    }

    /// Fallible form of [`ParallelRoundEngine::with_cohort_size`].
    pub fn try_with_cohort_size(mut self, size: usize) -> Result<Self, ConfigError> {
        if size == 0 {
            return Err(ConfigError::ZeroCohortSize);
        }
        self.check_unbuilt("cohort size")?;
        self.cohort_size = size;
        Ok(self)
    }

    /// Set the worker thread count. Affects wall-clock only, never results.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn with_threads(self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.try_with_threads(threads)
            .expect("positive thread count is always accepted")
    }

    /// Fallible form of [`ParallelRoundEngine::with_threads`].
    pub fn try_with_threads(mut self, threads: usize) -> Result<Self, ConfigError> {
        if threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        self.threads = threads;
        Ok(self)
    }

    /// Attach a telemetry probe. During the parallel phase each cohort
    /// records into a private buffer; after every cohort finishes, the
    /// buffers are spliced into `probe` in cohort order with user indices
    /// remapped to population indices — so the delivered stream is ordered
    /// and deterministic even though cohorts ran concurrently.
    ///
    /// # Panics
    /// Panics if the engine has already run.
    pub fn with_probe(self, probe: Probe) -> Self {
        match self.try_with_probe(probe) {
            Ok(eng) => eng,
            Err(err) => panic!("configure the engine before its first run ({err})"),
        }
    }

    /// Fallible form of [`ParallelRoundEngine::with_probe`].
    pub fn try_with_probe(mut self, probe: Probe) -> Result<Self, ConfigError> {
        self.check_unbuilt("probe")?;
        self.probe = probe;
        Ok(self)
    }

    /// Switch every cohort to the resilient path with faults drawn from
    /// `options`. Each cohort gets its own injector planned for its size
    /// and derived seed, so fault fates — like everything else — depend
    /// only on the master seed and cohort geometry.
    ///
    /// # Panics
    /// Panics if the engine has already run.
    pub fn with_chaos(self, options: ChaosOptions) -> Self {
        match self.try_with_chaos(options) {
            Ok(eng) => eng,
            Err(err) => panic!("configure the engine before its first run ({err})"),
        }
    }

    /// Fallible form of [`ParallelRoundEngine::with_chaos`].
    pub fn try_with_chaos(mut self, options: ChaosOptions) -> Result<Self, ConfigError> {
        self.check_unbuilt("chaos options")?;
        self.chaos = Some(options);
        Ok(self)
    }

    fn check_unbuilt(&self, what: &'static str) -> Result<(), ConfigError> {
        if self.slots.is_empty() {
            Ok(())
        } else {
            Err(ConfigError::ConfiguredAfterRun(what))
        }
    }

    /// Population size.
    pub fn n_devices(&self) -> usize {
        self.n
    }

    /// A clone of the engine's probe (shares the attached sink), for the
    /// coordinator to emit population-level events into the same stream.
    pub(crate) fn probe_handle(&self) -> Probe {
        self.probe.clone()
    }

    /// Number of cohorts the population partitions into.
    pub fn n_cohorts(&self) -> usize {
        self.n.div_ceil(self.cohort_size)
    }

    /// Worker threads used for the parallel phase.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Rounds simulated so far across all `run` calls.
    pub fn rounds_done(&self) -> usize {
        self.rounds_done
    }

    /// Snapshot of the population's devices in population order (e.g. to
    /// inspect battery drain afterwards). Clones — cohort sims keep the
    /// originals alive across runs.
    pub fn devices(&self) -> Vec<Device> {
        if self.slots.is_empty() {
            return self.pending_devices.clone();
        }
        let mut out = Vec::with_capacity(self.n);
        for slot in &self.slots {
            let sim = slot.sim.lock().unwrap();
            match &*sim {
                CohortSim::Quiet(rs) => out.extend_from_slice(rs.devices()),
                CohortSim::Chaos(rs) => out.extend_from_slice(rs.devices()),
                CohortSim::Event(rs) => out.extend_from_slice(rs.devices()),
            }
        }
        out
    }

    /// Reset every device's thermal state (between experiment arms).
    pub fn cool_down(&mut self) {
        for d in &mut self.pending_devices {
            d.cool_down();
        }
        for slot in &self.slots {
            let mut sim = slot.sim.lock().unwrap();
            match &mut *sim {
                CohortSim::Quiet(rs) => rs.cool_down(),
                CohortSim::Chaos(rs) => rs.cool_down(),
                CohortSim::Event(rs) => rs.cool_down(),
            }
        }
    }

    /// Build the per-cohort sims on first use.
    fn ensure_slots(&mut self) {
        if !self.slots.is_empty() || self.n == 0 {
            return;
        }
        let mut devices = std::mem::take(&mut self.pending_devices);
        let mut slots = Vec::with_capacity(self.n_cohorts());
        // Walk chunks back-to-front so each cohort can split off the tail.
        let ranges: Vec<Range<usize>> = fixed_chunks(self.n, self.cohort_size).collect();
        let mut tails: Vec<Vec<Device>> = Vec::with_capacity(ranges.len());
        for range in ranges.iter().rev() {
            tails.push(devices.split_off(range.start));
        }
        tails.reverse();
        for (cohort, (range, cohort_devices)) in ranges.into_iter().zip(tails).enumerate() {
            let seed = derive_cohort_seed(self.seed, cohort);
            let log = self.probe.is_enabled().then(|| Arc::new(EventLog::new()));
            let cohort_probe = match &log {
                Some(log) => Probe::attached(log.clone() as Arc<_>),
                None => Probe::disabled(),
            };
            let sim = match (&self.chaos, self.engine_kind) {
                (None, EngineKind::Lockstep) => CohortSim::Quiet(Box::new(
                    RoundSim::from_parts(
                        cohort_devices,
                        self.workload,
                        self.link,
                        self.model_bytes,
                        seed,
                    )
                    .with_probe(cohort_probe),
                )),
                // Everything else is resilient machinery: chaotic lockstep
                // cohorts, and event-driven cohorts of either kind (a quiet
                // event cohort wraps a quiet injector, bit-identical to
                // `RoundSim` by the resilient determinism contract).
                (chaos, kind) => {
                    let injector = match chaos {
                        Some(opts) => FaultInjector::from_config(
                            opts.config.clone(),
                            range.len(),
                            opts.planned_rounds,
                            seed,
                        ),
                        None => FaultInjector::quiet(range.len()),
                    };
                    let mut sim = ResilientRoundSim::from_parts(
                        cohort_devices,
                        self.workload,
                        self.link,
                        self.model_bytes,
                        seed,
                        injector,
                    )
                    .with_probe(cohort_probe);
                    if let Some(opts) = chaos {
                        sim = sim
                            .with_retry(opts.retry)
                            .with_deadline_policy(opts.deadline)
                            .with_rescue_soc_floor(opts.rescue_soc_floor)
                            .with_aggregator(opts.aggregator);
                        if !opts.rescue {
                            sim = sim.without_rescue();
                        }
                        if let Some((adv, adv_rounds)) = &opts.adversary {
                            sim = sim.with_adversary(AdversaryPlan::generate(
                                *adv,
                                range.len(),
                                *adv_rounds,
                                seed,
                            ));
                        }
                        if let Some(sel) = &opts.selection {
                            sim = sim.with_selection(*sel);
                        }
                    }
                    match kind {
                        EngineKind::Lockstep => CohortSim::Chaos(Box::new(sim)),
                        EngineKind::EventDriven => {
                            let mut ev = EventRoundSim::new(sim);
                            if let Some(opts) = chaos {
                                ev.set_admission(opts.admission);
                            }
                            CohortSim::Event(Box::new(ev))
                        }
                    }
                }
            };
            slots.push(CohortSlot {
                range,
                seed,
                sim: Mutex::new(sim),
                log,
            });
        }
        self.slots = slots;
    }

    /// Simulate `rounds` synchronous rounds of `schedule` across the whole
    /// population, cohorts in parallel. Device state persists across calls.
    ///
    /// # Panics
    /// Panics if the schedule's user count differs from the population.
    pub fn run(&mut self, schedule: &Schedule, rounds: usize) -> EngineReport {
        assert_eq!(
            schedule.shards.len(),
            self.n,
            "schedule/population size mismatch"
        );
        self.ensure_slots();

        let sub_schedules: Vec<Schedule> = self
            .slots
            .iter()
            .map(|slot| {
                Schedule::new(
                    schedule.shards[slot.range.clone()].to_vec(),
                    schedule.shard_size,
                )
            })
            .collect();

        let slots = &self.slots;
        let first_round = self.rounds_done;
        let runs: Vec<CohortRun> = parallel_map_stealing(slots.len(), self.threads, |c| {
            let slot = &slots[c];
            let sub = &sub_schedules[c];
            let mut sim = slot.sim.lock().unwrap();
            let (timing, outcomes) = match &mut *sim {
                CohortSim::Quiet(rs) => {
                    let timing = rs.run(sub, rounds);
                    let outcomes = synth_outcomes(&timing, sub, first_round);
                    (timing, outcomes)
                }
                CohortSim::Chaos(rs) => {
                    let report = rs.run(sub, rounds);
                    (report.timing, report.rounds)
                }
                CohortSim::Event(rs) => {
                    let report = rs.run(sub, rounds);
                    (report.timing, report.rounds)
                }
            };
            let events = match &slot.log {
                Some(log) => log
                    .take()
                    .into_iter()
                    .map(|ev| ev.with_user_offset(slot.range.start))
                    .collect(),
                None => Vec::new(),
            };
            CohortRun {
                timing,
                rounds: outcomes,
                events,
            }
        });

        // Splice the per-cohort event buffers into the engine probe in
        // cohort order. Each buffer is internally ordered, so the merged
        // stream is a deterministic function of the master seed alone.
        for run in &runs {
            for ev in &run.events {
                self.probe.emit(|| ev.clone());
            }
        }

        let report = merge_runs(&self.slots, &sub_schedules, runs, rounds, first_round);
        self.rounds_done += rounds;
        report
    }

    /// Push one straggler deadline into every chaos cohort (or clear them
    /// with `None`). Quiet cohorts have no deadline machinery and are left
    /// untouched. This is the [`Coordinator`](crate::Coordinator) hook for
    /// applying a globally-resolved deadline before a round runs; it builds
    /// the cohort sims if needed but never advances any RNG stream.
    pub(crate) fn set_cohort_deadlines(&mut self, deadline_s: Option<f64>) {
        self.ensure_slots();
        for slot in &self.slots {
            let mut sim = slot.sim.lock().unwrap();
            match &mut *sim {
                CohortSim::Chaos(rs) => rs.set_deadline(deadline_s),
                CohortSim::Event(rs) => rs.set_deadline(deadline_s),
                CohortSim::Quiet(_) => {}
            }
        }
    }

    /// Side-effect-free per-user predicted round times for `schedule`,
    /// pooled over the *whole population* in population order. Built from a
    /// snapshot of current device state (thermal throttling included) and
    /// never draws from any RNG — calling it does not perturb the simulated
    /// timeline. The [`Coordinator`](crate::Coordinator) resolves adaptive
    /// [`DeadlinePolicy`] values against this pool.
    pub fn predicted_user_times(&self, schedule: &Schedule) -> Vec<f64> {
        assert_eq!(
            schedule.shards.len(),
            self.n,
            "schedule/population size mismatch"
        );
        predict_round_times(
            &self.devices(),
            &self.workload,
            &self.link,
            self.model_bytes,
            schedule,
        )
    }
}

/// Synthesize per-round outcomes for a fault-free cohort so quiet and chaos
/// engine reports share one shape: everything scheduled completes.
fn synth_outcomes(timing: &TimingReport, sub: &Schedule, first_round: usize) -> Vec<RoundOutcome> {
    let scheduled = sub.total_shards();
    timing
        .per_round_makespan
        .iter()
        .enumerate()
        .map(|(r, &makespan_s)| RoundOutcome {
            round: first_round + r,
            scheduled,
            completed: scheduled,
            rescued: 0,
            lost_shards: 0,
            admitted: 0,
            admit_done: 0,
            carried: 0,
            coverage: 1.0,
            makespan_s,
            failed_users: 0,
            timed_out: 0,
            rejected_updates: 0,
        })
        .collect()
}

/// Fold per-cohort runs into the aggregate report, in cohort order.
fn merge_runs(
    slots: &[CohortSlot],
    sub_schedules: &[Schedule],
    runs: Vec<CohortRun>,
    rounds: usize,
    first_round: usize,
) -> EngineReport {
    // A single cohort IS the sequential sim: pass its reports through
    // verbatim so even the comm-fraction float is bit-identical.
    let single = runs.len() == 1;

    let mut per_round_makespan = vec![0.0f64; rounds];
    let mut per_user_mean = Vec::new();
    let mut comm_weighted = 0.0f64;
    let mut total_participants = 0usize;
    let mut merged_rounds: Vec<RoundOutcome> = (0..rounds)
        .map(|r| RoundOutcome {
            round: first_round + r,
            scheduled: 0,
            completed: 0,
            rescued: 0,
            lost_shards: 0,
            admitted: 0,
            admit_done: 0,
            carried: 0,
            coverage: 1.0,
            makespan_s: 0.0,
            failed_users: 0,
            timed_out: 0,
            rejected_updates: 0,
        })
        .collect();
    let mut cohorts = Vec::with_capacity(runs.len());

    for ((slot, sub), run) in slots.iter().zip(sub_schedules).zip(runs) {
        for (r, &m) in run.timing.per_round_makespan.iter().enumerate() {
            if m > per_round_makespan[r] {
                per_round_makespan[r] = m;
            }
        }
        per_user_mean.extend_from_slice(&run.timing.per_user_mean);
        let participants = sub.active_users();
        comm_weighted += run.timing.comm_fraction * participants as f64;
        total_participants += participants;

        for (merged, outcome) in merged_rounds.iter_mut().zip(&run.rounds) {
            debug_assert_eq!(merged.round, outcome.round, "cohort round indices diverged");
            merged.scheduled += outcome.scheduled;
            merged.completed += outcome.completed;
            merged.rescued += outcome.rescued;
            merged.lost_shards += outcome.lost_shards;
            merged.admitted += outcome.admitted;
            merged.admit_done += outcome.admit_done;
            merged.carried += outcome.carried;
            merged.failed_users += outcome.failed_users;
            merged.timed_out += outcome.timed_out;
            merged.rejected_updates += outcome.rejected_updates;
            if outcome.makespan_s > merged.makespan_s {
                merged.makespan_s = outcome.makespan_s;
            }
        }

        cohorts.push(CohortReport {
            start: slot.range.start,
            end: slot.range.end,
            seed: slot.seed,
            timing: run.timing,
            rounds: run.rounds,
        });
    }

    for merged in &mut merged_rounds {
        merged.coverage = if merged.scheduled == 0 {
            1.0
        } else {
            (merged.completed + merged.rescued + merged.admit_done) as f64
                / (merged.scheduled + merged.admitted) as f64
        };
    }

    let (timing, rounds_out) = if single {
        let c = &cohorts[0];
        (c.timing.clone(), c.rounds.clone())
    } else {
        (
            TimingReport {
                per_round_makespan,
                per_user_mean,
                comm_fraction: if total_participants == 0 {
                    0.0
                } else {
                    comm_weighted / total_participants as f64
                },
            },
            merged_rounds,
        )
    };

    EngineReport {
        timing,
        rounds: rounds_out,
        cohorts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_device::{DeviceModel, Testbed};
    use fedsched_faults::FaultConfig;

    const MODEL_BYTES: f64 = 2.5e6;

    fn population(n: usize, seed: u64) -> Vec<Device> {
        let models = DeviceModel::all();
        (0..n)
            .map(|i| {
                Device::from_model(
                    models[i % models.len()],
                    seed.wrapping_add(i as u64 * 0x9E37_79B9),
                )
            })
            .collect()
    }

    fn engine(n: usize, seed: u64) -> ParallelRoundEngine {
        ParallelRoundEngine::from_parts(
            population(n, seed),
            TrainingWorkload::lenet(),
            Link::wifi_campus(),
            MODEL_BYTES,
            seed,
        )
    }

    fn uniform_schedule(n: usize, shards: usize) -> Schedule {
        Schedule::new(vec![shards; n], 100.0)
    }

    #[test]
    fn cohort_seed_zero_is_master() {
        assert_eq!(derive_cohort_seed(42, 0), 42);
        assert_ne!(derive_cohort_seed(42, 1), 42);
        assert_ne!(derive_cohort_seed(42, 1), derive_cohort_seed(42, 2));
        assert_ne!(derive_cohort_seed(42, 1), derive_cohort_seed(43, 1));
    }

    #[test]
    fn single_cohort_engine_matches_sequential_roundsim() {
        let tb = Testbed::testbed_1(7);
        let schedule = Schedule::new(vec![10, 10, 10], 100.0);
        let mut reference = RoundSim::from_parts(
            tb.devices().to_vec(),
            TrainingWorkload::lenet(),
            Link::wifi_campus(),
            MODEL_BYTES,
            7,
        );
        let expected = reference.run(&schedule, 4);

        for threads in [1, 4] {
            let mut eng = ParallelRoundEngine::from_parts(
                tb.devices().to_vec(),
                TrainingWorkload::lenet(),
                Link::wifi_campus(),
                MODEL_BYTES,
                7,
            )
            .with_threads(threads);
            let report = eng.run(&schedule, 4);
            assert_eq!(report.timing, expected, "threads={threads}");
            assert_eq!(report.cohorts.len(), 1);
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let n = 53; // several cohorts of 8, last one ragged
        let schedule = uniform_schedule(n, 3);
        let baseline = engine(n, 11)
            .with_cohort_size(8)
            .with_threads(1)
            .run(&schedule, 3);
        for threads in [2, 4, 8] {
            let report = engine(n, 11)
                .with_cohort_size(8)
                .with_threads(threads)
                .run(&schedule, 3);
            assert_eq!(report, baseline, "threads={threads}");
        }
    }

    #[test]
    fn spliced_event_log_is_thread_invariant_and_population_indexed() {
        use std::sync::Arc;
        let n = 20;
        let schedule = uniform_schedule(n, 2);
        let jsonl = |threads: usize| {
            let log = Arc::new(EventLog::new());
            engine(n, 3)
                .with_cohort_size(6)
                .with_threads(threads)
                .with_probe(Probe::attached(log.clone()))
                .run(&schedule, 2);
            log.to_jsonl()
        };
        let one = jsonl(1);
        assert_eq!(one, jsonl(4), "JSONL must not depend on thread count");

        // User spans must cover the full population index range, proving
        // the per-cohort indices were remapped.
        let log = Arc::new(EventLog::new());
        engine(n, 3)
            .with_cohort_size(6)
            .with_threads(4)
            .with_probe(Probe::attached(log.clone()))
            .run(&schedule, 1);
        let users: Vec<usize> = log
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::UserSpan { user, .. } => Some(*user),
                _ => None,
            })
            .collect();
        assert_eq!(users.iter().max(), Some(&(n - 1)));
        assert_eq!(users.iter().min(), Some(&0));
        assert_eq!(users.len(), n);
    }

    #[test]
    fn merged_timing_matches_cohort_fold() {
        let n = 30;
        let schedule = uniform_schedule(n, 2);
        let report = engine(n, 5).with_cohort_size(7).run(&schedule, 3);
        assert_eq!(report.cohorts.len(), 5);
        assert_eq!(report.timing.per_user_mean.len(), n);
        for r in 0..3 {
            let max = report
                .cohorts
                .iter()
                .map(|c| c.timing.per_round_makespan[r])
                .fold(0.0f64, f64::max);
            assert_eq!(report.timing.per_round_makespan[r], max);
            assert_eq!(report.rounds[r].scheduled, 2 * n);
            assert_eq!(report.rounds[r].coverage, 1.0);
        }
        // Per-user means concatenate in population order.
        let concat: Vec<f64> = report
            .cohorts
            .iter()
            .flat_map(|c| c.timing.per_user_mean.iter().copied())
            .collect();
        assert_eq!(report.timing.per_user_mean, concat);
    }

    #[test]
    fn chaos_engine_is_thread_invariant() {
        let n = 24;
        let schedule = uniform_schedule(n, 2);
        let opts = ChaosOptions::new(
            FaultConfig::none().with_crash_prob(0.2).with_loss_prob(0.1),
            4,
        )
        .with_retry(RetryPolicy::default_chaos());
        let run = |threads: usize| {
            engine(n, 19)
                .with_cohort_size(5)
                .with_threads(threads)
                .with_chaos(opts.clone())
                .run(&schedule, 4)
        };
        let baseline = run(1);
        assert_eq!(run(4), baseline);
        assert_eq!(run(8), baseline);
        // The fault model actually fired somewhere.
        assert!(
            baseline.total_lost() > 0 || baseline.rounds.iter().any(|r| r.rescued > 0),
            "chaos config should perturb at least one cohort"
        );
    }

    #[test]
    fn single_cohort_chaos_matches_sequential_resilient() {
        let n = 9;
        let schedule = uniform_schedule(n, 2);
        let config = FaultConfig::none().with_crash_prob(0.3);
        let mut reference = ResilientRoundSim::from_parts(
            population(n, 13),
            TrainingWorkload::lenet(),
            Link::wifi_campus(),
            MODEL_BYTES,
            13,
            FaultInjector::from_config(config.clone(), n, 3, 13),
        );
        let expected = reference.run(&schedule, 3);

        let report = engine(n, 13)
            .with_cohort_size(n)
            .with_threads(4)
            .with_chaos(ChaosOptions::new(config, 3))
            .run(&schedule, 3);
        assert_eq!(report.timing, expected.timing);
        assert_eq!(report.rounds, expected.rounds);
    }

    #[test]
    fn repeated_runs_continue_cohort_state() {
        let n = 12;
        let schedule = uniform_schedule(n, 2);
        // One engine run twice == a fresh engine run for the total span,
        // because cohort sims (RNG, thermal state, round indices) persist.
        let mut eng = engine(n, 23).with_cohort_size(4);
        let first = eng.run(&schedule, 2);
        let second = eng.run(&schedule, 2);
        assert_eq!(eng.rounds_done(), 4);
        assert_eq!(second.rounds[0].round, 2);

        let whole = engine(n, 23).with_cohort_size(4).run(&schedule, 4);
        assert_eq!(
            whole.timing.per_round_makespan[..2],
            first.timing.per_round_makespan[..]
        );
        assert_eq!(
            whole.timing.per_round_makespan[2..],
            second.timing.per_round_makespan[..]
        );
    }

    #[test]
    fn empty_population_yields_empty_report() {
        let mut eng = engine(0, 1);
        let report = eng.run(&Schedule::new(vec![], 100.0), 2);
        assert_eq!(report.timing.per_round_makespan, vec![0.0, 0.0]);
        assert!(report.timing.per_user_mean.is_empty());
        assert_eq!(report.timing.comm_fraction, 0.0);
        assert_eq!(report.rounds.len(), 2);
        assert!(report.cohorts.is_empty());
    }

    #[test]
    fn devices_snapshot_preserves_population_order_and_drain() {
        let n = 10;
        let schedule = uniform_schedule(n, 3);
        let mut eng = engine(n, 31).with_cohort_size(3);
        let before = eng.devices();
        assert_eq!(before.len(), n);
        eng.run(&schedule, 2);
        let after = eng.devices();
        assert_eq!(after.len(), n);
        for (b, a) in before.iter().zip(&after) {
            assert!(
                a.battery_soc() < b.battery_soc(),
                "training must drain each device"
            );
        }
    }

    #[test]
    #[should_panic(expected = "population size mismatch")]
    fn wrong_schedule_arity_panics() {
        let mut eng = engine(5, 1);
        let _ = eng.run(&Schedule::new(vec![1; 4], 100.0), 1);
    }

    #[test]
    #[should_panic(expected = "before its first run")]
    fn late_configuration_panics() {
        let mut eng = engine(5, 1);
        let _ = eng.run(&uniform_schedule(5, 1), 1);
        let _ = eng.with_cohort_size(2);
    }
}
