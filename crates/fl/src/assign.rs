//! Bridging scheduler output (shard counts) to concrete training samples.

use fedsched_core::Schedule;
use fedsched_data::{Dataset, Partition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn shuffled(len: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut v: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
    v
}

/// IID case: the paper pre-loads the *whole* dataset onto every device, so
/// the server may assign any disjoint slices. The global index space is
/// shuffled once and cut according to the schedule.
///
/// # Panics
/// Panics if the schedule requests more samples than the dataset holds.
pub fn assignment_from_schedule_iid(
    ds: &Dataset,
    schedule: &Schedule,
    seed: u64,
) -> Vec<Vec<usize>> {
    let wanted: usize = schedule
        .shards
        .iter()
        .map(|&k| (k as f64 * schedule.shard_size) as usize)
        .sum();
    assert!(
        wanted <= ds.len(),
        "schedule wants {wanted} samples but dataset has {}",
        ds.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let order = shuffled(ds.len(), &mut rng);
    let mut out = Vec::with_capacity(schedule.shards.len());
    let mut cursor = 0usize;
    for &k in &schedule.shards {
        let take = (k as f64 * schedule.shard_size) as usize;
        out.push(order[cursor..cursor + take].to_vec());
        cursor += take;
    }
    out
}

/// Non-IID case: each user trains on a random subset of *its own* local
/// data, sized by the schedule (clamped to what the user actually holds —
/// the scheduler's capacity constraint should prevent overshoot, but noisy
/// shard rounding may exceed it by a fraction of a shard).
pub fn assignment_from_schedule_noniid(
    partition: &Partition,
    schedule: &Schedule,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert_eq!(
        partition.users.len(),
        schedule.shards.len(),
        "partition/schedule user counts differ"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    partition
        .users
        .iter()
        .zip(&schedule.shards)
        .map(|(local, &k)| {
            let want = ((k as f64 * schedule.shard_size) as usize).min(local.len());
            let order = shuffled(local.len(), &mut rng);
            order[..want].iter().map(|&p| local[p]).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsched_data::{iid_equal, DatasetKind};
    use std::collections::BTreeSet;

    fn ds() -> Dataset {
        Dataset::generate(DatasetKind::MnistLike, 1000, 3)
    }

    #[test]
    fn iid_assignment_sizes_match_schedule() {
        let d = ds();
        let s = Schedule::new(vec![3, 5, 2], 100.0);
        let a = assignment_from_schedule_iid(&d, &s, 1);
        assert_eq!(
            a.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![300, 500, 200]
        );
        // Disjoint.
        let all: BTreeSet<usize> = a.iter().flatten().copied().collect();
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn iid_assignment_is_deterministic() {
        let d = ds();
        let s = Schedule::new(vec![4, 6], 50.0);
        assert_eq!(
            assignment_from_schedule_iid(&d, &s, 9),
            assignment_from_schedule_iid(&d, &s, 9)
        );
    }

    #[test]
    #[should_panic(expected = "dataset has")]
    fn iid_overshoot_panics() {
        let d = ds();
        let s = Schedule::new(vec![20], 100.0);
        let _ = assignment_from_schedule_iid(&d, &s, 1);
    }

    #[test]
    fn noniid_assignment_stays_within_local_data() {
        let d = ds();
        let p = iid_equal(&d, 4, 7); // 250 samples each
        let s = Schedule::new(vec![1, 2, 0, 3], 100.0);
        let a = assignment_from_schedule_noniid(&p, &s, 5);
        assert_eq!(a[0].len(), 100);
        assert_eq!(a[1].len(), 200);
        assert_eq!(a[2].len(), 0);
        assert_eq!(a[3].len(), 250, "clamped to local size");
        for (j, idx) in a.iter().enumerate() {
            let local: BTreeSet<usize> = p.users[j].iter().copied().collect();
            assert!(idx.iter().all(|i| local.contains(i)));
        }
    }

    #[test]
    fn zero_shards_means_idle_user() {
        let d = ds();
        let p = iid_equal(&d, 2, 7);
        let s = Schedule::new(vec![0, 1], 100.0);
        let a = assignment_from_schedule_noniid(&p, &s, 5);
        assert!(a[0].is_empty());
        assert_eq!(a[1].len(), 100);
    }
}
